#!/usr/bin/env python3
"""Estimate the effort of porting a C code base to CHERIv2 vs. CHERIv3.

This reproduces the Table 4 workflow on the tcpdump-style dissector: count
the pointer declarations that need ``__capability`` annotations in the hybrid
ABI, find the lines whose idioms each capability model cannot express, and
check the verdict by actually running the code under both models.
"""

from repro.core import PortingAnalyzer, format_table4
from repro.workloads import tcpdump
from repro.workloads.harness import run_workload


def main() -> None:
    analyzer = PortingAnalyzer(
        program="tcpdump",
        source=tcpdump.baseline_source(packets=40),
        hardening_lines_v3=tcpdump.HARDENING_LINES_V3,
    )
    reports = [analyzer.report("cheri_v2"), analyzer.report("cheri_v3")]
    print(format_table4(reports))
    print()
    for report in reports:
        print(" ", report.summary())
    print()

    print("Checking the analysis by running the unmodified source:")
    baseline = run_workload("tcpdump", tcpdump.baseline_source(packets=40), "pdp11")
    print(f"  MIPS/PDP-11 : ok, {baseline.cycles} cycles")
    v3 = run_workload("tcpdump", tcpdump.baseline_source(packets=40), "cheri_v3")
    print(f"  CHERIv3     : ok, {v3.cycles} cycles "
          f"({v3.overhead_vs(baseline) * 100:+.1f}% vs MIPS) — no semantic changes needed")
    try:
        run_workload("tcpdump", tcpdump.baseline_source(packets=40), "cheri_v2")
        print("  CHERIv2     : unexpectedly ran")
    except Exception as error:
        print(f"  CHERIv2     : fails as predicted ({error})")
    ported = run_workload("tcpdump", tcpdump.cheri_v2_source(packets=40), "cheri_v2")
    print(f"  CHERIv2 port: ok after rewriting the pointer-subtraction bounds checks "
          f"({ported.cycles} cycles)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: compile and run C under a memory-safe abstract machine.

This is the five-minute tour of the library: take a small C program with a
classic off-by-one heap overflow, run it under the traditional PDP-11-style
memory model (where the bug silently corrupts adjacent memory) and under the
paper's CHERIv3 model (where the hardware capability traps the first
out-of-bounds byte).
"""

from repro.core import MemorySafeMachine

BUGGY_PROGRAM = r"""
int main(void) {
    char *name = (char *)malloc(8);
    int i;
    /* BUG: writes 9 bytes into an 8-byte allocation */
    for (i = 0; i <= 8; i++) {
        name[i] = 'A' + i;
    }
    printf("filled %d bytes\n", i);
    return 0;
}
"""


def main() -> None:
    for model in ("pdp11", "cheri_v3"):
        machine = MemorySafeMachine(model=model)
        result = machine.run(BUGGY_PROGRAM)
        print(f"--- memory model: {model} ---")
        print(f"  output        : {result.output_text().strip() or '(none)'}")
        if result.trapped:
            print(f"  outcome       : TRAPPED -> {result.trap}")
        else:
            print(f"  outcome       : ran to completion, exit code {result.exit_code}")
        print(f"  simulated cost: {result.cycles} cycles, {result.instructions} instructions")
        print()

    print("The PDP-11 model lets the overflow through; the CHERIv3 capability")
    print("model bounds every allocation, so the ninth store traps immediately.")


if __name__ == "__main__":
    main()

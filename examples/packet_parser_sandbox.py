#!/usr/bin/env python3
"""tcpdump-style packet parsing with and without capability protection.

The paper's motivating application: tcpdump runs as root, parses attacker
controlled bytes, and its dissectors are written with manual pointer
arithmetic.  This example feeds a malformed packet to a dissector with a
missing length check:

* under the PDP-11 model the parser silently reads past the packet into
  adjacent heap memory (an information leak — the "blind the defender"
  scenario the paper describes);
* under CHERIv3 the packet buffer's capability bounds the read, and the
  stray access traps;
* with the ``__input`` qualifier (the paper's two-line tcpdump hardening) the
  parser cannot even *write* to the packet it is inspecting.
"""

from repro.core import MemorySafeMachine

VULNERABLE_PARSER = r"""
/* A "secret" that happens to live next to the packet buffer on the heap. */
char *secret;

int parse_udp(const unsigned char *packet, long length) {
    /* BUG: the UDP length field is trusted without checking it against the
       captured length. */
    int claimed = ((int)packet[4] << 8) | (int)packet[5];
    long total = 0;
    int i;
    for (i = 0; i < claimed; i++) {
        total += packet[8 + i];
    }
    return (int)(total & 127);
}

int main(void) {
    unsigned char *packet = (unsigned char *)malloc(16);
    int i;
    secret = (char *)malloc(32);
    strcpy(secret, "hunter2: the root password");
    for (i = 0; i < 16; i++) {
        packet[i] = 0;
    }
    packet[4] = 0;
    packet[5] = 64;              /* claims 64 payload bytes; only 8 exist */
    return parse_udp(packet, 16);
}
"""

HARDENED_WRITE_ATTEMPT = r"""
int scrub(const unsigned char * __input view) {
    unsigned char *w = (unsigned char *)view;
    w[0] = 0;                    /* attempts to modify the packet in place */
    return 0;
}

int main(void) {
    unsigned char *packet = (unsigned char *)malloc(16);
    packet[0] = 42;
    scrub(packet);
    return packet[0];
}
"""


def run(title: str, source: str, model: str) -> None:
    result = MemorySafeMachine(model=model).run(source)
    verdict = f"TRAPPED ({type(result.trap).__name__})" if result.trapped \
        else f"completed, exit code {result.exit_code}"
    print(f"  [{model:>8}] {title}: {verdict}")


def main() -> None:
    print("Over-read of a malformed packet (missing length check):")
    run("over-read", VULNERABLE_PARSER, "pdp11")
    run("over-read", VULNERABLE_PARSER, "cheri_v3")
    print()
    print("Write through an __input-qualified view of the packet:")
    run("in-place scrub", HARDENED_WRITE_ATTEMPT, "pdp11")
    run("in-place scrub", HARDENED_WRITE_ATTEMPT, "cheri_v3")
    print()
    print("Under the flat model the parser walks off the 16-byte packet and mixes")
    print("the adjacent secret into its checksum; the capability model confines it")
    print("to the allocation, and __input additionally makes the packet read-only.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Precise, relocating garbage collection on top of capability tags (§4.2).

The program builds a linked structure, deliberately leaks half of its
allocations, and hides one pointer inside a plain integer.  The collector
then shows the two properties the paper attributes to tagged capabilities:

* collection is *precise*: the pointer hidden in an integer does not keep its
  object alive (a conservative collector would hoard it, §3.6);
* collection can *relocate*: surviving objects are moved and every capability
  that referred to them — including ones stored inside other objects — is
  rewritten, which is impossible if addresses can hide in integers.
"""

from repro.core.api import compile_for_model
from repro.gc import CapabilityGarbageCollector
from repro.interp import AbstractMachine, get_model

PROGRAM = r"""
struct node { struct node *next; long value; };

struct node *keep_list;     /* reachable root */
long hidden_address;        /* a pointer laundered into a plain integer */

int main(void) {
    int i;
    for (i = 0; i < 8; i++) {
        struct node *fresh = (struct node *)malloc(sizeof(struct node));
        fresh->value = i * 100;
        fresh->next = 0;
        if (i % 2 == 0) {
            fresh->next = keep_list;
            keep_list = fresh;                 /* kept alive via the global */
        } else if (i == 1) {
            hidden_address = (long)fresh;      /* only an integer remembers it */
        }                                      /* the rest are plain garbage */
    }
    return 0;
}
"""


def main() -> None:
    model = get_model("cheri_v3")
    machine = AbstractMachine(compile_for_model(PROGRAM, model), model)
    result = machine.run()
    assert result.exit_code == 0

    collector = CapabilityGarbageCollector(machine)
    live_before = machine.allocator.live_heap_bytes()
    stats = collector.collect(relocate=True)
    live_after = machine.allocator.live_heap_bytes()

    print(f"heap before collection : {live_before} bytes in 8 allocations")
    print(f"swept                  : {stats.swept_objects} objects "
          f"({stats.swept_bytes} bytes) — including the one hidden in an integer")
    print(f"survivors relocated    : {stats.relocated_objects} objects, "
          f"{stats.rewritten_references} capabilities rewritten")
    print(f"heap after collection  : {live_after} bytes")

    # Walk the relocated list through the machine to prove the rewritten
    # capabilities still lead to the right values.
    node_type = machine.module.globals["keep_list"].ctype.pointee
    value_field = node_type.field_named("value", machine.ctx)
    next_field = node_type.field_named("next", machine.ctx)
    pointer = machine._load_scalar(machine.globals["keep_list"],
                                   machine.module.globals["keep_list"].ctype)
    values = []
    while not pointer.is_null:
        value_ptr = machine.model.field_address(pointer, value_field.offset, 8)
        values.append(machine._load_scalar(value_ptr, value_field.ctype).value)
        next_ptr = machine.model.field_address(pointer, next_field.offset,
                                               machine.model.pointer_bytes)
        pointer = machine._load_scalar(next_ptr, next_field.ctype)
    print(f"list walked after move : {values}")


if __name__ == "__main__":
    main()

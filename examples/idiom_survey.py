#!/usr/bin/env python3
"""Survey C code for PDP-11-model idioms (the paper's §2 methodology).

The example analyzes a small "legacy" module the way the paper's modified
LLVM analyzes its 2M-line corpus: compile to the typed IR, then categorise
every pointer operation that escapes the type system.  It then runs the
scaled package survey to regenerate a slice of Table 1.
"""

from repro.analysis import analyze_source, format_table1, survey_corpus
from repro.analysis.idioms import IDIOM_DESCRIPTIONS

LEGACY_MODULE = r"""
struct header { long magic; int flags; };
struct message { char payload[48]; struct header hdr; };

/* container_of: recover the message from a pointer to its header */
long message_magic(struct header *h) {
    struct message *m = (struct message *)((char *)h - offsetof(struct message, hdr));
    return m->hdr.magic;
}

/* hand-rolled bounds check via pointer subtraction */
long bytes_left(char *cursor, char *end) {
    return end - cursor;
}

/* pointer smuggled through an integer and masked */
long tag_pointer(void *item) {
    intptr_t bits = (intptr_t)item | 1;
    return (long)(bits & ~(intptr_t)1);
}

/* const stripped before writing */
void scrub(const char *view, long length) {
    char *w = (char *)view;
    long i;
    for (i = 0; i < length; i++) {
        w[i] = 0;
    }
}
"""


def main() -> None:
    print("== single-module analysis ==")
    result = analyze_source(LEGACY_MODULE)
    for finding in result.findings:
        description = IDIOM_DESCRIPTIONS[finding.idiom]
        print(f"  line {finding.line:3d}  {finding.idiom.name:<9}  {description}")
        print(f"            -> {finding.detail}")
    print(f"  total: {result.total} idiom uses in {result.lines_of_code} lines")
    print()

    print("== scaled package survey (three of the paper's thirteen packages) ==")
    rows = survey_corpus(idiom_scale=0.05, loc_scale=0.005,
                         packages=("tcpdump", "perf", "zlib"))
    print(format_table1(rows))
    print()
    print("Each package's measured mix mirrors the paper's Table 1 row: tcpdump is")
    print("dominated by out-of-bounds intermediates from hand-rolled bounds checks,")
    print("perf is the only package using container_of, zlib is nearly clean.")


if __name__ == "__main__":
    main()

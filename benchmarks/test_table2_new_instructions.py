"""Table 2: the new CHERI instructions added to better support C.

Paper: six instructions — CIncOffset, CSetOffset, CGetOffset, CPtrCmp,
CFromPtr, CToPtr — extend CHERIv2 capabilities with fat-pointer offsets.

Reproduction: each instruction is executed on the CHERI-MIPS ISA simulator
and its architectural effect is checked; the regenerated table lists the
instruction semantics as implemented.
"""

from __future__ import annotations

from conftest import write_result

from repro.isa import Assembler
from repro.isa.instructions import INSTRUCTION_SET
from repro.sim import CheriCpu

#: Table 2 of the paper: mnemonic -> use.
TABLE2_INSTRUCTIONS = {
    "cincoffset": "Adds an integer to the offset",
    "csetoffset": "Sets the offset",
    "cgetoffset": "Returns the current offset",
    "cptrcmp": "Compares two capabilities",
    "cfromptr": "Converts a MIPS pointer to a capability",
    "ctoptr": "Converts capability to a MIPS pointer",
}

_PROGRAM = r"""
.text
    # Derive a 64-byte object capability at offset 0x100 of the address space.
    li   $t0, 0x100
    cfromptr $c1, $c0, $t0          # Table 2: pointer -> capability
    li   $t1, 64
    csetbounds $c1, $c1, $t1

    li   $t2, 16
    csetoffset $c2, $c1, $t2        # Table 2: set offset
    li   $t3, 8
    cincoffset $c2, $c2, $t3        # Table 2: increment offset
    cgetoffset $t4, $c2             # Table 2: read offset (expect 24)

    cptrcmp $t5, $c2, $c1, ltu      # Table 2: pointer comparison (c1 < c2)
    ctoptr  $t6, $c2, $c0           # Table 2: capability -> MIPS pointer

    li   $t7, 99
    csw  $t7, 0, $c2                # store through the moved capability
    clw  $t8, 24, $c1               # read it back via base capability + 24

    li   $v0, 1
    move $a0, $t4
    syscall
"""


def _run_program():
    cpu = CheriCpu(Assembler().assemble(_PROGRAM))
    state = cpu.run()
    return cpu, state


def test_table2_new_instructions(benchmark, results_dir):
    cpu, state = benchmark.pedantic(_run_program, rounds=1, iterations=1)
    assert not state.trapped, state.memory_safety_violation or state.trap
    # CGetOffset observed 16 + 8 = 24.
    assert state.exit_status == 24
    # CPtrCmp: c2 (offset 24) is not less-than c1 (offset 0) -> 0.
    assert cpu.gpr.read_named("t5") == 0
    # CToPtr recovers the virtual address 0x100 + 24 relative to the DDC.
    assert cpu.gpr.read_named("t6") == 0x100 + 24
    # The store through the offset capability landed where CLW expects it.
    assert cpu.gpr.read_named("t8") == 99

    lines = [f"{'INSTRUCTION':<14}{'USE (paper Table 2)':<46}{'implemented'}"]
    lines.append("-" * 75)
    for mnemonic, use in TABLE2_INSTRUCTIONS.items():
        implemented = "yes" if mnemonic in INSTRUCTION_SET else "MISSING"
        lines.append(f"{mnemonic:<14}{use:<46}{implemented}")
    lines.append("")
    lines.append(f"validation program: {state.instructions_executed} instructions, "
                 f"{state.cycles} cycles, exit status {state.exit_status}")
    write_result(results_dir, "table2_new_instructions.txt", "\n".join(lines))

    assert all(mnemonic in INSTRUCTION_SET for mnemonic in TABLE2_INSTRUCTIONS)

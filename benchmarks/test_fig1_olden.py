"""Figure 1: Olden kernel runtimes under MIPS, CHERIv2 and CHERIv3.

Paper: the pointer-heavy Olden kernels are the worst case for CHERI — the
256-bit capabilities inflate every node, so both CHERI variants run slower
than the MIPS build, with the difference "primarily due to the larger
pointers causing more cache misses".

Reproduction: the four kernels run under the pdp11 (MIPS), cheri_v2 and
cheri_v3 models on the same 16 KB L1 / 64 KB L2 hierarchy and are compared
in simulated cycles.  Expected shape: CHERI ≥ MIPS for every kernel, with
the overhead concentrated in the allocation-heavy tree kernels.  (The scaled
tree sizes sit near the cache-size boundary, so the relative overhead for
treeadd is larger than the paper's FPGA numbers; see EXPERIMENTS.md.)
"""

from __future__ import annotations

from conftest import write_result

from repro.workloads.olden import KERNELS

MODELS = ("pdp11", "cheri_v2", "cheri_v3")


def _run_all():
    results = {}
    for kernel_name, module in KERNELS.items():
        results[kernel_name] = {model: module.run(model) for model in MODELS}
    return results


def test_fig1_olden(benchmark, results_dir):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    lines = [f"{'KERNEL':<12}" + "".join(f"{m:>14}" for m in MODELS) + f"{'v3 overhead':>14}"]
    lines.append("-" * len(lines[0]))
    for kernel_name, runs in results.items():
        overhead = runs["cheri_v3"].overhead_vs(runs["pdp11"])
        lines.append(
            f"{kernel_name:<12}"
            + "".join(f"{runs[m].cycles:>14}" for m in MODELS)
            + f"{overhead * 100:>13.1f}%"
        )
    lines.append("")
    lines.append("cycles = simulated cycles (smaller is better), as in Figure 1")
    write_result(results_dir, "fig1_olden.txt", "\n".join(lines))

    for kernel_name, runs in results.items():
        for model in MODELS:
            assert runs[model].ok, f"{kernel_name} failed under {model}"
            assert runs[model].result.exit_code == 0, (kernel_name, model)
        baseline = runs["pdp11"]
        # Capability builds never beat the MIPS build on these kernels, and at
        # least one kernel shows a clearly visible capability overhead.
        assert runs["cheri_v3"].cycles >= baseline.cycles * 0.99, kernel_name
        assert runs["cheri_v2"].cycles >= baseline.cycles * 0.99, kernel_name
        # The work done (instructions) is identical; only the memory system differs.
        assert runs["cheri_v3"].instructions == baseline.instructions, kernel_name

    worst = max(results.values(), key=lambda runs: runs["cheri_v3"].overhead_vs(runs["pdp11"]))
    assert worst["cheri_v3"].overhead_vs(worst["pdp11"]) > 0.05

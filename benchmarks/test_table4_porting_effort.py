"""Table 4: lines of code changed to port each program to CHERIv2 and CHERIv3.

Paper: Olden and Dhrystone need only capability annotations (3.5% and 2.4% of
lines, zero semantic changes on either target); tcpdump needs ~2.4% of its
lines semantically rewritten for CHERIv2 (pointer-subtraction bounds checks)
but only two changed lines for CHERIv3 (optional read-only hardening).

Reproduction: the porting analyzer counts pointer-typed declarations
(annotation lines) and detector-flagged lines using idioms the target model
rejects (semantic lines) over the reimplemented workload sources.  Absolute
LoC differ (the workloads are scaled down); the shape — who needs semantic
changes and on which target — is the comparison.
"""

from __future__ import annotations

from conftest import write_result

from repro.core import PortingAnalyzer, format_table4
from repro.workloads import dhrystone, tcpdump
from repro.workloads.olden import bisort, mst, perimeter, treeadd


def _olden_report(target: str):
    """Aggregate the four Olden kernels into one Table 4 row (they are
    separate programs in the suite, so they are analyzed separately and the
    line counts summed)."""
    from repro.core import PortingReport

    kernels = {"bisort": bisort, "mst": mst, "perimeter": perimeter, "treeadd": treeadd}
    partial = [PortingAnalyzer(program=name, source=module.source()).report(target)
               for name, module in kernels.items()]
    return PortingReport(
        program="Olden",
        target=target,
        baseline_loc=sum(r.baseline_loc for r in partial),
        annotation_lines=sum(r.annotation_lines for r in partial),
        semantic_lines=sum(r.semantic_lines for r in partial),
    )


def _build_reports():
    reports = []
    for target in ("cheri_v2", "cheri_v3"):
        reports.append(_olden_report(target))
    single = [
        PortingAnalyzer(program="Dhrystone", source=dhrystone.source()),
        PortingAnalyzer(program="tcpdump", source=tcpdump.baseline_source(),
                        hardening_lines_v3=tcpdump.HARDENING_LINES_V3),
    ]
    for analyzer in single:
        reports.append(analyzer.report("cheri_v2"))
        reports.append(analyzer.report("cheri_v3"))
    return reports


def test_table4_porting_effort(benchmark, results_dir):
    reports = benchmark.pedantic(_build_reports, rounds=1, iterations=1)
    write_result(results_dir, "table4_porting_effort.txt", format_table4(reports))

    by_key = {(r.program, r.target): r for r in reports}

    # Olden and Dhrystone: annotations only, no semantic changes on either target.
    for program in ("Olden", "Dhrystone"):
        for target in ("cheri_v2", "cheri_v3"):
            report = by_key[(program, target)]
            assert report.semantic_lines == 0, (program, target)
            assert report.annotation_lines > 0
            # annotation burden is a few percent of the source, as in the paper
            assert 0.5 <= report.percentage(report.annotation_lines) <= 15.0

    # tcpdump: CHERIv2 requires semantic rewrites; CHERIv3 needs only the two
    # voluntary hardening lines.
    v2 = by_key[("tcpdump", "cheri_v2")]
    v3 = by_key[("tcpdump", "cheri_v3")]
    assert v2.semantic_lines > 0
    assert v3.semantic_lines == 0
    assert v3.hardening_lines == tcpdump.HARDENING_LINES_V3
    assert v2.total_lines > v3.total_lines

    # The CHERIv2 port we actually run is bigger than the baseline diff shows:
    # check that the rewritten dissector differs from the baseline on the
    # order of the semantic-change count.
    baseline_lines = set(tcpdump.baseline_source().splitlines())
    ported_lines = set(tcpdump.cheri_v2_source().splitlines())
    changed = len(baseline_lines.symmetric_difference(ported_lines))
    assert changed >= v2.semantic_lines

"""Table 1: the pointer-idiom survey over the (synthetic) package corpus.

Paper: 2,491 DECONST / 151 CONTAINER / 2,236 SUB / 1,557 II / 197 INT /
201 IA / 371 MASK / 53 WIDE occurrences over ~1.9M lines of 13 packages.

Reproduction: the corpus generator plants each package's idiom profile at a
1/10 scale (LoC at 1/100) and the IR-level detector re-counts them.  The
check is twofold: the detector recovers the planted counts, and the relative
idiom mix per package therefore follows the paper's Table 1.
"""

from __future__ import annotations

from conftest import write_result

from repro.analysis import PAPER_TABLE1, format_table1, survey_corpus
from repro.analysis.idioms import TABLE_IDIOMS

IDIOM_SCALE = 0.1
LOC_SCALE = 0.01


def test_table1_idiom_survey(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: survey_corpus(idiom_scale=IDIOM_SCALE, loc_scale=LOC_SCALE),
        rounds=1, iterations=1,
    )
    table = format_table1(rows)
    write_result(results_dir, "table1_idiom_survey.txt", table)

    # Every package's measured counts equal the planted (scaled) profile.
    mismatched = [row.package for row in rows if not row.matches_expected()]
    assert not mismatched, f"detector missed planted idioms in: {mismatched}"

    # The paper's qualitative observations hold in the scaled corpus:
    by_name = {row.package: row for row in rows}
    paper = {row.package: row for row in PAPER_TABLE1}
    # tcpdump is dominated by invalid intermediates; ffmpeg by subtraction.
    assert max(by_name["tcpdump"].counts, key=by_name["tcpdump"].counts.get).name == "II"
    assert max(by_name["ffmpeg"].counts, key=by_name["ffmpeg"].counts.get).name == "SUB"
    # perf is the only package with container-of occurrences, as in the paper.
    container_packages = [name for name, row in by_name.items()
                          if row.counts[TABLE_IDIOMS[1]] > 0]
    assert container_packages == ["perf"]
    # DECONST and SUB are the two most common idioms overall, as in the paper.
    totals = {idiom: sum(row.counts[idiom] for row in rows) for idiom in TABLE_IDIOMS}
    paper_totals = {idiom: sum(paper[name].count(idiom) for name in paper) for idiom in TABLE_IDIOMS}
    top_two = sorted(totals, key=totals.get, reverse=True)[:2]
    paper_top_two = sorted(paper_totals, key=paper_totals.get, reverse=True)[:2]
    assert set(top_two) == set(paper_top_two)

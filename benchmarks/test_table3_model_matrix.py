"""Table 3: idiom support under different interpretations of the C abstract machine.

Paper: the extracted idiom test cases run under x86/MIPS, HardBound, Intel
MPX, the Relaxed and Strict interpreters, CHERIv2 and CHERIv3.  CHERIv3
supports every idiom except WIDE; CHERIv2 supports almost none; HardBound
and Strict fail closed on IA/MASK while MPX fails open; only MPX rejects
CONTAINER.

Reproduction: the same experiment, end to end — each extracted test case is
compiled and executed under each memory model and the outcome matrix is
compared cell-by-cell against the published table.
"""

from __future__ import annotations

from conftest import write_result

from repro.analysis.idioms import Idiom
from repro.core import evaluate_matrix, format_table3
from repro.core.compat import Outcome


def test_table3_model_matrix(benchmark, results_dir):
    matrix = benchmark.pedantic(evaluate_matrix, rounds=1, iterations=1)
    write_result(results_dir, "table3_model_matrix.txt", format_table3(matrix))

    differences = matrix.differences()
    assert not differences, f"matrix disagrees with the paper: {differences}"

    # Spot-check the qualitative claims the paper draws from this table.
    assert matrix.supported("cheri_v3", Idiom.SUB)
    assert not matrix.supported("cheri_v2", Idiom.SUB)
    assert not matrix.supported("cheri_v2", Idiom.DECONST)      # const enforced
    assert matrix.supported("cheri_v3", Idiom.DECONST)          # const advisory
    assert not matrix.supported("mpx", Idiom.CONTAINER)         # narrowed field bounds
    assert matrix.supported("hardbound", Idiom.CONTAINER)
    # HardBound/Strict fail closed on laundered pointers; MPX fails open.
    assert matrix.outcomes["hardbound"][Idiom.IA] is Outcome.TRAPPED
    assert matrix.outcomes["strict"][Idiom.IA] is Outcome.TRAPPED
    assert matrix.outcomes["mpx"][Idiom.IA] is Outcome.SUPPORTED
    # WIDE is broken everywhere (64-bit addresses never fit in 32 bits).
    assert all(not matrix.supported(model, Idiom.WIDE) for model in matrix.outcomes)

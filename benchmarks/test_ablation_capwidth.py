"""Ablation: capability width (256-bit vs. hypothetical 128-bit compressed).

DESIGN.md calls out capability width as the design choice behind the Olden
overhead.  The paper's capabilities are 256 bits; later CHERI work compresses
them to 128 bits.  Running the most pointer-dense kernel (treeadd) with the
CHERIv3 model at 32-, 16- and 8-byte pointer widths shows how much of the
Figure 1 overhead is purely pointer-footprint — at 8 bytes the "capability"
build matches the MIPS build's memory behaviour and the overhead collapses.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.api import compile_for_model
from repro.interp.machine import AbstractMachine
from repro.interp.models.cheri_v3 import CheriV3Model
from repro.workloads.olden import treeadd

WIDTHS = (32, 16, 8)


def _run_width(width: int):
    model = CheriV3Model(capability_bytes=width)
    module = compile_for_model(treeadd.source(), model)
    machine = AbstractMachine(module, model, max_instructions=80_000_000)
    result = machine.run()
    assert not result.trapped and result.exit_code == 0
    return result


def test_ablation_capability_width(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: {width: _run_width(width) for width in WIDTHS}, rounds=1, iterations=1
    )
    baseline = results[8]
    lines = [f"{'capability bytes':>17}{'cycles':>12}{'vs 8-byte':>12}"]
    lines.append("-" * len(lines[0]))
    for width in WIDTHS:
        overhead = (results[width].cycles - baseline.cycles) / baseline.cycles
        lines.append(f"{width:>17}{results[width].cycles:>12}{overhead * 100:>11.1f}%")
    write_result(results_dir, "ablation_capwidth.txt", "\n".join(lines))

    # Wider capabilities cost strictly more cycles on a pointer-chasing kernel.
    assert results[32].cycles > results[16].cycles > results[8].cycles
    # And the work performed is identical: the effect is purely memory-system.
    assert results[32].instructions == results[8].instructions

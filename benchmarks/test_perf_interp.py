"""Interpreter throughput benchmark: instructions/second on the hot workloads.

Unlike the figure/table benchmarks (which report *simulated cycles*), this
benchmark tracks how fast the abstract machine itself executes — the binding
constraint on growing workloads now that every figure is produced by the
interpreter.  It writes ``results/BENCH_interp.json`` so the performance
trajectory is tracked from the predecode PR onward; ``PERFORMANCE.md``
documents the workflow.

The ``SEED_IPS`` constants are the best-of-3 throughput of the original
opcode-chain interpreter (seed commit 607eec0) measured on the reference
container; ``speedup_vs_seed`` in the JSON is relative to them.  The assertion
uses a deliberately loose floor so that hardware variation does not produce
false failures, while a real dispatch-path regression still trips it.

The JSON also carries a ``lockstep_sweep`` series: differential-sweep
throughput (program-runs/s) of the lockstep batched engine vs the serial
engine, measured with interleaved rounds in one process so the wandering
container clock cancels out (``speedup_vs_pr9``).

The test is marked ``perf`` and excluded from the default (tier-1) pytest
run — wall-clock assertions do not belong in correctness CI.  Run it with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_interp.py -m perf -q
"""

from __future__ import annotations

import json
import statistics
import time

import pytest
from conftest import write_result

from repro.core.api import compile_for_model
from repro.difftest.generator import generate_program
from repro.difftest.runner import DifferentialRunner
from repro.interp.machine import AbstractMachine
from repro.interp.models import PAPER_MODEL_ORDER, get_model
from repro.workloads import dhrystone, tcpdump, zlib_like
from repro.workloads.olden import bisort, treeadd

MODELS = ("pdp11", "cheri_v3")
ROUNDS = 3

WORKLOADS = {
    "treeadd": lambda: treeadd.source(depth=10, passes=3),
    "dhrystone": lambda: dhrystone.source(runs=dhrystone.DEFAULT_RUNS),
    "tcpdump": lambda: tcpdump.baseline_source(packets=tcpdump.DEFAULT_PACKETS),
    "zlib_like": lambda: zlib_like.source(),
    "bisort": lambda: bisort.source(count=bisort.DEFAULT_COUNT),
}

#: best-of-3 instructions/sec of the pre-predecode interpreter (seed commit
#: 607eec0); treeadd/dhrystone were recorded on the reference container for
#: PR 1, the other workloads were measured from a 607eec0 worktree on the
#: same container as PR 2.  See PERFORMANCE.md.
SEED_IPS = {
    "treeadd/pdp11": 139224,
    "treeadd/cheri_v3": 104400,
    "dhrystone/pdp11": 102809,
    "dhrystone/cheri_v3": 115634,
    "tcpdump/pdp11": 133744,
    "tcpdump/cheri_v3": 124827,
    "zlib_like/pdp11": 184451,
    "zlib_like/cheri_v3": 189111,
    "bisort/pdp11": 170732,
    "bisort/cheri_v3": 160231,
}

#: best-of-3 instructions/sec recorded by the PR 2 engine (unboxed registers
#: + pair fusion) in results/BENCH_interp.json before the basic-block
#: superinstruction PR; ``speedup_vs_pr2`` in the JSON tracks the block
#: engine against it.
PR2_IPS = {
    "treeadd/pdp11": 984881,
    "treeadd/cheri_v3": 880706,
    "dhrystone/pdp11": 1022995,
    "dhrystone/cheri_v3": 763562,
    "tcpdump/pdp11": 1038497,
    "tcpdump/cheri_v3": 1013122,
    "zlib_like/pdp11": 2082419,
    "zlib_like/cheri_v3": 1736845,
    "bisort/pdp11": 1495324,
    "bisort/cheri_v3": 1069904,
}

#: minimum acceptable speedup over the seed interpreter (the measured value
#: is ~5-8x after the unboxed-value/fusion PR; the floor leaves room for
#: slower/noisier machines).
MIN_SPEEDUP = 1.5

#: lockstep sweep series (repro.interp.lockstep): corpus size, interleaved
#: rounds, and the regression floor on the batched engine's sweep throughput
#: relative to the serial engine measured *in the same run*.  Interleaving
#: (serial, all, pairs, serial per round; median of per-round ratios) is the
#: protocol PERFORMANCE.md prescribes because the container clock wanders
#: ±15-20% between runs — absolute IPS baselines would be noise here.  The
#: measured medians are ~1.0-1.05x (see the lockstep decomposition in
#: PERFORMANCE.md: generated programs execute each pc about once, so sweep
#: cost is per-lane binding + first execution, which lanes cannot share) —
#: the floor is a *regression* guard: batching must never make the sweep
#: meaningfully slower, while leaving room for the clock wander.
LOCKSTEP_PROGRAMS = 300
LOCKSTEP_ROUNDS = 3
LOCKSTEP_SEED = 11
MIN_LOCKSTEP_SPEEDUP = 0.85


def _measure_all() -> dict:
    measurements = {}
    for workload, source in WORKLOADS.items():
        for model in MODELS:
            best_ips = 0.0
            best_seconds = 0.0
            instructions = 0
            for _ in range(ROUNDS):
                module = compile_for_model(source(), model)
                machine = AbstractMachine(module, get_model(model),
                                          max_instructions=200_000_000)
                # Predecode (incl. basic-block compilation) outside the
                # timer: the tracked metric is execution throughput, and the
                # note below has always excluded compilation.
                for function in module.functions.values():
                    if function.instrs:
                        machine._code_for(function)
                start = time.perf_counter()
                result = machine.run()
                elapsed = time.perf_counter() - start
                assert not result.trapped and result.exit_code == 0, (workload, model, result.trap)
                instructions = result.instructions
                ips = result.instructions / elapsed
                if ips > best_ips:
                    best_ips = ips
                    best_seconds = elapsed
            key = f"{workload}/{model}"
            measurements[key] = {
                "instructions": instructions,
                "wall_seconds": round(best_seconds, 4),
                "instructions_per_second": round(best_ips),
                "seed_instructions_per_second": SEED_IPS[key],
                "speedup_vs_seed": round(best_ips / SEED_IPS[key], 2),
                "pr2_instructions_per_second": PR2_IPS[key],
                "speedup_vs_pr2": round(best_ips / PR2_IPS[key], 2),
            }
    return measurements


def _measure_lockstep() -> dict:
    """Sweep throughput (program-runs/s), serial vs lockstep, interleaved.

    The unit is program-runs/s (programs x 7 models / wall seconds) over a
    seeded generated corpus — the quantity a differential sweep actually
    buys with batching — not single-machine IPS.  ``speedup_vs_pr9`` is the
    median of per-round ratios against the serial engine bracketing each
    lockstep run (PR 9's sweep path is exactly ``lockstep=None``), so the
    baseline is measured on the same machine in the same process.
    """
    programs = [generate_program(LOCKSTEP_SEED, i)
                for i in range(LOCKSTEP_PROGRAMS)]
    total_runs = LOCKSTEP_PROGRAMS * len(PAPER_MODEL_ORDER)

    def sweep_rate(lockstep: str | None) -> float:
        runner = DifferentialRunner(lockstep=lockstep)
        start = time.perf_counter()
        runner.sweep(programs)
        return total_runs / (time.perf_counter() - start)

    rates: dict[str, list[float]] = {"serial": [], "all": [], "pairs": []}
    ratios: dict[str, list[float]] = {"all": [], "pairs": []}
    for _ in range(LOCKSTEP_ROUNDS):
        before = sweep_rate(None)
        rate_all = sweep_rate("all")
        rate_pairs = sweep_rate("pairs")
        after = sweep_rate(None)
        base = (before + after) / 2
        rates["serial"] += [before, after]
        rates["all"].append(rate_all)
        rates["pairs"].append(rate_pairs)
        ratios["all"].append(rate_all / base)
        ratios["pairs"].append(rate_pairs / base)
    out = {
        "programs": LOCKSTEP_PROGRAMS,
        "program_runs": total_runs,
        "rounds": LOCKSTEP_ROUNDS,
        "serial_runs_per_second": round(statistics.median(rates["serial"])),
    }
    for mode in ("pairs", "all"):
        out[mode] = {
            "runs_per_second": round(statistics.median(rates[mode])),
            "speedup_vs_pr9": round(statistics.median(ratios[mode]), 2),
        }
    return out


@pytest.mark.perf
def test_perf_interp(benchmark, results_dir):
    measurements = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    lockstep = _measure_lockstep()

    payload = {
        "benchmark": "interpreter throughput (basic-block superinstructions + frame pool)",
        "workloads": measurements,
        "rounds": ROUNDS,
        "note": "best-of-N wall time of AbstractMachine.run (compilation excluded)",
        "lockstep_sweep": lockstep,
        "lockstep_note": ("program-runs/s of DifferentialRunner.sweep, "
                          "interleaved serial/lockstep rounds, median ratios"),
    }
    write_result(results_dir, "BENCH_interp.json", json.dumps(payload, indent=1))

    for key, entry in measurements.items():
        assert entry["speedup_vs_seed"] >= MIN_SPEEDUP, (
            f"{key}: {entry['instructions_per_second']} insns/s is only "
            f"{entry['speedup_vs_seed']}x the seed interpreter ({SEED_IPS[key]}); "
            f"the dispatch path has regressed (floor {MIN_SPEEDUP}x)"
        )
    for mode in ("pairs", "all"):
        assert lockstep[mode]["speedup_vs_pr9"] >= MIN_LOCKSTEP_SPEEDUP, (
            f"lockstep {mode}: {lockstep[mode]['speedup_vs_pr9']}x the serial "
            f"sweep engine (floor {MIN_LOCKSTEP_SPEEDUP}x); the batched "
            f"engine has regressed"
        )

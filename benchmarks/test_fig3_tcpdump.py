"""Figure 3: tcpdump packet-processing time under MIPS, CHERIv2 and CHERIv3.

Paper: processing 100,000 packets from the OSDI'06 trace, "the slowdown for
tcpdump (unmodified MIPS vs. CHERIv3) was 4% ± 3%" — i.e. a real,
parse-heavy application sees at most a few percent of capability overhead.

Reproduction: the dissector processes a synthetic trace under the three
models (the CHERIv2 run uses the ported source whose bounds checks avoid
pointer subtraction).  All three runs must parse the identical packet mix,
and the CHERIv3 overhead must stay within a few percent of the MIPS build.
"""

from __future__ import annotations

from conftest import write_result

from repro.workloads import tcpdump

MODELS = ("pdp11", "cheri_v2", "cheri_v3")
PACKETS = tcpdump.DEFAULT_PACKETS


def test_fig3_tcpdump(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: tcpdump.run_figure3(MODELS, packets=PACKETS), rounds=1, iterations=1
    )

    baseline = results["pdp11"]
    lines = [f"{'MODEL':<12}{'cycles':>12}{'packets':>10}{'vs MIPS':>10}"]
    lines.append("-" * len(lines[0]))
    for model in MODELS:
        run = results[model]
        packets_seen = run.result.checkpoints[0] if run.result.checkpoints else 0
        lines.append(f"{model:<12}{run.cycles:>12}{packets_seen:>10}"
                     f"{run.overhead_vs(baseline) * 100:>9.1f}%")
    lines.append("")
    lines.append("smaller time (cycles) is better, as in Figure 3")
    write_result(results_dir, "fig3_tcpdump.txt", "\n".join(lines))

    for model, run in results.items():
        assert run.ok and run.result.exit_code == 0, model
        # identical protocol mix parsed under every model
        assert run.result.checkpoints == baseline.result.checkpoints, model
        assert run.result.checkpoints[0] == PACKETS
    # The paper reports 4% +/- 3%; require the same "a few percent" regime.
    assert abs(results["cheri_v3"].overhead_vs(baseline)) < 0.08
    assert abs(results["cheri_v2"].overhead_vs(baseline)) < 0.08

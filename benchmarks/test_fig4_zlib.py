"""Figure 4: overhead of CHERI-zlib relative to MIPS zlib, by file size.

Paper: the annotated pure-capability build shows "no measurable overhead for
large files and a small overhead for small files"; the binary-compatible
build that copies structures at the library boundary costs "around a 21%
overhead, independent of file size".

Reproduction: the LZ77 library compresses and round-trips synthetic files of
increasing size under the MIPS model and the CHERIv3 model, in both the
annotated and the copying ABI.  Expected shape: annotated overhead near
zero (shrinking as files grow), copying overhead large (tens of percent) and
roughly flat across file sizes.
"""

from __future__ import annotations

from conftest import write_result

from repro.workloads import zlib_like

FILE_SIZES = (256, 512, 1024)


def test_fig4_zlib(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: zlib_like.run_figure4(FILE_SIZES), rounds=1, iterations=1
    )

    lines = [f"{'file bytes':>10}{'MIPS cycles':>14}{'CHERI':>12}{'CHERI(copy)':>13}"
             f"{'annotated %':>13}{'copying %':>11}"]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            f"{row['file_bytes']:>10}{row['baseline_cycles']:>14}{row['annotated_cycles']:>12}"
            f"{row['copying_cycles']:>13}{row['annotated_overhead'] * 100:>12.1f}%"
            f"{row['copying_overhead'] * 100:>10.1f}%"
        )
    lines.append("")
    lines.append("overhead normalised against the MIPS build, as in Figure 4")
    write_result(results_dir, "fig4_zlib.txt", "\n".join(lines))

    annotated = [row["annotated_overhead"] for row in rows]
    copying = [row["copying_overhead"] for row in rows]

    # Annotated ABI: within a few percent of the MIPS build at every size.
    assert all(abs(value) < 0.05 for value in annotated), annotated
    # Copying ABI: a large, roughly size-independent overhead (paper: ~21%).
    assert all(0.10 < value < 0.45 for value in copying), copying
    spread = max(copying) - min(copying)
    assert spread < 0.10, f"copying overhead should be flat across sizes, spread={spread}"
    # Copying is always more expensive than the annotated build.
    assert all(c > a for c, a in zip(copying, annotated))

"""Figure 2: Dhrystone throughput under MIPS, CHERIv2 and CHERIv3.

Paper: "The Dhrystone results show the CHERI version to be around 2% faster
than the MIPS code, but this is well within the margin of error" — i.e. the
capability ABIs impose no meaningful overhead on a compute-bound benchmark.

Reproduction: the condensed Dhrystone loop runs under the three models; the
throughput metric (Dhrystones per simulated second at the paper's 100 MHz
clock) must agree within a few percent across models.
"""

from __future__ import annotations

from conftest import write_result

from repro.workloads import dhrystone

MODELS = ("pdp11", "cheri_v2", "cheri_v3")
RUNS = dhrystone.DEFAULT_RUNS


def _run_all():
    return {model: dhrystone.run(model, runs=RUNS) for model in MODELS}


def test_fig2_dhrystone(benchmark, results_dir):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    lines = [f"{'MODEL':<12}{'cycles':>12}{'Dhrystones/s':>16}{'vs MIPS':>10}"]
    lines.append("-" * len(lines[0]))
    baseline = results["pdp11"]
    for model in MODELS:
        run = results[model]
        throughput = dhrystone.dhrystones_per_second(run, runs=RUNS)
        delta = run.overhead_vs(baseline)
        lines.append(f"{model:<12}{run.cycles:>12}{throughput:>16.0f}{delta * 100:>9.1f}%")
    lines.append("")
    lines.append("bigger Dhrystones/s is better, as in Figure 2")
    write_result(results_dir, "fig2_dhrystone.txt", "\n".join(lines))

    for model, run in results.items():
        assert run.ok and run.result.exit_code == 0, model
    # No meaningful difference between the MIPS ABI and either capability ABI.
    assert abs(results["cheri_v3"].overhead_vs(baseline)) < 0.05
    assert abs(results["cheri_v2"].overhead_vs(baseline)) < 0.05

"""Ablation: offset-in-capability (CHERIv3) vs. capability + integer pair.

§4.1 of the paper rejects representing fat pointers as a (capability,
integer-offset) pair in the CHERIv2 model because "an array of fat pointers
represented this way would use 64 bytes per pointer, although 24 of those
would be padding", and because the pair cannot be updated atomically.

This ablation quantifies the first argument on the reproduction's own cache
model: the treeadd kernel is run with 32-byte pointers (CHERIv3's in-line
offset) and with 64-byte pointers (the aligned capability+offset pair), and
the pair representation must cost measurably more cycles for identical work.
The atomicity argument is covered functionally by the tagged-memory tests
(a torn capability+integer pair cannot exist under CHERIv3 because the
offset travels inside the single tagged 256-bit value).
"""

from __future__ import annotations

from conftest import write_result

from repro.core.api import compile_for_model
from repro.interp.machine import AbstractMachine
from repro.interp.models.cheri_v3 import CheriV3Model
from repro.workloads.olden import treeadd

REPRESENTATIONS = {
    "offset in capability (CHERIv3, 32 B)": 32,
    "capability + integer pair (64 B)": 64,
}


def _run_width(width: int):
    model = CheriV3Model(capability_bytes=width)
    module = compile_for_model(treeadd.source(), model)
    result = AbstractMachine(module, model, max_instructions=80_000_000).run()
    assert not result.trapped and result.exit_code == 0
    return result


def test_ablation_fat_pointer_pair(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: {name: _run_width(width) for name, width in REPRESENTATIONS.items()},
        rounds=1, iterations=1,
    )
    v3 = results["offset in capability (CHERIv3, 32 B)"]
    pair = results["capability + integer pair (64 B)"]

    lines = [f"{'representation':<40}{'cycles':>12}"]
    lines.append("-" * len(lines[0]))
    for name, result in results.items():
        lines.append(f"{name:<40}{result.cycles:>12}")
    lines.append("")
    lines.append(f"pair representation penalty: "
                 f"{(pair.cycles - v3.cycles) / v3.cycles * 100:.1f}% on treeadd")
    write_result(results_dir, "ablation_fatpair.txt", "\n".join(lines))

    assert pair.cycles > v3.cycles
    assert pair.instructions == v3.instructions

"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
interesting quantity is almost always *simulated cycles* (the workloads run
on a simulated memory hierarchy), so each benchmark:

* runs the experiment exactly once via ``benchmark.pedantic`` (the runs are
  seconds long; statistical repetition happens inside the simulation), and
* writes the regenerated table to ``results/<experiment>.txt`` so the
  paper-vs-measured comparison is easy to archive (EXPERIMENTS.md points at
  these files).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it to the captured log."""
    path = results_dir / name
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n==== {name} ====\n{text}\n")

"""Smoke tests for the public example scripts.

The five ``examples/*.py`` scripts are the library's public entry points —
the first code a new user runs — but nothing exercised them in CI, so an
API change could silently rot them.  Each test runs one script exactly the
way the docs say to (``PYTHONPATH=src python examples/<name>.py``) and
asserts it exits 0 and prints something; all five together take under three
seconds.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_every_example_is_covered():
    """New examples must be picked up by this smoke suite automatically."""
    assert [path.name for path in EXAMPLES] == [
        "garbage_collection.py",
        "idiom_survey.py",
        "packet_parser_sandbox.py",
        "porting_workflow.py",
        "quickstart.py",
    ]


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout[-2000:]}\nstderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"

"""Byte-for-byte golden tests for the printf-style ``_format`` intrinsic.

Every expected string below is what glibc ``printf`` produces for the same
conversion (verified against C99 §7.19.6.1 semantics): width, the ``-`` and
``0`` flags, precision and the ``+``/space sign flags must all be honoured —
the seed implementation parsed but dropped them, so hexdump-style output
(``%04x`` and friends) silently diverged from the C reference.
"""

from __future__ import annotations

import pytest

from repro.core.api import run_under_model
from repro.interp.intrinsics import _format
from repro.interp.values import IntVal


def fmt(template: bytes, *values: int) -> bytes:
    """Run ``_format`` over integer arguments (no machine state needed)."""
    args = [IntVal(v, bytes=8) for v in values]
    return _format(None, template, args)


#: (template, argument values, exact C printf output)
GOLDEN_CASES = [
    # width + zero flag on hex: the tcpdump hexdump idiom
    (b"%04x", (0xAB,), b"00ab"),
    (b"%08X", (0xBEEF,), b"0000BEEF"),
    (b"%02x", (0x5,), b"05"),
    (b"%2x", (0xABC,), b"abc"),          # width never truncates
    # plain width pads with spaces on the left
    (b"%8d", (-42,), b"     -42"),
    (b"%5d", (42,), b"   42"),
    (b"%5u", (42,), b"   42"),
    (b"%1d", (12345,), b"12345"),
    # '-' left-justifies
    (b"%-5d|", (42,), b"42   |"),
    (b"%-4x|", (0xF,), b"f   |"),
    # '0' pads after the sign
    (b"%03d", (-7,), b"-07"),
    (b"%06d", (-42,), b"-00042"),
    (b"%05u", (9,), b"00009"),
    # precision is a minimum digit count; sign not included
    (b"%.3d", (5,), b"005"),
    (b"%.3d", (-5,), b"-005"),
    (b"%5.3d", (7,), b"  007"),
    (b"%10.4x", (255,), b"      00ff"),
    # precision 0 prints value 0 as nothing
    (b"%.0d", (0,), b""),
    (b"%.0d|", (7,), b"7|"),
    # '0' flag is ignored when a precision is given (C99 7.19.6.1p6)
    (b"%05.3d", (42,), b"  042"),
    # sign flags for signed conversions
    (b"%+d", (5,), b"+5"),
    (b"%+d", (-5,), b"-5"),
    (b"% d", (5,), b" 5"),
    (b"%+5d", (5,), b"   +5"),
    (b"%+05d", (5,), b"+0005"),
    # %c honours width
    (b"%2c", (65,), b" A"),
    (b"%-2c|", (65,), b"A |"),
    # length modifiers select argument width in C; values already carry it
    (b"%ld", (123456789,), b"123456789"),
    (b"%08lx", (0xABC,), b"00000abc"),
    (b"%zu", (17,), b"17"),
    # %p keeps its 0x-prefixed rendering, now width-aware
    (b"%p", (0x1234,), b"0x1234"),
    (b"%10p", (0x1234,), b"    0x1234"),
    # unchanged basics
    (b"%d%%", (3,), b"3%"),
    (b"a%db", (1,), b"a1b"),
]


@pytest.mark.parametrize("template,values,expected", GOLDEN_CASES,
                         ids=[case[0].decode() for case in GOLDEN_CASES])
def test_format_matches_c_reference(template, values, expected):
    assert fmt(template, *values) == expected


def test_format_string_width_precision_via_interpreter():
    """%s width/precision and sprintf round-trip, end to end on the machine."""
    source = r"""
    int main(void) {
        char buf[64];
        printf("[%04x]\n", 171);
        printf("[%8d]\n", 0 - 42);
        printf("[%-6s]\n", "hi");
        printf("[%.3s]\n", "hello");
        printf("[%6.2s]\n", "hello");
        sprintf(buf, "%03d/%+d/%.0d", 0 - 7, 5, 0);
        printf("%s\n", buf);
        return 0;
    }
    """
    result = run_under_model(source, "pdp11")
    assert not result.trapped and result.exit_code == 0
    assert result.output == (
        b"[00ab]\n"
        b"[     -42]\n"
        b"[hi    ]\n"
        b"[hel]\n"
        b"[    he]\n"
        b"-07/+5/\n"
    )


def test_format_missing_and_unknown_conversions_pass_through():
    # fewer arguments than conversions: the spec is emitted literally
    assert fmt(b"%d %d", 1) == b"1 %d"
    # unknown conversion characters are emitted literally, spec included
    assert fmt(b"%4q", 1) == b"%4q"

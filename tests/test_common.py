"""Tests for repro.common: bit manipulation, RNG, configuration."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common import (
    CacheConfig,
    DeterministicRng,
    MachineConfig,
    TimingConfig,
    align_down,
    align_up,
    bit_field,
    is_aligned,
    mask,
    set_bit_field,
    sign_extend,
    to_signed,
    to_unsigned,
    truncate,
    zero_extend,
)


class TestBitops:
    def test_mask_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(64) == (1 << 64) - 1

    def test_mask_rejects_negative(self):
        with pytest.raises(ValueError):
            mask(-1)

    def test_truncate(self):
        assert truncate(0x1FF, 8) == 0xFF
        assert truncate(-1, 8) == 0xFF
        assert zero_extend(0x80, 8) == 0x80

    def test_sign_extend(self):
        assert sign_extend(0xFF, 8) == -1
        assert sign_extend(0x7F, 8) == 127
        assert sign_extend(0x80, 8) == -128

    def test_to_signed_unsigned_roundtrip(self):
        assert to_signed(to_unsigned(-5)) == -5
        assert to_unsigned(-1) == (1 << 64) - 1

    def test_alignment_helpers(self):
        assert align_down(0x1234, 16) == 0x1230
        assert align_up(0x1231, 16) == 0x1240
        assert align_up(0x1240, 16) == 0x1240
        assert is_aligned(64, 32)
        assert not is_aligned(65, 32)

    def test_alignment_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            align_down(10, 3)
        with pytest.raises(ValueError):
            is_aligned(10, 0)

    def test_bit_fields(self):
        value = 0b1011_0110
        assert bit_field(value, 1, 3) == 0b011
        assert set_bit_field(0, 4, 4, 0xF) == 0xF0
        assert set_bit_field(0xFF, 0, 4, 0) == 0xF0

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_signed_roundtrip_property(self, value):
        assert to_signed(to_unsigned(value, 64), 64) == value

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=1, max_value=64))
    def test_truncate_idempotent(self, value, bits):
        assert truncate(truncate(value, bits), bits) == truncate(value, bits)

    @given(st.integers(min_value=0, max_value=2**32), st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    def test_align_up_properties(self, value, alignment):
        aligned = align_up(value, alignment)
        assert aligned >= value
        assert is_aligned(aligned, alignment)
        assert aligned - value < alignment


class TestRng:
    def test_determinism(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert DeterministicRng(1).next_u64() != DeterministicRng(2).next_u64()

    def test_zero_seed_is_usable(self):
        assert DeterministicRng(0).next_u64() != 0

    def test_randint_bounds(self):
        rng = DeterministicRng(7)
        values = [rng.randint(3, 9) for _ in range(200)]
        assert all(3 <= v <= 9 for v in values)
        assert len(set(values)) > 1

    def test_randint_rejects_bad_range(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).randint(5, 4)

    def test_random_in_unit_interval(self):
        rng = DeterministicRng(3)
        assert all(0.0 <= rng.random() < 1.0 for _ in range(100))

    def test_choice_and_empty(self):
        rng = DeterministicRng(5)
        assert rng.choice([4]) == 4
        with pytest.raises(ValueError):
            rng.choice([])

    def test_bytes_length(self):
        assert len(DeterministicRng(9).bytes(13)) == 13

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(11)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items


class TestConfig:
    def test_cache_geometry(self):
        config = CacheConfig(size_bytes=16 * 1024, line_bytes=64, associativity=4)
        assert config.num_sets == 64

    def test_cache_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=64, associativity=4)

    def test_default_timing_matches_paper_platform(self):
        timing = TimingConfig()
        assert timing.l1.size_bytes == 16 * 1024
        assert timing.l2.size_bytes == 64 * 1024
        assert timing.clock_hz == 100_000_000

    def test_pointer_bytes_by_abi(self):
        config = MachineConfig()
        assert config.pointer_bytes(capabilities=False) == 8
        assert config.pointer_bytes(capabilities=True) == 32

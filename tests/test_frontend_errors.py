"""Front-end error paths: malformed mini-C must raise structured diagnostics.

Every failure mode — lexical, syntactic, semantic, resource (nesting depth)
— must surface as a :class:`repro.common.errors.CompilationError` subclass
with source coordinates, never as a raw Python traceback
(``RecursionError``, ``ValueError``, ``IndexError``...).  The differential
fuzzing subsystem leans on this: its oracle treats ``CompilationError`` as a
classified outcome and anything else as a bug in the front end.
"""

from __future__ import annotations

import pytest

from repro.common.errors import (
    CompilationError,
    LexError,
    ParseError,
    TypeCheckError,
)
from repro.minic.irgen import compile_source

# ---------------------------------------------------------------------------
# Lexical errors
# ---------------------------------------------------------------------------

LEX_CASES = {
    "unterminated string": 'int main(void) { puts("abc); return 0; }',
    "newline inside string": 'int main(void) { puts("abc\ndef"); return 0; }',
    "\\x escape with no digits": r'int main(void) { puts("a\x"); return 0; }',
    "unterminated block comment": "int main(void) { /* comment",
    "hex literal with no digits": "int main(void) { int x = 0x; return x; }",
    "unterminated char literal": "int main(void) { int c = 'a; return 0; }",
    "unexpected character": "int main(void) { int x = 1 @ 2; return x; }",
}


@pytest.mark.parametrize("source", LEX_CASES.values(), ids=LEX_CASES.keys())
def test_lexical_errors_are_structured(source):
    with pytest.raises(LexError) as excinfo:
        compile_source(source)
    assert excinfo.value.line is not None


def test_hex_escape_is_masked_to_a_byte():
    module = compile_source(r'char *s = "\xff";')
    assert module is not None


# ---------------------------------------------------------------------------
# Syntactic errors, including resource limits
# ---------------------------------------------------------------------------

PARSE_CASES = {
    "missing semicolon": "int main(void) { int x = 1 return x; }",
    "missing close paren": "int main(void) { return (1 + 2; }",
    "array size must be literal": "int main(void) { int n = 4; int a[n]; return 0; }",
    "bare expression at top level": "1 + 2;",
    "do without while": "int main(void) { do { } return 0; }",
}


@pytest.mark.parametrize("source", PARSE_CASES.values(), ids=PARSE_CASES.keys())
def test_parse_errors_are_structured(source):
    with pytest.raises(ParseError):
        compile_source(source)


@pytest.mark.parametrize("payload", [
    "(" * 300 + "1" + ")" * 300,
    "!" * 400 + "1",
], ids=["deep parentheses", "deep unary chain"])
def test_deep_expression_nesting_is_a_diagnostic_not_a_recursionerror(payload):
    with pytest.raises(ParseError, match="nesting deeper"):
        compile_source("int main(void) { return " + payload + "; }")


def test_deep_block_nesting_is_a_diagnostic_not_a_recursionerror():
    source = "int main(void) { " + "{" * 300 + "}" * 300 + " return 0; }"
    with pytest.raises(ParseError, match="nesting deeper"):
        compile_source(source)


def test_reasonable_nesting_still_parses():
    source = "int main(void) { return " + "(" * 40 + "1" + ")" * 40 + "; }"
    assert compile_source(source) is not None


# ---------------------------------------------------------------------------
# Semantic errors
# ---------------------------------------------------------------------------

TYPE_CASES = {
    "undeclared identifier": "int main(void) { return nope; }",
    "unknown struct member":
        "struct S { int a; }; int main(void) { struct S s; return s.b; }",
    "call to undeclared function": "int main(void) { return f(1); }",
    "break outside loop": "int main(void) { break; return 0; }",
    "continue outside loop": "int main(void) { continue; return 0; }",
    "incomplete struct": "struct S; int main(void) { struct S s; return 0; }",
    "assignment to rvalue": "int main(void) { 4 = 5; return 0; }",
    "dereference of non-pointer": "int main(void) { int x = 3; return *x; }",
    "member of non-struct": "int main(void) { int x; return x.f; }",
    "arrow on non-pointer": "int main(void) { int x; return x->f; }",
    "offsetof unknown member":
        "struct S { int a; }; int main(void) { return offsetof(struct S, b); }",
    "struct/int conversion":
        "struct S { int a; }; struct S g(void) { return 3; } int main(void) { return 0; }",
}


@pytest.mark.parametrize("source", TYPE_CASES.values(), ids=TYPE_CASES.keys())
def test_type_errors_are_structured(source):
    with pytest.raises(TypeCheckError):
        compile_source(source)


# ---------------------------------------------------------------------------
# The umbrella property
# ---------------------------------------------------------------------------


def test_every_malformed_case_raises_a_compilation_error():
    """The oracle-facing contract: CompilationError or nothing."""
    for source in [*LEX_CASES.values(), *PARSE_CASES.values(), *TYPE_CASES.values()]:
        try:
            compile_source(source)
        except CompilationError:
            pass
        except Exception as exc:  # pragma: no cover - a real failure
            pytest.fail(f"raw {type(exc).__name__} leaked for: {source!r}")

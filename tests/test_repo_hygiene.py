"""Repository hygiene guards: bytecode, documentation links, docstrings.

The seed repository carried 51 ``src/**/__pycache__/*.pyc`` files in the git
index; a stale committed ``.pyc`` can shadow a source edit for anyone whose
interpreter version matches, which makes "I changed the file and nothing
happened" bugs possible.  The index was purged and a root ``.gitignore``
added; the bytecode tests keep it that way.

PR 5 added a ``docs/`` subsystem; the documentation tests keep it honest:
every relative link inside ``docs/*.md`` and ``README.md`` must resolve,
every ``results/<file>`` either of them cites must exist in the repository,
and every ``src/repro/*/`` package must carry a real module docstring (the
docs pages lean on them).
"""

from __future__ import annotations

import ast
import pathlib
import re
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _tracked_files() -> list[str]:
    try:
        proc = subprocess.run(
            ["git", "ls-files"], cwd=REPO_ROOT, capture_output=True,
            text=True, timeout=30, check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git is not available")
    if proc.returncode != 0:
        pytest.skip("not inside a git work tree")
    return proc.stdout.splitlines()


def test_no_bytecode_is_git_tracked():
    offenders = [path for path in _tracked_files()
                 if path.endswith(".pyc") or "__pycache__" in path]
    assert not offenders, (
        "compiled bytecode is committed (run `git rm -r --cached` on these "
        f"and keep .gitignore intact): {offenders[:10]}"
    )


def test_gitignore_covers_caches():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    for pattern in ("__pycache__/", "*.pyc", ".pytest_cache/",
                    ".hypothesis/", ".benchmarks/",
                    "difftest_journal*.jsonl", "*.journal.jsonl",
                    "artifact-cache*/", "*.artifact-cache/", "*.art",
                    "*.status.json"):
        assert pattern in gitignore, f".gitignore lost the {pattern!r} entry"


def test_no_sweep_journal_scratch_is_git_tracked():
    """Write-ahead journals are per-run checkpoint state (one JSON line per
    completed program); committing one would ship a multi-megabyte scratch
    file and make ``--resume`` silently pick up a stale sweep."""
    offenders = [path for path in _tracked_files()
                 if path.endswith(".journal.jsonl")
                 or pathlib.PurePosixPath(path).name.startswith("difftest_journal")]
    assert not offenders, (
        f"sweep journal scratch is committed (git rm --cached): {offenders[:10]}"
    )


def test_no_artifact_cache_scratch_is_git_tracked():
    """Disk-tier cache entries (and their quarantine evidence) are
    content-addressed machine state — regenerable from source, specific to
    one interpreter build, and poisonous when stale; they must never ride
    along in a commit."""
    offenders = [path for path in _tracked_files()
                 if path.endswith(".art")
                 or "artifact-cache" in path
                 or "/quarantine/" in path]
    assert not offenders, (
        f"artifact-cache scratch is committed (git rm --cached): {offenders[:10]}"
    )


# ---------------------------------------------------------------------------
# Documentation
# ---------------------------------------------------------------------------

#: markdown inline links, keeping only the target: [text](target)
_MD_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
#: results files cited in prose or tables (``results/<file>`` with a suffix)
_RESULTS_REF = re.compile(r"results/([A-Za-z0-9_.-]+\.[A-Za-z0-9]+)")


def _doc_pages() -> list[pathlib.Path]:
    pages = sorted((REPO_ROOT / "docs").glob("*.md"))
    assert pages, "docs/ must contain the subsystem documentation"
    return pages + [REPO_ROOT / "README.md"]


def test_docs_exist():
    names = {page.name for page in (REPO_ROOT / "docs").glob("*.md")}
    assert {"models.md", "difftest.md", "pipeline.md"} <= names


def test_lockstep_engine_is_documented():
    """The batched engine's user-facing contract lives in the docs, not
    just the module docstring: ``docs/pipeline.md`` must describe the lane
    layout, divergence mask, rejoin rule and fallback contract, and
    ``PERFORMANCE.md`` must carry the measured sweep numbers."""
    pipeline = (REPO_ROOT / "docs" / "pipeline.md").read_text(encoding="utf-8")
    assert "## Lockstep batched execution" in pipeline
    for term in ("Lane layout", "Divergence mask", "rejoin", "sync pc",
                 "Fallback contract", "lockstep.py"):
        assert term in pipeline, f"pipeline.md lost the {term!r} coverage"
    performance = (REPO_ROOT / "PERFORMANCE.md").read_text(encoding="utf-8")
    assert "lockstep" in performance.lower(), (
        "PERFORMANCE.md must document the lockstep sweep numbers")


def test_docs_internal_links_resolve():
    broken = []
    for page in _doc_pages():
        for target in _MD_LINK.findall(page.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            resolved = (page.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(f"{page.relative_to(REPO_ROOT)} -> {target}")
    assert not broken, f"dangling documentation links: {broken}"


def test_docs_reference_existing_results_files():
    missing = []
    for page in _doc_pages():
        for name in _RESULTS_REF.findall(page.read_text(encoding="utf-8")):
            if name.startswith("difftest_journal"):
                # per-run journal scratch (gitignored by design): the docs
                # legitimately cite it in runbook commands, never as an
                # artifact that must exist in the repository
                continue
            if not (REPO_ROOT / "results" / name).exists():
                missing.append(f"{page.relative_to(REPO_ROOT)} cites results/{name}")
    assert not missing, f"documentation cites absent results files: {missing}"


def test_every_package_has_a_module_docstring():
    inits = sorted((REPO_ROOT / "src" / "repro").glob("*/__init__.py"))
    assert inits, "src/repro must contain packages"
    bare = []
    for init in inits + [REPO_ROOT / "src" / "repro" / "__init__.py"]:
        tree = ast.parse(init.read_text(encoding="utf-8"))
        docstring = ast.get_docstring(tree)
        if not docstring or not docstring.strip():
            bare.append(str(init.relative_to(REPO_ROOT)))
    assert not bare, f"packages missing module docstrings: {bare}"

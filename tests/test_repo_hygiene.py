"""Lint guard: compiled bytecode must never be committed.

The seed repository carried 51 ``src/**/__pycache__/*.pyc`` files in the git
index; a stale committed ``.pyc`` can shadow a source edit for anyone whose
interpreter version matches, which makes "I changed the file and nothing
happened" bugs possible.  The index was purged and a root ``.gitignore``
added; this test keeps it that way.
"""

from __future__ import annotations

import pathlib
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _tracked_files() -> list[str]:
    try:
        proc = subprocess.run(
            ["git", "ls-files"], cwd=REPO_ROOT, capture_output=True,
            text=True, timeout=30, check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git is not available")
    if proc.returncode != 0:
        pytest.skip("not inside a git work tree")
    return proc.stdout.splitlines()


def test_no_bytecode_is_git_tracked():
    offenders = [path for path in _tracked_files()
                 if path.endswith(".pyc") or "__pycache__" in path]
    assert not offenders, (
        "compiled bytecode is committed (run `git rm -r --cached` on these "
        f"and keep .gitignore intact): {offenders[:10]}"
    )


def test_gitignore_covers_caches():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    for pattern in ("__pycache__/", "*.pyc", ".pytest_cache/",
                    ".hypothesis/", ".benchmarks/"):
        assert pattern in gitignore, f".gitignore lost the {pattern!r} entry"

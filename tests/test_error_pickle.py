"""Pickle-safety of the ReproError hierarchy.

The sharded difftest service ships traps across a multiprocessing boundary;
every exception the library raises intentionally must round-trip through
pickle with its structured metadata (trap cause, fault address, source
location) intact — the oracle classifies on those attributes, never by
parsing messages.
"""

from __future__ import annotations

import pickle

import pytest

from repro.common.errors import (
    AlignmentViolation,
    BoundsViolation,
    CompilationError,
    InterpreterError,
    JournalError,
    LexError,
    MemorySafetyError,
    ParseError,
    PermissionViolation,
    ReproError,
    ServiceError,
    SimulationError,
    TagViolation,
    TrapError,
    TypeCheckError,
    UndefinedBehaviorError,
)


def _roundtrip(exc):
    return pickle.loads(pickle.dumps(exc))


def test_every_error_class_roundtrips_bare():
    classes = [ReproError, MemorySafetyError, BoundsViolation, TagViolation,
               PermissionViolation, AlignmentViolation, CompilationError,
               LexError, ParseError, TypeCheckError, SimulationError,
               TrapError, InterpreterError, UndefinedBehaviorError,
               ServiceError, JournalError]
    for cls in classes:
        clone = _roundtrip(cls("boom"))
        assert type(clone) is cls
        assert str(clone) == "boom"


def test_memory_safety_error_keeps_structured_trap_metadata():
    exc = BoundsViolation("oob store", address=0x1234, cause="bounds")
    clone = _roundtrip(exc)
    assert clone.address == 0x1234
    assert clone.cause == "bounds"
    assert str(clone) == "oob store"
    # subclass default causes survive too
    assert _roundtrip(TagViolation("cleared tag")).cause == "tag"


def test_unpicklable_capability_degrades_to_repr():
    class Opaque:
        """Stands in for interpreter-internal object graphs."""

        def __reduce__(self):
            raise TypeError("deliberately unpicklable")

        def __repr__(self):
            return "<opaque cap>"

    exc = MemorySafetyError("trap", capability=Opaque(), cause="tag")
    clone = _roundtrip(exc)
    assert clone.capability == "<opaque cap>"
    assert clone.cause == "tag"


def test_compilation_error_location_is_not_double_appended():
    exc = ParseError("unexpected token", line=3, column=7)
    assert str(exc) == "unexpected token (line 3, col 7)"
    clone = _roundtrip(exc)
    # the default Exception reduce would re-run __init__ and yield
    # "... (line 3, col 7) (line 3, col 7)"
    assert str(clone) == "unexpected token (line 3, col 7)"
    assert (clone.line, clone.column) == (3, 7)


def test_trap_error_keeps_cause_and_pc():
    clone = _roundtrip(TrapError("bad store", cause="bounds", pc=42))
    assert clone.cause == "bounds"
    assert clone.pc == 42


def test_machine_produced_trap_roundtrips():
    """An organic trap out of the interpreter (machine graph attached at
    raise time) must pickle after the runner's traceback scrub."""
    from repro.difftest import DifferentialRunner
    from repro.difftest.oracle import trap_cause

    runner = DifferentialRunner(models=("pdp11", "mpx"), analyze=False)
    result = runner.run_source(
        "int main(void) {\n"
        "    int *h = (int *)malloc(16);\n"
        "    free(h);\n"
        "    mini_checkpoint(h[0]);\n"
        "    return 0;\n"
        "}\n"
    )
    trap = result.results["mpx"].trap
    assert trap is not None
    clone = _roundtrip(trap)
    assert type(clone) is type(trap)
    assert trap_cause(clone) == trap_cause(trap) == "uaf"
    assert str(clone) == str(trap)


def test_trap_roundtrips_inside_execution_result_containers():
    exc = BoundsViolation("oob", address=8, cause="bounds")
    payload = {"trap": exc, "nested": [exc]}
    clone = pickle.loads(pickle.dumps(payload))
    assert clone["trap"].address == 8
    assert clone["nested"][0].cause == "bounds"


@pytest.mark.parametrize("proto", range(2, pickle.HIGHEST_PROTOCOL + 1))
def test_roundtrip_across_pickle_protocols(proto):
    exc = PermissionViolation("ro store", address=16, cause="permission")
    clone = pickle.loads(pickle.dumps(exc, protocol=proto))
    assert clone.address == 16
    assert clone.cause == "permission"

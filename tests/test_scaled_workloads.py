"""Golden metrics for the scaled (closer-to-paper) workload configurations.

The interpreter perf PRs exist so the paper's figures can be produced at
realistic problem sizes.  This test pins the simulated metrics of the first
scaled configuration — Olden treeadd at ``DEEP_DEPTH``/``DEEP_PASSES``
(4095 heap nodes, two summation passes) — under the two benchmark models.

The numbers below were recorded from **both** the current engine and the
pre-optimization seed interpreter (commit 607eec0, run from a worktree):
they agreed bit-for-bit, so this golden extends the observational-identity
guarantee of ``tests/test_metrics_golden.py`` to a problem size the seed
interpreter was too slow to gate CI on.
"""

from __future__ import annotations

import pytest

from repro.core.api import run_under_model
from repro.workloads.olden import treeadd

GOLDEN = {
    "pdp11": dict(instructions=356347, cycles=750098, memory_accesses=135166,
                  allocations=28674, checkpoints=[8190], exit_code=0, trap=None),
    "cheri_v3": dict(instructions=356347, cycles=1194272, memory_accesses=135166,
                     allocations=28674, checkpoints=[8190], exit_code=0, trap=None),
}


@pytest.mark.parametrize("model", sorted(GOLDEN))
def test_deep_treeadd_metrics(model: str) -> None:
    result = run_under_model(
        treeadd.source(depth=treeadd.DEEP_DEPTH, passes=treeadd.DEEP_PASSES), model
    )
    observed = dict(
        instructions=result.instructions,
        cycles=result.cycles,
        memory_accesses=result.memory_accesses,
        allocations=result.allocations,
        checkpoints=result.checkpoints,
        exit_code=result.exit_code,
        trap=type(result.trap).__name__ if result.trap else None,
    )
    assert observed == GOLDEN[model]

"""Crash-consistent persistent artifact cache (repro.interp.diskcache).

Two layers of coverage:

* **Container-level** tests drive :class:`DiskCache` directly with synthetic
  payload bytes: every corruption class (torn header, garbage header, stale
  analysis version, truncated payload, flipped bit, wrong key) must be
  caught by validation, quarantined with the right reason suffix, and
  reported as a miss — never served.  Lock-file coordination (live-holder
  skip, dead-PID takeover, abandoned-temp sweep) and the armed fault kinds
  are pinned here too.
* **Pipeline-level** tests run real differential sweeps through the tier
  and pin the acceptance contract: cold cache, warm cache and no cache all
  classify bit-identically, and the warm run actually hits.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.difftest.generator import generate_program
from repro.difftest.oracle import cell_record, classify_results
from repro.difftest.runner import DifferentialRunner
from repro.interp import diskcache
from repro.interp.artifact import ARTIFACTS
from repro.interp.diskcache import DiskCache

KEY = "ab" + "0" * 62
OTHER_KEY = "cd" + "1" * 62
PAYLOAD = b"not-really-marshal-but-the-container-does-not-care"


@pytest.fixture
def cache(tmp_path):
    return DiskCache(str(tmp_path / "cache"), fsync=False)


@pytest.fixture
def no_tier():
    """Isolate the module tier: tests restore the disabled state afterwards."""
    diskcache.configure(None)
    ARTIFACTS.clear()
    yield
    diskcache.configure(None)
    ARTIFACTS.clear()


# ---------------------------------------------------------------------------
# Container round-trip and validation
# ---------------------------------------------------------------------------


def test_store_then_load_roundtrip(cache):
    assert cache.load(KEY) is None
    assert cache.store(KEY, PAYLOAD)
    assert cache.load(KEY) == PAYLOAD
    assert cache.stats["stores"] == 1
    assert cache.stats["hits"] == 1
    assert cache.stats["misses"] == 1


def test_keys_do_not_alias(cache):
    cache.store(KEY, PAYLOAD)
    cache.store(OTHER_KEY, b"other")
    assert cache.load(KEY) == PAYLOAD
    assert cache.load(OTHER_KEY) == b"other"


def _quarantined_reasons(cache):
    try:
        names = os.listdir(cache.quarantine_dir)
    except FileNotFoundError:
        return []
    return sorted(name.split(".art.", 1)[1] for name in names)


def _corrupt(path, mutate):
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    with open(path, "wb") as handle:
        handle.write(bytes(mutate(data)))


@pytest.mark.parametrize("mutate,reason", [
    (lambda data: data[:data.find(b"\n") + 1 + 10], "truncated"),
    (lambda data: data[:5], "truncated-header"),
    (lambda data: b"{not json" + data[data.find(b"\n"):], "corrupt-header"),
    (lambda data: bytes(data[:len(data) - 10])
        + bytes([data[len(data) - 10] ^ 0x01]) + bytes(data[len(data) - 9:]),
     "checksum"),
], ids=["torn-payload", "headerless", "garbage-header", "bitflip"])
def test_corruption_is_quarantined_and_regenerated(cache, mutate, reason):
    cache.store(KEY, PAYLOAD)
    path = cache.entry_path(KEY)
    _corrupt(path, mutate)
    # Never served: the corrupt entry is a miss, moved aside with evidence.
    assert cache.load(KEY) is None
    assert not os.path.exists(path)
    assert _quarantined_reasons(cache) == [reason]
    assert cache.stats["quarantined"] == 1
    # And the regenerate path works: a fresh store fully heals the key.
    assert cache.store(KEY, PAYLOAD)
    assert cache.load(KEY) == PAYLOAD


def _rewrite_header(data: bytearray, **overrides) -> bytes:
    newline = data.find(b"\n")
    header = json.loads(data[:newline])
    header.update(overrides)
    line = (json.dumps(header, sort_keys=True, separators=(",", ":"))
            + "\n").encode("ascii")
    return line + bytes(data[newline + 1:])


def test_stale_analysis_version_is_never_trusted(cache):
    cache.store(KEY, PAYLOAD)
    _corrupt(cache.entry_path(KEY),
             lambda data: _rewrite_header(data, analysis="f" * 16))
    assert cache.load(KEY) is None
    assert _quarantined_reasons(cache) == ["version-mismatch"]


def test_foreign_schema_and_key_mismatch_are_quarantined(cache):
    cache.store(KEY, PAYLOAD)
    _corrupt(cache.entry_path(KEY),
             lambda data: _rewrite_header(data, version=999))
    assert cache.load(KEY) is None
    cache.store(KEY, PAYLOAD)
    _corrupt(cache.entry_path(KEY),
             lambda data: _rewrite_header(data, key=OTHER_KEY))
    assert cache.load(KEY) is None
    assert _quarantined_reasons(cache) == ["foreign-entry", "key-mismatch"]


# ---------------------------------------------------------------------------
# Lock coordination
# ---------------------------------------------------------------------------


def test_live_lock_holder_skips_the_store(cache):
    os.makedirs(os.path.dirname(cache._lock_path(KEY)), exist_ok=True)
    with open(cache._lock_path(KEY), "wb") as handle:
        handle.write(f"{os.getpid()}:x-no-such-host".encode())
    # Cross-host live-looking lock: not liveness-checkable, holder wins.
    assert cache.store(KEY, PAYLOAD) is False
    assert cache.stats["store_skips"] == 1
    assert cache.load(KEY) is None  # nothing was written


def test_dead_pid_lock_is_taken_over(cache):
    cache._plant_stale_lock(KEY)
    # Simulate the dead writer's abandoned temp file alongside its lock.
    directory = os.path.dirname(cache.entry_path(KEY))
    os.makedirs(directory, exist_ok=True)
    abandoned = os.path.join(directory, f".{KEY}.{4_194_302}.tmp")
    open(abandoned, "wb").close()
    assert cache.store(KEY, PAYLOAD) is True
    assert cache.stats["lock_takeovers"] == 1
    assert cache.load(KEY) == PAYLOAD
    assert not os.path.exists(cache._lock_path(KEY))
    assert not os.path.exists(abandoned)


def test_garbage_lock_file_counts_as_stale(cache):
    os.makedirs(os.path.dirname(cache._lock_path(KEY)), exist_ok=True)
    with open(cache._lock_path(KEY), "wb") as handle:
        handle.write(b"torn-write-no-pid")
    assert cache.store(KEY, PAYLOAD) is True
    assert cache.load(KEY) == PAYLOAD


# ---------------------------------------------------------------------------
# Armed faults (the --inject cache-* hooks)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fault", ["cache-torn", "cache-bitflip",
                                   "cache-stale-lock"])
def test_armed_fault_recovers_to_a_good_entry(cache, fault):
    cache.arm_fault(fault)
    assert cache.store(KEY, PAYLOAD) is True
    assert cache.armed_fault is None
    assert cache.stats["faults_injected"] == 1
    # Whatever the fault did, the surviving entry is valid and correct.
    assert cache.load(KEY) == PAYLOAD
    if fault in ("cache-torn", "cache-bitflip"):
        assert cache.stats["quarantined"] == 1
    else:
        assert cache.stats["lock_takeovers"] == 1


def test_arm_fault_rejects_unknown_kind(cache):
    with pytest.raises(ValueError, match="unknown cache fault"):
        cache.arm_fault("cache-meltdown")


# ---------------------------------------------------------------------------
# Pipeline integration: bit-identity across cache states
# ---------------------------------------------------------------------------

_MODELS = ("pdp11", "hardbound")


def _sweep_signature(count=4):
    """Classification records for a small sweep, as canonical JSON."""
    runner = DifferentialRunner(models=_MODELS, analyze=False)
    records = []
    for index in range(count):
        program = generate_program(0, index)
        result = runner.run_program(program)
        records.append(cell_record(program, result, classify_results(result)))
    return json.dumps(records, sort_keys=True)


def test_cold_warm_and_no_cache_classify_bit_identically(tmp_path, no_tier):
    baseline = _sweep_signature()

    diskcache.configure(str(tmp_path / "tier"), fsync=False)
    ARTIFACTS.clear()
    cold = _sweep_signature()
    cold_stats = dict(diskcache.tier().stats)
    assert cold_stats["stores"] > 0
    assert cold_stats["hits"] == 0

    diskcache.configure(str(tmp_path / "tier"), fsync=False)
    ARTIFACTS.clear()
    warm = _sweep_signature()
    warm_stats = dict(diskcache.tier().stats)
    assert warm_stats["hits"] > 0
    assert warm_stats["stores"] == 0  # nothing new to persist when warm

    assert cold == baseline
    assert warm == baseline


def test_corrupted_tier_regenerates_and_stays_identical(tmp_path, no_tier):
    baseline = _sweep_signature(count=2)
    root = tmp_path / "tier"
    diskcache.configure(str(root), fsync=False)
    ARTIFACTS.clear()
    assert _sweep_signature(count=2) == baseline
    # Corrupt every entry on disk, then re-run warm: all corruption must be
    # quarantined and the results must not move a byte.
    entries = [os.path.join(dirpath, name)
               for dirpath, _dirs, names in os.walk(root)
               for name in names if name.endswith(".art")]
    assert entries
    for path in entries:
        _corrupt(path, lambda data: data[:max(1, len(data) // 3)])
    diskcache.configure(str(root), fsync=False)
    ARTIFACTS.clear()
    assert _sweep_signature(count=2) == baseline
    assert diskcache.tier().stats["quarantined"] == len(entries)

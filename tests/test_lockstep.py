"""Batch-equivalence harness for the lockstep engine (repro.interp.lockstep).

Lockstep execution is only trustworthy if it is *observationally invisible*:
every lane of a batch must produce, bit for bit, the result the serial
engine produces for the same (program, model) cell.  These tests pin that
across every model, trap and budget edge:

* a seeded 64-program mini-sweep compares batched vs sequential per-lane
  observables (output, checkpoints, trap kind + message, the budget
  counters) for all 7 models, in both ``pairs`` and ``all`` grouping;
* directed programs exercise the divergence edges — a mid-block trap in
  exactly one lane, budget exhaustion in one lane while a sibling trapped
  earlier, and a block-engine fallback (demotion) in one lane while
  siblings keep their block handlers;
* a ≥1000-program property sweep checks divergence-mask totality (every
  lane lands in exactly one of retired/rejoined/completed) and that lane
  order never changes sibling observables;
* the retained-trap scrub (machine.scrub_trap) clears tracebacks along the
  whole ``__context__``/``__cause__`` chain on both engines.
"""

from __future__ import annotations

import pytest

from repro.core.api import compile_for_model
from repro.difftest.generator import generate_program
from repro.difftest.oracle import classify_results
from repro.difftest.runner import DEFAULT_BUDGET, DifferentialRunner
from repro.interp.lockstep import (
    COMPLETED,
    REJOINED,
    RETIRED,
    LaneOutcome,
    run_lockstep,
)
from repro.interp.machine import AbstractMachine, scrub_trap
from repro.interp.models import PAPER_MODEL_ORDER, get_model
from repro.telemetry import metrics

#: the 8-byte-pointer layout group, in paper order (the 32-byte group is
#: cheri_v2 + cheri_v3).
EIGHT_BYTE = ("pdp11", "hardbound", "mpx", "relaxed", "strict")
CAPABILITY = ("cheri_v2", "cheri_v3")


def _observables(result) -> dict:
    return dict(
        instructions=result.instructions,
        cycles=result.cycles,
        memory_accesses=result.memory_accesses,
        allocations=result.allocations,
        allocated_bytes=result.allocated_bytes,
        output=bytes(result.output),
        exit_code=result.exit_code,
        trap_type=type(result.trap).__name__ if result.trap else None,
        trap_text=str(result.trap) if result.trap else None,
        checkpoints=result.checkpoints,
        engine_fallbacks=result.engine_fallbacks,
        model_name=result.model_name,
    )


def _serial_run(source: str, model: str, *, budget: int = 10_000_000,
                hook=None):
    module = compile_for_model(source, model)
    machine = AbstractMachine(module, get_model(model),
                              max_instructions=budget, shared_blocks=True)
    if hook is not None:
        hook(machine, model)
    return machine.run()


def _lockstep_group(source: str, models, *, budget: int = 10_000_000,
                    hook=None) -> list[LaneOutcome]:
    # One module per group: lanes must share the function objects (and so
    # the predecode artifact), exactly like the runner's layout groups.
    module = compile_for_model(source, models[0])
    machines = []
    for name in models:
        machine = AbstractMachine(module, get_model(name),
                                  max_instructions=budget, shared_blocks=True,
                                  lazy_binding=True)
        if hook is not None:
            hook(machine, name)
        machines.append(machine)
    return run_lockstep(machines)


# ---------------------------------------------------------------------------
# Seeded mini-sweep: batched == sequential for every model
# ---------------------------------------------------------------------------

MINI_SWEEP_SEED = 0
MINI_SWEEP_COUNT = 64


@pytest.mark.parametrize("mode", ["pairs", "all"])
def test_mini_sweep_batched_equals_sequential(mode: str) -> None:
    """64 generated programs, all 7 models, per-lane bit-identity."""
    programs = [generate_program(MINI_SWEEP_SEED, i)
                for i in range(MINI_SWEEP_COUNT)]
    serial = DifferentialRunner().sweep(programs)
    batched = DifferentialRunner(lockstep=mode).sweep(programs)
    trapped = 0
    for index, (expect, got) in enumerate(zip(serial, batched)):
        assert list(got.results) == list(expect.results), index
        assert got.compile_errors == expect.compile_errors, index
        for name in expect.results:
            assert _observables(got.results[name]) == \
                _observables(expect.results[name]), (index, name)
            trapped += expect.results[name].trap is not None
        # the oracle sees identical cells, so Table 5 rows are identical
        assert classify_results(got) == classify_results(expect), index
    # non-vacuity: the corpus exercised traps, not just clean runs
    assert trapped > 0


def test_mini_sweep_counters_account_for_every_lane() -> None:
    """Sweep telemetry: lane/round counters and the occupancy histogram."""
    programs = [generate_program(MINI_SWEEP_SEED, i)
                for i in range(MINI_SWEEP_COUNT)]
    registry = metrics.configure(True)
    try:
        DifferentialRunner(lockstep="all").sweep(programs)
        counters = registry.counter_values("lockstep.")
        snapshot = registry.snapshot()["histograms"]["lockstep.occupancy"]
    finally:
        metrics.configure(False)
    assert counters["lockstep.lanes"] == MINI_SWEEP_COUNT * 7
    assert counters["lockstep.retired.trap"] > 0
    # every lane landed in exactly one disposition bucket
    assert (counters["lockstep.retired.trap"]
            + counters.get("lockstep.retired.budget", 0)
            + counters.get("lockstep.lane.rejoined", 0)
            + counters.get("lockstep.lane.completed", 0)) == \
        counters["lockstep.lanes"]
    # occupancy histogram covers every round; the cross-fork mean mirror
    # (occupied_lane_rounds / rounds) agrees with the histogram's sum
    assert snapshot["count"] == counters["lockstep.rounds"]
    assert snapshot["sum"] == counters["lockstep.occupied_lane_rounds"]


#: lanes that observe different rand() streams take different branch paths —
#: the legitimate divergence source for a group (each lane owns its RNG).
#: The serial comparison uses the identical per-model reseed, so batched
#: equivalence still holds while lanes split and reconverge at loop heads.
DIVERGENT_BRANCHES = r"""
int main(void) {
    long total = 0;
    int i;
    int r;
    for (i = 0; i < 40; i++) {
        r = rand() % 4;
        if (r == 0) {
            int j;
            for (j = 0; j < 20; j++) { total = total + j; }
        } else {
            total = total + r;
        }
        mini_checkpoint(r);
    }
    mini_output_int(total);
    return 0;
}
"""


def _reseed_per_lane(machine, name):
    machine.reseed(sum(name.encode()))


def test_diverged_lanes_rejoin_with_serial_observables() -> None:
    """Branch-split lanes diverge, rejoin, and stay bit-identical to serial."""
    registry = metrics.configure(True)
    try:
        outcomes = _lockstep_group(DIVERGENT_BRANCHES, EIGHT_BYTE,
                                   hook=_reseed_per_lane)
        counters = registry.counter_values("lockstep.")
    finally:
        metrics.configure(False)
    assert counters["lockstep.divergences"] > 0
    assert counters["lockstep.rejoins"] > 0
    rejoined = 0
    for outcome in outcomes:
        expect = _serial_run(DIVERGENT_BRANCHES, outcome.model_name,
                             hook=_reseed_per_lane)
        assert _observables(outcome.result) == _observables(expect), \
            outcome.model_name
        rejoined += outcome.disposition == REJOINED
    assert rejoined > 0
    # per-lane checkpoints prove the lanes really took different paths
    checkpoint_streams = {tuple(o.result.checkpoints) for o in outcomes}
    assert len(checkpoint_streams) > 1


# ---------------------------------------------------------------------------
# Directed divergence edges
# ---------------------------------------------------------------------------

#: f() is called repeatedly so the shared-block tier installs its
#: superinstructions (HOT_CALL_THRESHOLD) before the out-of-bounds step:
#: checked lanes trap *mid-block* on the 11th call while pdp11 keeps going.
TRAP_ONE_LANE = r"""
int arr[10];
int f(int i) {
    arr[i] = i * 3;
    return arr[i] + i;
}
int main(void) {
    int total = 0;
    int i;
    for (i = 0; i < 24; i++) { total = total + f(i); }
    mini_output_int(total);
    return 0;
}
"""


def test_mid_block_trap_in_exactly_one_lane_group() -> None:
    outcomes = _lockstep_group(TRAP_ONE_LANE, EIGHT_BYTE)
    for outcome in outcomes:
        expect = _serial_run(TRAP_ONE_LANE, outcome.model_name)
        assert _observables(outcome.result) == _observables(expect), \
            outcome.model_name
    by_name = {o.model_name: o for o in outcomes}
    # pdp11 silently corrupts and completes; the checked lanes retire
    assert by_name["pdp11"].result.trap is None
    assert by_name["pdp11"].disposition in (COMPLETED, REJOINED)
    assert by_name["strict"].result.trap is not None
    assert by_name["strict"].disposition == RETIRED
    # the retired lanes really did diverge from their surviving sibling
    assert by_name["pdp11"].result.instructions > \
        by_name["strict"].result.instructions


def test_budget_exhaustion_in_one_lane_mid_superinstruction() -> None:
    """One lane exhausts its budget mid-batch while a sibling trapped early.

    The checked lane retires on the out-of-bounds store after a few calls;
    pdp11 keeps executing until its (identical) budget runs out inside a
    block's charge group.  Both must mirror the serial engine exactly —
    counter values, trap message, everything.
    """
    full = _serial_run(TRAP_ONE_LANE, "pdp11")
    assert full.trap is None
    trap_at = _serial_run(TRAP_ONE_LANE, "strict").instructions
    # budgets strictly between the checked trap point and pdp11's total,
    # spread so several land inside a superinstruction charge group
    budgets = sorted({trap_at + 3 + step * (full.instructions - trap_at) // 7
                      for step in range(1, 7)})
    for budget in budgets:
        outcomes = _lockstep_group(TRAP_ONE_LANE, ("pdp11", "strict"),
                                   budget=budget)
        by_name = {o.model_name: o for o in outcomes}
        for name, outcome in by_name.items():
            expect = _serial_run(TRAP_ONE_LANE, name, budget=budget)
            assert _observables(outcome.result) == _observables(expect), \
                (name, budget)
        assert by_name["pdp11"].disposition == RETIRED
        assert "instruction budget" in str(by_name["pdp11"].result.trap)
        assert by_name["pdp11"].result.instructions == budget + 1
        assert by_name["strict"].disposition == RETIRED
        assert "instruction budget" not in str(by_name["strict"].result.trap)


class _InjectedEngineError(RuntimeError):
    pass


def test_lane_falls_back_while_siblings_continue() -> None:
    """A block-engine demotion in one lane must not disturb its siblings."""

    def hook_one_lane(machine, name):
        if name == "hardbound":
            machine.arm_engine_fault(_InjectedEngineError)

    outcomes = _lockstep_group(TRAP_ONE_LANE, EIGHT_BYTE, hook=hook_one_lane)
    for outcome in outcomes:
        expect = _serial_run(TRAP_ONE_LANE, outcome.model_name,
                             hook=hook_one_lane)
        assert _observables(outcome.result) == _observables(expect), \
            outcome.model_name
    by_name = {o.model_name: o for o in outcomes}
    assert by_name["hardbound"].result.engine_fallbacks > 0
    for name in ("pdp11", "mpx", "relaxed", "strict"):
        assert by_name[name].result.engine_fallbacks == 0, name


# ---------------------------------------------------------------------------
# Property sweep: divergence-mask totality and lane-order invariance
# ---------------------------------------------------------------------------

PROPERTY_SEED = 7
PROPERTY_COUNT = 1000

_DISPOSITIONS = (RETIRED, REJOINED, COMPLETED)


def _layout_outcomes(source: str, models) -> list[LaneOutcome] | None:
    try:
        return _lockstep_group(source, models, budget=DEFAULT_BUDGET)
    except Exception:
        # compile failures are layout-wide and engine-independent; the
        # equivalence of *those* is covered by the mini-sweep via the runner
        return None


def test_divergence_mask_totality_over_generated_corpus() -> None:
    """≥1000 seeded programs: every lane gets exactly one disposition.

    Also checks, on a deterministic subsample, that reversing lane order —
    which permutes retirement order within every round — changes no lane's
    observables (lanes share no mutable state, so scheduling must be
    invisible).
    """
    dispositions_seen = set()
    checked = reordered = 0
    for index in range(PROPERTY_COUNT):
        program = generate_program(PROPERTY_SEED, index)
        for models in (EIGHT_BYTE, CAPABILITY):
            outcomes = _layout_outcomes(program.source, models)
            if outcomes is None:
                continue
            assert [o.model_name for o in outcomes] == list(models)
            for outcome in outcomes:
                checked += 1
                assert outcome.disposition in _DISPOSITIONS, (
                    index, outcome.model_name, outcome.disposition)
                dispositions_seen.add(outcome.disposition)
                # a disposition is consistent with its packaged result
                if outcome.disposition == RETIRED:
                    assert outcome.result.trap is not None
                else:
                    assert outcome.result.trap is None
            if index % 50 == 0:
                # lane-order permutation: reversed grouping, same results
                flipped = _layout_outcomes(program.source,
                                           tuple(reversed(models)))
                assert flipped is not None
                expect = {o.model_name: _observables(o.result)
                          for o in outcomes}
                for outcome in flipped:
                    reordered += 1
                    assert _observables(outcome.result) == \
                        expect[outcome.model_name], (index, outcome.model_name)
    assert checked >= PROPERTY_COUNT  # non-vacuity
    assert reordered > 0
    # The generated corpus exercises RETIRED and COMPLETED but cannot
    # produce REJOINED: within a pointer layout every surviving lane
    # computes identical raw bytes, so branches never split.  Fold in the
    # directed divergent-branch group (per-lane reseed makes rand() differ)
    # so the property covers all three dispositions.
    diverged = _lockstep_group(DIVERGENT_BRANCHES, EIGHT_BYTE,
                               hook=_reseed_per_lane)
    for outcome in diverged:
        checked += 1
        assert outcome.disposition in _DISPOSITIONS
        dispositions_seen.add(outcome.disposition)
    # the suite must exercise every disposition or the property is weak
    assert dispositions_seen == set(_DISPOSITIONS)


# ---------------------------------------------------------------------------
# Retained-trap scrub (the PR 5 leak fix, extended to chained frames)
# ---------------------------------------------------------------------------


def _chain_tracebacks(exc) -> list:
    found, stack, seen = [], [exc], set()
    while stack:
        err = stack.pop()
        if err is None or id(err) in seen:
            continue
        seen.add(id(err))
        if err.__traceback__ is not None:
            found.append(err)
        stack.extend((err.__cause__, err.__context__))
    return found


def test_scrub_trap_clears_whole_context_chain() -> None:
    try:
        try:
            raise ValueError("inner")
        except ValueError:
            raise KeyError("outer") from None
    except KeyError as exc:
        trap = exc
    assert trap.__context__ is not None  # ``from None`` hides, not unlinks
    assert _chain_tracebacks(trap)
    scrub_trap(trap)
    assert not _chain_tracebacks(trap)
    # the structured chain itself survives (the oracle reads it)
    assert isinstance(trap.__context__, ValueError)
    scrub_trap(None)  # tolerated, like the runner's trap-less path


#: read_global raises ``from None``, so the surfaced trap carries a chained
#: exception whose traceback holds interpreter frames — the leak the scrub
#: exists to cut.  Division traps cover the UndefinedBehaviorError path.
CHAINED_TRAP = r"""
int main(void) {
    int arr[4];
    int i = 0;
    for (i = 0; i < 4; i++) { arr[i] = i; }
    return arr[0] / (arr[1] - arr[1]);
}
"""


@pytest.mark.parametrize("lockstep", [None, "all"])
def test_runner_traps_have_no_retained_tracebacks(lockstep) -> None:
    runner = DifferentialRunner(lockstep=lockstep)
    out = runner.run_source(CHAINED_TRAP)
    trapped = 0
    for name, result in out.results.items():
        if result.trap is None:
            continue
        trapped += 1
        assert not _chain_tracebacks(result.trap), (name, lockstep)
    assert trapped == len(PAPER_MODEL_ORDER)  # division traps everywhere

"""Property-style crash test: SIGKILL a JournalWriter between fsync batches.

A real child process appends records through a :class:`JournalWriter` (with
a small fsync batch), reporting each completed append on its stdout; the
parent SIGKILLs it at a chosen append count, then recovers the journal the
same way ``run_difftest --resume`` does.  The pinned properties, for every
kill point:

* the recovered records are a contiguous prefix ``0..m`` of the stream —
  a kill never punches a hole in the interior;
* the prefix covers at least everything up to the last fsync batch
  boundary the child reported (loss is bounded by the un-synced suffix);
* after truncate-and-complete — exactly the supervisor's resume cycle —
  the finished journal parses cleanly, and merging it yields the full
  record set bit-identically to an uninterrupted run.
"""

from __future__ import annotations

import json
import pathlib
import signal
import subprocess
import sys

import pytest

from repro.difftest.journal import (
    JournalWriter,
    load_journal,
    make_header,
    truncate_to,
)
from repro.difftest.merge import merge_journals

REPO = pathlib.Path(__file__).resolve().parent.parent

TOTAL = 40
FSYNC_EVERY = 4

#: deterministic "random" kill points: mid-batch, on-batch-boundary, first
#: record, and deep into the stream.
KILL_POINTS = (1, 5, 8, 17, 31)

#: lockstep protocol: the child appends one record, reports it on stdout,
#: and blocks for a parent ack on stdin before the next append — so the
#: parent knows *exactly* how many appends completed when it SIGKILLs.
_CHILD_SOURCE = """
import sys
from repro.difftest.journal import JournalWriter, make_header

path, total = sys.argv[1], int(sys.argv[2])
JournalWriter.FSYNC_EVERY = {fsync_every}
header = make_header(seed=0, count=total, models=("pdp11",), budget=1,
                     generator_version=1, analyze=False)
writer = JournalWriter.create(path, header)
for index in range(total):
    writer.append({{"index": index, "seed": index,
                    "classification": {{"pdp11": "agree"}},
                    "features": [], "metrics": {{}}}})
    print(index, flush=True)
    sys.stdin.readline()
writer.close()
print("done", flush=True)
"""


def _expected_record(index):
    return {"index": index, "seed": index,
            "classification": {"pdp11": "agree"}, "features": [],
            "metrics": {}}


@pytest.mark.parametrize("kill_after", KILL_POINTS)
def test_sigkill_between_fsync_batches_loses_at_most_the_unsynced_suffix(
        tmp_path, kill_after):
    journal = tmp_path / "sweep.jsonl"
    child = subprocess.Popen(
        [sys.executable, "-c",
         _CHILD_SOURCE.format(fsync_every=FSYNC_EVERY),
         str(journal), str(TOTAL)],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})
    appended = 0
    try:
        for line in child.stdout:
            assert line.strip() == str(appended)
            appended += 1
            if appended >= kill_after:
                break
            child.stdin.write("ack\n")
            child.stdin.flush()
        child.send_signal(signal.SIGKILL)
    finally:
        child.wait()
    assert appended == kill_after

    state = load_journal(str(journal))
    recovered = sorted(state.records)
    # Contiguous prefix: a SIGKILL can cost a tail, never an interior hole.
    assert recovered == list(range(len(recovered)))
    # The child completed exactly `appended` appends (lockstep), so at most
    # the un-fsynced suffix of those can be missing, and nothing beyond what
    # it wrote can exist.
    last_synced = (appended // FSYNC_EVERY) * FSYNC_EVERY
    assert last_synced <= len(recovered) <= appended
    for index in recovered:
        assert state.records[index] == _expected_record(index)

    # Resume cycle, exactly as the supervisor runs it: truncate the torn
    # tail (if any), append the missing records, and the finished journal
    # is indistinguishable from an uninterrupted run's record set.
    truncate_to(str(journal), state.valid_bytes)
    with JournalWriter.append_to(str(journal)) as writer:
        for index in range(len(recovered), TOTAL):
            writer.append(_expected_record(index))
    final = load_journal(str(journal))
    assert final.corrupt_tail == b""
    assert sorted(final.records) == list(range(TOTAL))

    merged = merge_journals([str(journal)])
    assert json.dumps(merged.records, sort_keys=True) == json.dumps(
        [_expected_record(index) for index in range(TOTAL)], sort_keys=True)

"""Tests for the ISA layer and the machine simulator (repro.isa, repro.sim)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.config import CacheConfig, TimingConfig
from repro.common.errors import AlignmentViolation, SimulationError, TrapError
from repro.isa import Assembler, Capability, Permission
from repro.isa.instructions import INSTRUCTION_SET
from repro.isa.registers import CapabilityRegisterFile, RegisterFile, cap_index, gpr_index
from repro.sim import CacheLevel, CheriCpu, MemoryHierarchy, TaggedMemory


def run_asm(source: str, **kwargs):
    program = Assembler().assemble(source)
    cpu = CheriCpu(program, **kwargs)
    return cpu, cpu.run()


class TestRegisters:
    def test_gpr_names_resolve(self):
        assert gpr_index("$t0") == 8
        assert gpr_index("zero") == 0
        assert gpr_index("r31") == 31

    def test_unknown_register_rejected(self):
        with pytest.raises(SimulationError):
            gpr_index("$bogus")
        with pytest.raises(SimulationError):
            cap_index("$c99")

    def test_zero_register_is_hardwired(self):
        regs = RegisterFile()
        regs.write(0, 1234)
        assert regs.read(0) == 0

    def test_values_wrap_to_64_bits(self):
        regs = RegisterFile()
        regs.write_named("t0", -1)
        assert regs.read_named("t0") == (1 << 64) - 1

    def test_capability_file_rejects_non_capabilities(self):
        caps = CapabilityRegisterFile()
        with pytest.raises(SimulationError):
            caps.write(1, 42)


class TestAssembler:
    def test_labels_and_data(self):
        program = Assembler().assemble("""
        .data
        value: .dword 7
        text: .asciiz "ok"
        .text
        start: li $t0, 1
        loop:  beq $t0, $zero, start
        """)
        assert program.label_address("start") == 0
        assert program.label_address("loop") == 1
        assert program.data_address("text") == program.data_address("value") + 8
        assert program.data[:8] == (7).to_bytes(8, "little")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(SimulationError):
            Assembler().assemble(".text\nfrobnicate $t0, $t1")

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(SimulationError):
            Assembler().assemble(".text\ndaddu $t0, $t1")

    def test_unknown_label_rejected(self):
        with pytest.raises(SimulationError):
            Assembler().assemble(".text\nj nowhere").label_address("nowhere")

    def test_comments_are_ignored(self):
        program = Assembler().assemble(".text\nli $t0, 1 # comment\n; full line comment\n")
        assert len(program) == 1

    def test_every_registered_instruction_has_operand_kinds(self):
        for mnemonic, cls in INSTRUCTION_SET.items():
            assert isinstance(cls.operand_kinds, tuple), mnemonic


class TestTaggedMemory:
    def test_read_write_roundtrip(self):
        memory = TaggedMemory(1 << 20)
        memory.write_int(0x100, 8, 0xDEADBEEF)
        assert memory.read_int(0x100, 8) == 0xDEADBEEF

    def test_unwritten_memory_reads_zero(self):
        assert TaggedMemory(4096).read_bytes(0, 16) == b"\x00" * 16

    def test_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            TaggedMemory(4096).read_bytes(4095, 2)

    def test_capability_store_sets_tag(self):
        memory = TaggedMemory(1 << 16)
        cap = Capability(base=0x40, length=0x20, permissions=Permission.all(), tag=True)
        memory.write_capability(0x80, cap)
        assert memory.tag_at(0x80)
        assert memory.read_capability(0x80) == cap

    def test_data_store_clears_tag(self):
        """§4: conventional stores invalidate in-memory capabilities."""
        memory = TaggedMemory(1 << 16)
        cap = Capability(base=0x40, length=0x20, permissions=Permission.all(), tag=True)
        memory.write_capability(0x80, cap)
        memory.write_int(0x88, 8, 0x1234)          # overlaps the capability
        loaded = memory.read_capability(0x80)
        assert not loaded.tag

    def test_unaligned_capability_access_rejected(self):
        memory = TaggedMemory(1 << 16)
        cap = Capability(tag=True, permissions=Permission.all(), length=8)
        with pytest.raises(AlignmentViolation):
            memory.write_capability(0x81, cap)
        with pytest.raises(AlignmentViolation):
            memory.read_capability(0x81)

    def test_read_capability_from_plain_data_is_untagged(self):
        memory = TaggedMemory(1 << 16)
        memory.write_int(0x100, 8, 0x1234)
        assert not memory.read_capability(0x100).tag

    def test_tagged_lines_enumeration(self):
        memory = TaggedMemory(1 << 16)
        cap = Capability(base=0, length=8, permissions=Permission.all(), tag=True)
        memory.write_capability(0x20, cap)
        memory.write_capability(0x60, cap)
        assert memory.tagged_lines() == [0x20, 0x60]


class TestCache:
    def test_miss_then_hit(self):
        cache = CacheLevel(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2))
        assert cache.access(0, is_write=False) is False
        assert cache.access(8, is_write=False) is True  # same line
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_lru_eviction(self):
        cache = CacheLevel(CacheConfig(size_bytes=256, line_bytes=64, associativity=2))
        # two lines mapping to the same set plus a third forces an eviction
        set_stride = cache.config.num_sets * 64
        cache.access(0, is_write=False)
        cache.access(set_stride, is_write=False)
        cache.access(2 * set_stride, is_write=False)
        assert cache.access(0, is_write=False) is False  # evicted

    def test_hierarchy_charges_dram_on_cold_miss(self):
        hierarchy = MemoryHierarchy(TimingConfig())
        cold = hierarchy.access(0x1000, 8)
        warm = hierarchy.access(0x1000, 8)
        assert cold > warm
        assert hierarchy.dram_accesses == 1

    def test_multi_line_access_touches_every_line(self):
        hierarchy = MemoryHierarchy(TimingConfig())
        hierarchy.access(0x0, 256)
        assert hierarchy.l1.stats.accesses == 4  # 256 bytes / 64-byte lines

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200))
    def test_stats_are_consistent(self, addresses):
        cache = CacheLevel(CacheConfig(size_bytes=4096, line_bytes=64, associativity=4))
        for address in addresses:
            cache.access(address, is_write=False)
        assert cache.stats.hits + cache.stats.misses == len(addresses)


class TestCpuExecution:
    def test_arithmetic_and_exit(self):
        _, state = run_asm("""
        .text
        li $t0, 21
        dsll $t1, $t0, 1
        li $v0, 1
        move $a0, $t1
        syscall
        """)
        assert state.exit_status == 42

    def test_loop_sums_data(self):
        _, state = run_asm("""
        .data
        numbers: .dword 10, 20, 30
        .text
        la $t0, numbers
        li $t1, 0
        li $t2, 0
        loop:
        li $t3, 3
        beq $t2, $t3, done
        dsll $t4, $t2, 3
        daddu $t5, $t0, $t4
        ld $t6, 0($t5)
        daddu $t1, $t1, $t6
        daddiu $t2, $t2, 1
        j loop
        done:
        li $v0, 1
        move $a0, $t1
        syscall
        """)
        assert state.exit_status == 60

    def test_output_syscall(self):
        _, state = run_asm("""
        .text
        li $v0, 2
        li $a0, 72
        syscall
        li $v0, 2
        li $a0, 105
        syscall
        li $v0, 1
        li $a0, 0
        syscall
        """)
        assert state.output == "Hi"

    def test_trapping_add_detects_overflow(self):
        _, state = run_asm("""
        .text
        li $t0, 0x7fffffffffffffff
        li $t1, 1
        dadd $t2, $t0, $t1
        """)
        assert state.trap is not None and state.trap.cause == "overflow"

    def test_division_by_zero_traps(self):
        _, state = run_asm(".text\nli $t0, 1\nli $t1, 0\nddivu $t2, $t0, $t1\n")
        assert state.trap is not None and state.trap.cause == "divide"

    def test_nonterminating_program_rejected(self):
        program = Assembler().assemble(".text\nstart: j start\n")
        cpu = CheriCpu(program)
        with pytest.raises(SimulationError):
            cpu.run(max_instructions=1000)

    def test_sbrk_allocates_heap(self):
        _, state = run_asm("""
        .text
        li $v0, 3
        li $a0, 64
        syscall
        move $t0, $v0      # old break
        li $v0, 3
        li $a0, 64
        syscall
        dsubu $t1, $v0, $t0
        li $v0, 1
        move $a0, $t1
        syscall
        """)
        assert state.exit_status == 64

    def test_cycles_account_for_cache(self):
        _, state = run_asm("""
        .text
        li $t0, 0
        sd $t0, 0($zero)
        ld $t1, 0($zero)
        li $v0, 1
        li $a0, 0
        syscall
        """)
        assert state.cycles > state.instructions_executed


class TestCapabilityInstructions:
    def test_bounds_violation_traps(self):
        _, state = run_asm("""
        .text
        li $t0, 64
        csetbounds $c1, $c0, $t0
        li $t1, 100
        csetoffset $c1, $c1, $t1
        li $t2, 1
        csw $t2, 0, $c1
        """)
        assert state.memory_safety_violation is not None

    def test_in_bounds_store_load(self):
        _, state = run_asm("""
        .text
        li $t0, 64
        csetbounds $c1, $c0, $t0
        li $t1, 7
        csw $t1, 8, $c1
        clw $t2, 8, $c1
        li $v0, 1
        move $a0, $t2
        syscall
        """)
        assert state.exit_status == 7

    def test_candperm_removes_store_permission(self):
        _, state = run_asm("""
        .text
        li $t0, 64
        csetbounds $c1, $c0, $t0
        li $t1, 9           # LOAD | LOAD_CAP
        candperm $c1, $c1, $t1
        li $t2, 5
        csw $t2, 0, $c1
        """)
        assert state.memory_safety_violation is not None

    def test_cleartag_makes_capability_unusable(self):
        _, state = run_asm("""
        .text
        ccleartag $c1, $c0
        clw $t0, 0, $c1
        """)
        assert state.memory_safety_violation is not None

    def test_capability_spill_and_reload(self):
        _, state = run_asm("""
        .text
        li $t0, 128
        csetbounds $c1, $c0, $t0
        li $t1, 64
        csetoffset $c2, $c0, $t1
        csc $c1, 0, $c2            # spill c1 to memory at address 64
        clc $c3, 0, $c2            # reload it
        cgetlen $t2, $c3
        cgettag $t3, $c3
        daddu $t4, $t2, $t3
        li $v0, 1
        move $a0, $t4
        syscall
        """)
        assert state.exit_status == 129  # length 128 + tag 1

    def test_data_store_invalidates_spilled_capability(self):
        _, state = run_asm("""
        .text
        li $t0, 128
        csetbounds $c1, $c0, $t0
        li $t1, 64
        csetoffset $c2, $c0, $t1
        csc $c1, 0, $c2
        li $t5, 99
        sd $t5, 72($zero)          # plain MIPS store over the capability
        clc $c3, 0, $c2
        cgettag $t3, $c3
        li $v0, 1
        move $a0, $t3
        syscall
        """)
        assert state.exit_status == 0

    def test_cfromptr_null_semantics(self):
        _, state = run_asm("""
        .text
        li $t0, 0
        cfromptr $c1, $c0, $t0
        cgettag $t1, $c1
        li $v0, 1
        move $a0, $t1
        syscall
        """)
        assert state.exit_status == 0

    def test_cjalr_and_cjr_roundtrip(self):
        _, state = run_asm("""
        .text
        main:
        cgetpcc $c2
        li $t0, 6
        csetoffset $c2, $c2, $t0
        li $a0, 10
        cjalr $c2, $c17
        j end
        double:
        daddu $v0, $a0, $a0
        cjr $c17
        end:
        move $a0, $v0
        li $v0, 1
        syscall
        """)
        assert state.exit_status == 20

    def test_cptrcmp_orders_untagged_before_tagged(self):
        _, state = run_asm("""
        .text
        li $t0, 32
        csetbounds $c1, $c0, $t0
        li $t1, 5
        cfromint $c2, $t1          # integer in a capability register (untagged)
        cptrcmp $t2, $c2, $c1, lt
        li $v0, 1
        move $a0, $t2
        syscall
        """)
        assert state.exit_status == 1

"""Property-based tests and edge cases across subsystems.

These tests complement the per-module suites with invariants that must hold
for arbitrary inputs: capability monotonicity under the interpreter models,
cache-model conservation laws, interpreter arithmetic matching C semantics,
and front-end round trips.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig, TimingConfig
from repro.core import run_under_model
from repro.interp import get_model
from repro.interp.heap import ObjectAllocator
from repro.interp.values import IntVal, Provenance
from repro.minic import Lexer, TokenKind, compile_source
from repro.minic.ir import Opcode
from repro.sim.cache import CacheLevel, MemoryHierarchy


# ---------------------------------------------------------------------------
# Memory-model invariants
# ---------------------------------------------------------------------------

MODEL_NAMES = ("pdp11", "hardbound", "mpx", "relaxed", "strict", "cheri_v2", "cheri_v3")


class TestModelInvariants:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_null_pointer_never_dereferenceable(self, name):
        from repro.common.errors import MemorySafetyError

        model = get_model(name)
        with pytest.raises(MemorySafetyError):
            model.check_access(model.null_pointer(), 1, is_write=False)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_zero_int_converts_to_null(self, name):
        model = get_model(name)
        pointer = model.int_to_ptr(IntVal(0, bytes=8), ObjectAllocator())
        assert pointer.is_null

    @settings(max_examples=30, deadline=None)
    @given(delta=st.integers(min_value=-256, max_value=256),
           name=st.sampled_from(["cheri_v2", "cheri_v3", "hardbound", "mpx", "strict"]))
    def test_pointer_motion_never_widens_bounds(self, delta, name):
        """No model may grant access outside the original allocation by
        moving a pointer around (the core monotonicity property)."""
        model = get_model(name)
        allocator = ObjectAllocator()
        obj = allocator.allocate_heap(64)
        pointer = model.make_pointer(obj)
        moved = model.ptr_offset(pointer, delta)
        if moved.tag and moved.checked:
            assert moved.base >= obj.base
            assert moved.top <= obj.top

    @settings(max_examples=30, deadline=None)
    @given(value=st.integers(min_value=1, max_value=2**48),
           name=st.sampled_from(["cheri_v2", "cheri_v3", "strict", "hardbound"]))
    def test_forged_integers_never_become_valid_pointers(self, value, name):
        """Unforgeability: an integer with no provenance cannot become a
        dereferenceable pointer under any provenance-tracking model."""
        model = get_model(name)
        allocator = ObjectAllocator()
        allocator.allocate_heap(64)
        pointer = model.int_to_ptr(IntVal(value, bytes=8), allocator)
        assert not (pointer.tag and pointer.checked and pointer.length > 0)

    @settings(max_examples=30, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=63))
    def test_roundtrip_through_int_preserves_address(self, offset):
        """ptr -> intcap -> ptr preserves the address exactly under CHERIv3."""
        model = get_model("cheri_v3")
        allocator = ObjectAllocator()
        obj = allocator.allocate_heap(64)
        pointer = model.ptr_offset(model.make_pointer(obj), offset)
        as_int = model.ptr_to_int(pointer, bytes=8, signed=False, pointer_sized=True)
        back = model.int_to_ptr(as_int, allocator)
        assert back.address == pointer.address
        assert back.tag

    def test_provenance_survives_arithmetic_only_on_v3(self):
        allocator = ObjectAllocator()
        obj = allocator.allocate_heap(64)
        for name, expect_valid in (("cheri_v3", True), ("cheri_v2", False), ("strict", False)):
            model = get_model(name)
            pointer = model.make_pointer(obj)
            as_int = model.ptr_to_int(pointer, bytes=8, signed=False, pointer_sized=True)
            shifted = IntVal(as_int.value + 8, bytes=8, pointer_sized=True,
                             provenance=model.propagate_provenance(as_int, IntVal(8), as_int.value + 8))
            back = model.int_to_ptr(shifted, allocator)
            assert back.tag is expect_valid, name


# ---------------------------------------------------------------------------
# Cache model conservation laws
# ---------------------------------------------------------------------------


class TestCacheProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 18),
                              st.booleans()), min_size=1, max_size=300))
    def test_hierarchy_accounting_is_consistent(self, accesses):
        hierarchy = MemoryHierarchy(TimingConfig())
        total = 0
        for address, is_write in accesses:
            total += hierarchy.access(address, 8, is_write=is_write)
        stats = hierarchy.stats()
        assert stats.stall_cycles == total
        # L2 only sees L1 misses; DRAM only sees L2 misses.
        assert stats.l2.accesses == stats.l1.misses
        assert stats.dram_accesses == stats.l2.misses
        # Every access costs at least the L1 hit latency.
        assert total >= len(accesses) * hierarchy.timing.l1.hit_latency

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 16))
    def test_repeat_access_hits(self, address):
        cache = CacheLevel(CacheConfig(size_bytes=16 * 1024))
        cache.access(address, is_write=False)
        assert cache.access(address, is_write=False)

    def test_working_set_larger_than_cache_misses(self):
        cache = CacheLevel(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2))
        stride = 64
        footprint = 4096
        for _ in range(2):
            for address in range(0, footprint, stride):
                cache.access(address, is_write=False)
        assert cache.stats.miss_rate > 0.9

    def test_capability_pointers_increase_miss_rate_on_pointer_array(self):
        """The architectural mechanism behind Figure 1, isolated."""
        def misses(pointer_bytes: int) -> int:
            hierarchy = MemoryHierarchy(TimingConfig())
            for index in range(2048):
                hierarchy.access(index * pointer_bytes, pointer_bytes, is_write=False)
            return hierarchy.stats().l1.misses

        assert misses(32) > misses(8) * 2


# ---------------------------------------------------------------------------
# Interpreter vs. C semantics
# ---------------------------------------------------------------------------


class TestArithmeticSemantics:
    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(min_value=-10**6, max_value=10**6),
           b=st.integers(min_value=-10**6, max_value=10**6))
    def test_long_arithmetic_matches_python(self, a, b):
        expected = a * 3 + b - (a ^ b)
        source = f"""
        int main(void) {{
            long a = {a};
            long b = {b};
            long r = a * 3 + b - (a ^ b);
            return r == {expected} ? 0 : 1;
        }}
        """
        assert run_under_model(source, "pdp11").exit_code == 0

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(min_value=-1000, max_value=1000),
           b=st.integers(min_value=1, max_value=100))
    def test_division_truncates_toward_zero(self, a, b):
        quotient = int(a / b)          # C semantics: truncation toward zero
        remainder = a - quotient * b
        source = f"int main(void) {{ return {a} / {b} == {quotient} && {a} % {b} == {remainder} ? 0 : 1; }}"
        assert run_under_model(source, "pdp11").exit_code == 0

    @settings(max_examples=15, deadline=None)
    @given(value=st.integers(min_value=0, max_value=2**31 - 1), shift=st.integers(min_value=0, max_value=15))
    def test_shifts_match(self, value, shift):
        expected = (value << shift) & 0xFFFFFFFFFFFFFFFF
        source = f"int main(void) {{ unsigned long v = {value}; return (v << {shift}) == {expected} ? 0 : 1; }}"
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_unsigned_wraparound(self):
        source = """
        int main(void) {
            unsigned int x = 4294967295u;
            x = x + 1;
            return x == 0 ? 0 : 1;
        }
        """
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_char_sign_extension_on_load(self):
        source = """
        int main(void) {
            char c = 200;              /* stored as -56 in a signed char */
            int widened = c;
            return widened == -56 ? 0 : 1;
        }
        """
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_unsigned_char_zero_extension(self):
        source = """
        int main(void) {
            unsigned char c = 200;
            int widened = c;
            return widened == 200 ? 0 : 1;
        }
        """
        assert run_under_model(source, "pdp11").exit_code == 0


# ---------------------------------------------------------------------------
# Front-end edge cases
# ---------------------------------------------------------------------------


class TestFrontEndEdgeCases:
    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                                          whitelist_characters="_ +-*/%()<>=!&|^~;{}[],."),
                   max_size=80))
    def test_lexer_never_crashes_on_printable_soup(self, text):
        try:
            tokens = Lexer(text).tokenize()
            assert tokens[-1].kind is TokenKind.EOF
        except Exception as error:
            from repro.common.errors import LexError

            assert isinstance(error, LexError)

    def test_deeply_nested_expressions(self):
        expr = "1" + " + 1" * 200
        source = f"int main(void) {{ return ({expr}) == 201 ? 0 : 1; }}"
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_nested_structs_and_arrays(self):
        source = """
        struct inner { int values[3]; };
        struct outer { struct inner rows[2]; int tag; };
        int main(void) {
            struct outer o;
            o.rows[1].values[2] = 42;
            o.tag = 1;
            return o.rows[1].values[2] == 42 ? 0 : 1;
        }
        """
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_typedef_of_struct_pointer(self):
        source = """
        struct node { int v; };
        typedef struct node node_t;
        int main(void) {
            node_t n;
            node_t *p = &n;
            p->v = 5;
            return n.v == 5 ? 0 : 1;
        }
        """
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_empty_function_and_void_return(self):
        source = """
        void nothing(void) { }
        void maybe(int x) { if (x) return; }
        int main(void) { nothing(); maybe(1); maybe(0); return 0; }
        """
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_comma_separated_declarations(self):
        source = "int main(void) { int a = 1, b = 2, c; c = a + b; return c == 3 ? 0 : 1; }"
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_hex_octal_char_literals_agree(self):
        source = "int main(void) { return (0x41 == 'A' && 0101 == 'A') ? 0 : 1; }"
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_string_concatenation_and_escapes(self):
        source = r"""
        int main(void) {
            const char *s = "ab" "cd";
            return strlen(s) == 4 && s[3] == 'd' ? 0 : 1;
        }
        """
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_ir_has_no_unknown_opcodes(self):
        module = compile_source("""
        struct s { int a; char b[4]; };
        int f(struct s *p, int i) {
            const char *c = p->b;
            return p->a + c[i] + (int)(p - p);
        }
        """)
        for _, instr in module.all_instructions():
            assert isinstance(instr.op, Opcode)

    def test_large_global_array_zero_initialised(self):
        source = """
        long table[512];
        int main(void) {
            int i;
            long total = 0;
            for (i = 0; i < 512; i++) total += table[i];
            return total == 0 ? 0 : 1;
        }
        """
        assert run_under_model(source, "cheri_v3").exit_code == 0

    def test_negative_array_index_trapped_by_capabilities(self):
        source = """
        int main(void) {
            int arr[4];
            int *p = arr;
            p[-1] = 7;
            return 0;
        }
        """
        assert run_under_model(source, "cheri_v3").trapped
        assert not run_under_model(source, "pdp11").trapped

"""Workload correctness (at reduced scale), the garbage collector, and
whole-system integration tests."""

from __future__ import annotations

import pytest

from repro.core import run_under_model
from repro.core.api import compile_for_model
from repro.gc import CapabilityGarbageCollector
from repro.interp import AbstractMachine, get_model
from repro.workloads import dhrystone, tcpdump, zlib_like
from repro.workloads.harness import run_workload
from repro.workloads.olden import bisort, mst, perimeter, treeadd

SMALL = {"treeadd": dict(depth=5, passes=2), "bisort": dict(count=48),
         "mst": dict(vertices=20), "perimeter": dict(depth=3)}


class TestOldenKernels:
    @pytest.mark.parametrize("model", ["pdp11", "cheri_v2", "cheri_v3"])
    def test_treeadd(self, model):
        run = treeadd.run(model, **SMALL["treeadd"])
        assert run.ok and run.result.exit_code == 0
        assert run.result.checkpoints == [2 * 31]  # passes * nodes

    @pytest.mark.parametrize("model", ["pdp11", "cheri_v2", "cheri_v3"])
    def test_bisort(self, model):
        run = bisort.run(model, **SMALL["bisort"])
        assert run.ok and run.result.exit_code == 0

    @pytest.mark.parametrize("model", ["pdp11", "cheri_v2", "cheri_v3"])
    def test_mst(self, model):
        run = mst.run(model, **SMALL["mst"])
        assert run.ok and run.result.exit_code == 0
        assert run.result.checkpoints[0] > 0

    @pytest.mark.parametrize("model", ["pdp11", "cheri_v2", "cheri_v3"])
    def test_perimeter(self, model):
        run = perimeter.run(model, **SMALL["perimeter"])
        assert run.ok and run.result.exit_code == 0

    def test_results_identical_across_models(self):
        """Functional behaviour must not depend on the memory model."""
        for module, params in ((treeadd, SMALL["treeadd"]), (mst, SMALL["mst"])):
            checkpoints = {model: module.run(model, **params).result.checkpoints
                           for model in ("pdp11", "cheri_v3")}
            assert checkpoints["pdp11"] == checkpoints["cheri_v3"]

    def test_capability_runs_cost_at_least_as_much(self):
        baseline = treeadd.run("pdp11", depth=7, passes=2)
        capability = treeadd.run("cheri_v3", depth=7, passes=2)
        assert capability.cycles >= baseline.cycles
        assert capability.instructions == baseline.instructions


class TestDhrystoneAndTcpdump:
    def test_dhrystone_self_check(self):
        run = dhrystone.run("pdp11", runs=20)
        assert run.ok and run.result.exit_code == 0
        assert dhrystone.dhrystones_per_second(run, runs=20) > 0

    def test_dhrystone_capability_parity(self):
        a = dhrystone.run("pdp11", runs=30)
        b = dhrystone.run("cheri_v3", runs=30)
        assert abs(b.overhead_vs(a)) < 0.10

    def test_tcpdump_baseline_parses_all_packets(self):
        run = tcpdump.run("pdp11", packets=25)
        assert run.ok and run.result.exit_code == 0
        assert run.result.checkpoints[0] == 25

    def test_tcpdump_cheri_v2_port_matches_baseline_counts(self):
        baseline = tcpdump.run("pdp11", packets=25)
        ported = tcpdump.run("cheri_v2", packets=25)
        assert ported.result.checkpoints == baseline.result.checkpoints

    def test_tcpdump_baseline_source_breaks_on_cheri_v2(self):
        """The unported dissector relies on pointer subtraction, which the
        CHERIv2 model cannot express — this is exactly why the paper's port
        needed ~1.6 kLoC of changes."""
        from repro.common.errors import InterpreterError

        with pytest.raises(InterpreterError):
            run_workload("tcpdump-unported", tcpdump.baseline_source(packets=5), "cheri_v2")

    def test_malicious_truncated_packet_is_contained_by_cheri(self):
        """A dissector missing one bounds check reads past the packet: the
        PDP-11 model silently reads adjacent memory, CHERIv3 traps."""
        source = """
        unsigned char packet[16];
        int parse(const unsigned char *p, long length) {
            /* BUG: no check that length >= 20 */
            return p[18];
        }
        int main(void) {
            unsigned char *heap_packet = (unsigned char *)malloc(16);
            long i;
            for (i = 0; i < 16; i++) heap_packet[i] = (unsigned char)i;
            return parse(heap_packet, 16);
        }
        """
        assert not run_under_model(source, "pdp11").trapped
        assert run_under_model(source, "cheri_v3").trapped


class TestZlib:
    def test_round_trip_annotated(self):
        run = zlib_like.run("pdp11", file_bytes=256)
        assert run.ok and run.result.exit_code == 0
        compressed = run.result.checkpoints[0]
        # the naive LZ77 format can expand incompressible small inputs, but
        # never beyond 2 bytes per literal
        assert 0 < compressed <= 2 * 256

    def test_round_trip_copying_abi(self):
        run = zlib_like.run("cheri_v3", file_bytes=256, copying=True)
        assert run.ok and run.result.exit_code == 0

    def test_copying_abi_produces_identical_output(self):
        annotated = zlib_like.run("cheri_v3", file_bytes=256)
        copying = zlib_like.run("cheri_v3", file_bytes=256, copying=True)
        assert annotated.result.checkpoints == copying.result.checkpoints

    def test_copying_abi_costs_more(self):
        annotated = zlib_like.run("cheri_v3", file_bytes=256)
        copying = zlib_like.run("cheri_v3", file_bytes=256, copying=True)
        assert copying.cycles > annotated.cycles


class TestGarbageCollector:
    def _machine_with_garbage(self):
        source = """
        struct node { struct node *next; long value; };
        struct node *retained;
        int main(void) {
            int i;
            for (i = 0; i < 10; i++) {
                struct node *fresh = (struct node *)malloc(sizeof(struct node));
                fresh->value = i;
                fresh->next = 0;
                if (i % 2 == 0) {
                    fresh->next = retained;
                    retained = fresh;          /* reachable from a global */
                }                              /* odd nodes become garbage */
            }
            return 0;
        }
        """
        model = get_model("cheri_v3")
        module = compile_for_model(source, model)
        machine = AbstractMachine(module, model)
        result = machine.run()
        assert result.exit_code == 0
        return machine

    def test_collects_only_unreachable_objects(self):
        machine = self._machine_with_garbage()
        collector = CapabilityGarbageCollector(machine)
        stats = collector.collect()
        assert stats.swept_objects == 5
        assert stats.live_objects == 5

    def test_collection_is_idempotent(self):
        machine = self._machine_with_garbage()
        collector = CapabilityGarbageCollector(machine)
        collector.collect()
        again = collector.collect()
        assert again.swept_objects == 0

    def test_relocation_preserves_list_contents(self):
        machine = self._machine_with_garbage()
        collector = CapabilityGarbageCollector(machine)
        stats = collector.collect(relocate=True)
        assert stats.relocated_objects == 5
        assert stats.rewritten_references >= 5
        # Walk the relocated list through the machine's own loads: the values
        # 8, 6, 4, 2, 0 must still be reachable through rewritten capabilities.
        cursor = machine.globals_value("retained") if hasattr(machine, "globals_value") else None
        values = []
        pointer = machine._load_scalar(machine.globals["retained"],
                                       machine.module.globals["retained"].ctype)
        while not pointer.is_null:
            node_type = machine.module.globals["retained"].ctype.pointee
            value_field = node_type.field_named("value", machine.ctx)
            next_field = node_type.field_named("next", machine.ctx)
            value_ptr = machine.model.field_address(pointer, value_field.offset, 8)
            values.append(machine._load_scalar(value_ptr, value_field.ctype).value)
            next_ptr = machine.model.field_address(pointer, next_field.offset,
                                                    machine.model.pointer_bytes)
            pointer = machine._load_scalar(next_ptr, next_field.ctype)
        assert values == [8, 6, 4, 2, 0]

    def test_requires_tagged_model(self):
        from repro.common.errors import InterpreterError

        model = get_model("pdp11")
        module = compile_for_model("int main(void){return 0;}", model)
        machine = AbstractMachine(module, model)
        machine.run()
        with pytest.raises(InterpreterError):
            CapabilityGarbageCollector(machine)

    def test_integer_hoarding_does_not_retain_under_precise_gc(self):
        """§3.6: with tags, an address hidden in a plain integer does not keep
        the object alive (unlike a conservative collector)."""
        source = """
        long stash;
        int main(void) {
            int *p = (int *)malloc(sizeof(int));
            *p = 1;
            stash = (long)p;      /* plain integer: no capability stored */
            return 0;
        }
        """
        model = get_model("cheri_v3")
        module = compile_for_model(source, model)
        machine = AbstractMachine(module, model)
        assert machine.run().exit_code == 0
        stats = CapabilityGarbageCollector(machine).collect()
        assert stats.swept_objects == 1


class TestEndToEndScenarios:
    def test_same_program_timed_under_all_models(self):
        source = """
        int main(void) {
            long total = 0;
            long i;
            long *data = (long *)malloc(sizeof(long) * 64);
            for (i = 0; i < 64; i++) data[i] = i;
            for (i = 0; i < 64; i++) total += data[i];
            return total == 2016 ? 0 : 1;
        }
        """
        for model in ("pdp11", "hardbound", "mpx", "relaxed", "strict", "cheri_v2", "cheri_v3"):
            result = run_under_model(source, model)
            assert not result.trapped and result.exit_code == 0, model
            assert result.cycles > 0

    def test_isa_and_interpreter_agree_on_capability_semantics(self):
        """The ISA simulator and the abstract machine enforce the same rule:
        an out-of-bounds store through a 64-byte capability traps."""
        from repro.isa import Assembler
        from repro.sim import CheriCpu

        asm_state = CheriCpu(Assembler().assemble("""
        .text
        li $t0, 64
        csetbounds $c1, $c0, $t0
        li $t1, 80
        csetoffset $c1, $c1, $t1
        csb $t0, 0, $c1
        """)).run()
        assert asm_state.memory_safety_violation is not None

        c_result = run_under_model(
            "int main(void){ char *p = (char *)malloc(64); p[80] = 1; return 0; }",
            "cheri_v3",
        )
        assert c_result.trapped

    def test_documented_quickstart_example_runs(self):
        from repro import MemorySafeMachine

        machine = MemorySafeMachine(model="cheri_v3")
        result = machine.run("int main(void) { return 0; }")
        assert result.ok

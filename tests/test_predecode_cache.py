"""Guardrails for the predecode-artifact cache and shared block binding.

PR 5 split ``interp/predecode.py::compile_function`` into a model-independent
artifact (``interp/artifact.py``, cached process-wide per ``(function,
pointer layout)``) plus a per-machine binding step, with shared
superinstruction plans bound lazily once a function proves hot.  These tests
pin the three contracts that make the split safe:

* **observational identity** — the golden-metrics observables are
  bit-identical with shared blocks on and off, across all seven models,
  including instruction budgets exhausting mid-block;
* **the cache actually hits** — a differential mini-sweep reuses one
  artifact per (function, layout) across every model of that layout;
* **no cross-machine leakage** — two machines with different models bound
  against the same artifact produce exactly what they produce alone.
"""

from __future__ import annotations

import pytest

from repro.core.api import compile_for_model
from repro.difftest import DifferentialRunner, classify_sweep, generate_corpus, summarize
from repro.interp.artifact import ARTIFACTS, get_artifact
from repro.interp.machine import AbstractMachine
from repro.interp.models import PAPER_MODEL_ORDER, get_model
from repro.interp.predecode import HOT_CALL_THRESHOLD

from test_metrics_golden import GOLDEN, WORKLOADS


def observables(result) -> dict:
    return dict(
        instructions=result.instructions,
        cycles=result.cycles,
        memory_accesses=result.memory_accesses,
        allocations=result.allocations,
        output=result.output.decode("latin-1"),
        exit_code=result.exit_code,
        trap=type(result.trap).__name__ if result.trap else None,
        trap_text=str(result.trap) if result.trap else None,
        checkpoints=result.checkpoints,
    )


def run_shared(source: str, model_name: str, **kwargs):
    model = get_model(model_name)
    module = compile_for_model(source, model)
    return AbstractMachine(module, model, shared_blocks=True, **kwargs).run()


# ---------------------------------------------------------------------------
# Observational identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("model", PAPER_MODEL_ORDER)
def test_shared_blocks_match_golden_metrics(workload: str, model: str) -> None:
    """The exact goldens pinned for the specialized engine hold verbatim on
    a shared-blocks machine (same counters, output, traps, checkpoints)."""
    expected = GOLDEN[f"{workload}/{model}"]
    observed = observables(run_shared(WORKLOADS[workload](), model))
    observed.pop("trap_text")
    assert observed == expected


#: helper runs often enough to cross HOT_CALL_THRESHOLD, so the shared
#: block plans are exercised (not just the cold per-instruction handlers).
HOT_SOURCE = r"""
int accumulate(int *p, int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) acc += p[i] * 2;
    return acc;
}

int main(void) {
    int data[6];
    int i;
    long total = 0;
    for (i = 0; i < 6; i++) data[i] = i * 5 - 3;
    for (i = 0; i < 8; i++) total += accumulate(data, 6);
    mini_checkpoint((int)total);
    mini_output_int(total);
    return (int)(total & 63);
}
"""


@pytest.mark.parametrize("model", PAPER_MODEL_ORDER)
def test_budget_exhaustion_identical_in_both_modes(model: str) -> None:
    """Budgets landing at *every* point of the program — including inside
    hot (block-compiled) code and on the consumer half of fused
    pointer-move/memory pairs, where restricted fusion once diverged by one
    cycle — must trap with identical counters in both modes."""
    from repro.difftest import generate_program

    source = generate_program(7, 3).source
    resolved = get_model(model)
    module = compile_for_model(source, resolved)
    full = AbstractMachine(module, get_model(model)).run().instructions
    # exhaustive on the three distinct charging shapes (pdp11's check
    # policy, strict's mem fusion, cheri_v2's no-fusion layout); strided
    # elsewhere to keep tier-1 fast
    stride = 1 if model in ("pdp11", "strict", "cheri_v2") else 7
    for budget in range(1, full + 2, stride):
        specialized = AbstractMachine(module, get_model(model),
                                      max_instructions=budget).run()
        shared = AbstractMachine(module, get_model(model),
                                 max_instructions=budget, shared_blocks=True).run()
        assert observables(specialized) == observables(shared), budget

    # and the hot-helper case: the trap lands inside bound block plans
    hot_full = AbstractMachine(compile_for_model(HOT_SOURCE, resolved),
                               get_model(model), shared_blocks=True).run()
    budget = hot_full.instructions // 2
    specialized = AbstractMachine(compile_for_model(HOT_SOURCE, resolved), get_model(model),
                                  max_instructions=budget).run()
    shared = AbstractMachine(compile_for_model(HOT_SOURCE, resolved), get_model(model),
                             max_instructions=budget, shared_blocks=True).run()
    assert observables(specialized) == observables(shared)
    assert shared.trap is not None and "instruction budget" in str(shared.trap)


def test_hot_functions_get_blocks_and_cold_ones_do_not() -> None:
    model = get_model("pdp11")
    module = compile_for_model(HOT_SOURCE, model)
    machine = AbstractMachine(module, model, shared_blocks=True)
    machine.run()
    by_name = {code.function.name: code
               for code in machine._code_cache.values()}
    helper = by_name["accumulate"]
    assert helper.calls >= HOT_CALL_THRESHOLD
    assert helper.blocks, "hot helper should have bound its shared block plans"
    assert helper.pending_blocks is None
    main = by_name["main"]
    assert main.pending_blocks is not None, "main ran once: binding still deferred"
    assert not main.blocks


# ---------------------------------------------------------------------------
# Cache behaviour
# ---------------------------------------------------------------------------


def test_artifact_cache_hits_across_the_model_replay() -> None:
    """One program, seven models: every model of a layout binds the same
    artifact, so the replay is all hits after the first machine per layout."""
    ARTIFACTS.clear()
    runner = DifferentialRunner(analyze=False)
    result = runner.run_source(HOT_SOURCE)
    assert not result.compile_errors and len(result.results) == 7
    stats = ARTIFACTS.stats()
    # 2 layouts x (accumulate, main): 4 misses; the other machines hit.
    assert stats["misses"] == 4
    # 5 models share the 8-byte artifacts, 2 share the capability ones:
    # (5-1)*2 + (2-1)*2 = 10 hits at minimum (reruns only add more).
    assert stats["hits"] >= 10


def test_mini_sweep_with_cold_and_warm_cache_classifies_identically() -> None:
    programs = generate_corpus(7, 6)
    runner = DifferentialRunner(analyze=False)
    ARTIFACTS.clear()
    cold = summarize(classify_sweep(runner.sweep(programs)))
    hits_after_cold = ARTIFACTS.stats()["hits"]
    warm = summarize(classify_sweep(runner.sweep(programs)))
    assert cold == warm
    assert hits_after_cold > 0


def test_artifact_identity_is_verified_not_assumed() -> None:
    """A cache key can only be reused by the very same function object."""
    model = get_model("pdp11")
    module = compile_for_model(HOT_SOURCE, model)
    function = module.functions["accumulate"]
    first = get_artifact(function, module.context)
    assert get_artifact(function, module.context) is first
    other_module = compile_for_model(HOT_SOURCE, model)
    other = get_artifact(other_module.functions["accumulate"], other_module.context)
    assert other is not first


# ---------------------------------------------------------------------------
# Cross-machine isolation
# ---------------------------------------------------------------------------


def test_no_cross_machine_state_leakage() -> None:
    """Two machines with *different models* bound against the same shared
    artifacts, run interleaved, behave exactly like solo runs."""
    source = WORKLOADS["sub_idiom"]()
    solo = {name: observables(run_shared(source, name))
            for name in ("pdp11", "strict", "cheri_v2")}

    # Interleaved: one module per layout, machines sharing artifacts.
    module8 = compile_for_model(source, get_model("pdp11"))
    module32 = compile_for_model(source, get_model("cheri_v2"))
    machines = {
        "pdp11": AbstractMachine(module8, get_model("pdp11"), shared_blocks=True),
        "strict": AbstractMachine(module8, get_model("strict"), shared_blocks=True),
        "cheri_v2": AbstractMachine(module32, get_model("cheri_v2"), shared_blocks=True),
    }
    interleaved = {name: observables(machine.run())
                   for name, machine in machines.items()}
    assert interleaved == solo
    # and running a second strict machine against the now-warm artifacts
    # still reproduces the solo observables
    again = AbstractMachine(compile_for_model(source, get_model("strict")),
                            get_model("strict"), shared_blocks=True).run()
    assert observables(again) == solo["strict"]


def test_reoptimizing_a_function_invalidates_its_artifact() -> None:
    """In-place optimizer passes bump Function.mutations (via
    invalidate_label_index), which the cache verifies on every hit."""
    from repro.minic.optimizer import optimize_module

    model = get_model("pdp11")
    module = compile_for_model(HOT_SOURCE, model)
    function = module.functions["main"]
    before = get_artifact(function, module.context)
    optimize_module(module)  # mutates in place even when nothing folds anew
    after = get_artifact(function, module.context)
    assert after is not before


def test_provenance_overriding_model_identical_in_both_modes() -> None:
    """A model that overrides propagate_provenance must see every operand:
    shared blocks demote its arithmetic to charge-point closure calls and
    stay observationally identical to the specialized engine."""
    from repro.interp.models.strict import StrictModel

    class TracingStrict(StrictModel):
        name = "strict_tracing"
        calls = 0

        def propagate_provenance(self, left, right, result):
            TracingStrict.calls += 1
            return super().propagate_provenance(left, right, result)

    def run(shared: bool):
        model = TracingStrict()
        module = compile_for_model(HOT_SOURCE, model)
        return AbstractMachine(module, model, shared_blocks=shared).run()

    specialized = observables(run(False))
    hook_calls_specialized = TracingStrict.calls
    TracingStrict.calls = 0
    shared = observables(run(True))
    assert specialized == shared
    assert specialized["trap"] is None
    # the overridden hook really ran, equally often, in both modes
    assert TracingStrict.calls == hook_calls_specialized > 0

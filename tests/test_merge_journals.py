"""Corruption-aware multi-host journal merge (repro.difftest.merge).

The acceptance contract has two halves, both pinned here:

* a 3-way ``--host-shard`` split, merged, produces exactly the records a
  single-host serial sweep produces (and therefore byte-identical derived
  artifacts — the artifact construction itself is shared code);
* the merge *refuses*, with a non-zero CLI exit and a diagnostic naming the
  journals involved, on every condition that could silently falsify the
  merged Table 5: header mismatch, gap, overlap, conflicting cell records,
  duplicated shards, or a record outside its journal's declared shard.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

from repro.common.errors import JournalError, MergeError
from repro.difftest.journal import JournalWriter, make_header
from repro.difftest.merge import merge_journals
from repro.difftest.service import SweepService

REPO = pathlib.Path(__file__).resolve().parent.parent
MODELS = ("pdp11", "hardbound")


def _header(count=6, shard=None, seed=0):
    return make_header(seed=seed, count=count, models=MODELS, budget=1000,
                       generator_version=1, analyze=False, host_shard=shard)


def _record(index, *, category="agree"):
    return {"index": index, "seed": 1000 + index, "features": ["probe"],
            "classification": {m: category for m in MODELS}, "metrics": {}}


def _write_journal(path, header, records):
    with JournalWriter.create(str(path), header) as writer:
        for record in records:
            writer.append(record)
    return str(path)


def _shard_pair(tmp_path, count=6):
    """Two complete half-shard journals of a ``count``-program sweep."""
    paths = []
    for i in range(2):
        paths.append(_write_journal(
            tmp_path / f"shard{i}.jsonl", _header(count, shard=(i, 2)),
            [_record(index) for index in range(i, count, 2)]))
    return paths


# ---------------------------------------------------------------------------
# The happy path
# ---------------------------------------------------------------------------


def test_merge_recombines_shards_in_index_order(tmp_path):
    merged = merge_journals(_shard_pair(tmp_path))
    assert [record["index"] for record in merged.records] == list(range(6))
    assert merged.header["host_shard"] is None
    assert merged.recoveries == []


def test_merged_shards_match_a_single_host_serial_sweep(tmp_path):
    count = 9
    serial = SweepService(
        seed=0, count=count, models=MODELS, analyze=False,
        journal_path=str(tmp_path / "serial.jsonl")).run()
    shard_paths = []
    for i in range(3):
        path = tmp_path / f"shard{i}.jsonl"
        SweepService(seed=0, count=count, models=MODELS, analyze=False,
                     host_shard=(i, 3), journal_path=str(path)).run()
        shard_paths.append(str(path))
    merged = merge_journals(shard_paths)
    assert json.dumps(merged.records, sort_keys=True) == \
        json.dumps(serial.records, sort_keys=True)


def test_torn_tail_in_an_input_is_recovered_in_memory_only(tmp_path):
    paths = _shard_pair(tmp_path)
    with open(paths[1], "ab") as handle:
        handle.write(b'{"index":5,"torn":')
    before = pathlib.Path(paths[1]).read_bytes()
    merged = merge_journals(paths)
    assert [record["index"] for record in merged.records] == list(range(6))
    assert len(merged.recoveries) == 1
    assert merged.recoveries[0]["journal"] == paths[1]
    assert merged.recoveries[0]["torn_index"] == 5
    assert merged.recoveries[0]["dropped_bytes"] == len(b'{"index":5,"torn":')
    # The input file belongs to the host that wrote it: never modified.
    assert pathlib.Path(paths[1]).read_bytes() == before


# ---------------------------------------------------------------------------
# Refusals
# ---------------------------------------------------------------------------


def test_refuses_a_gap_with_a_resume_hint(tmp_path):
    paths = [
        _write_journal(tmp_path / "shard0.jsonl", _header(6, shard=(0, 2)),
                       [_record(0), _record(2)]),  # index 4 missing
        _write_journal(tmp_path / "shard1.jsonl", _header(6, shard=(1, 2)),
                       [_record(index) for index in (1, 3, 5)]),
    ]
    with pytest.raises(MergeError, match=r"missing \[4\].*--resume"):
        merge_journals(paths)


def test_refuses_a_missing_shard_entirely(tmp_path):
    paths = _shard_pair(tmp_path)
    with pytest.raises(MergeError, match="cover 3/6"):
        merge_journals(paths[:1])


def test_refuses_an_overlap_even_when_records_agree(tmp_path):
    paths = [
        _write_journal(tmp_path / "a.jsonl", _header(2, shard=None),
                       [_record(0), _record(1)]),
        _write_journal(tmp_path / "b.jsonl", _header(2, shard=None),
                       [_record(1)]),
    ]
    with pytest.raises(MergeError, match="overlap at program index 1"):
        merge_journals(paths)


def test_refuses_a_conflict_with_a_distinct_diagnostic(tmp_path):
    paths = [
        _write_journal(tmp_path / "a.jsonl", _header(2, shard=None),
                       [_record(0), _record(1)]),
        _write_journal(tmp_path / "b.jsonl", _header(2, shard=None),
                       [_record(1, category="ub:bounds")]),
    ]
    with pytest.raises(MergeError, match="conflict at program index 1"):
        merge_journals(paths)


def test_refuses_a_header_identity_mismatch(tmp_path):
    paths = [
        _write_journal(tmp_path / "a.jsonl", _header(6, shard=(0, 2)),
                       [_record(index) for index in (0, 2, 4)]),
        _write_journal(tmp_path / "b.jsonl", _header(6, shard=(1, 2), seed=7),
                       [_record(index) for index in (1, 3, 5)]),
    ]
    with pytest.raises(MergeError, match="different sweep.*seed"):
        merge_journals(paths)


def test_refuses_the_same_shard_journaled_twice(tmp_path):
    paths = [
        _write_journal(tmp_path / "a.jsonl", _header(6, shard=(0, 2)),
                       [_record(index) for index in (0, 2, 4)]),
        _write_journal(tmp_path / "b.jsonl", _header(6, shard=(0, 2)), []),
    ]
    with pytest.raises(MergeError, match="shard was journaled twice"):
        merge_journals(paths)


def test_refuses_disagreeing_shard_counts(tmp_path):
    paths = [
        _write_journal(tmp_path / "a.jsonl", _header(6, shard=(0, 2)),
                       [_record(index) for index in (0, 2, 4)]),
        _write_journal(tmp_path / "b.jsonl", _header(6, shard=(1, 3)),
                       [_record(index) for index in (1, 4)]),
    ]
    with pytest.raises(MergeError, match="disagree on the shard count"):
        merge_journals(paths)


def test_refuses_a_record_outside_its_declared_shard(tmp_path):
    paths = [
        _write_journal(tmp_path / "a.jsonl", _header(6, shard=(0, 2)),
                       [_record(0), _record(1)]),  # 1 % 2 != 0: mislabeled
        _write_journal(tmp_path / "b.jsonl", _header(6, shard=(1, 2)),
                       [_record(index) for index in (1, 3, 5)]),
    ]
    with pytest.raises(MergeError, match="corrupt or mislabeled"):
        merge_journals(paths)


def test_refuses_duplicate_paths_and_non_journals(tmp_path):
    path = _write_journal(tmp_path / "a.jsonl", _header(2), [_record(0)])
    with pytest.raises(MergeError, match="more than once"):
        merge_journals([path, path])
    not_a_journal = tmp_path / "noise.jsonl"
    not_a_journal.write_text('{"kind": "something-else"}\n')
    with pytest.raises(JournalError, match="not a difftest journal"):
        merge_journals([path, str(not_a_journal)])
    with pytest.raises(MergeError, match="no journals"):
        merge_journals([])


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------


def _run_cli(script, *argv):
    return subprocess.run(
        [sys.executable, str(REPO / "scripts" / script), *argv],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})


def test_merge_cli_refuses_a_gap_with_nonzero_exit(tmp_path):
    paths = _shard_pair(tmp_path)
    proc = _run_cli("merge_journals.py", paths[0],
                    "--out-dir", str(tmp_path / "out"), "--reduce", "0")
    assert proc.returncode == 2
    assert "cover 3/6" in proc.stderr
    assert not (tmp_path / "out").exists()  # no partial artifacts


def test_run_difftest_merge_flag_refuses_conflicts(tmp_path):
    paths = [
        _write_journal(tmp_path / "a.jsonl", _header(2), [_record(0), _record(1)]),
        _write_journal(tmp_path / "b.jsonl", _header(2),
                       [_record(1, category="ub:bounds")]),
    ]
    proc = _run_cli("run_difftest.py", "--merge", *paths,
                    "--out-dir", str(tmp_path / "out"), "--reduce", "0")
    assert proc.returncode == 2
    assert "conflict at program index 1" in proc.stderr

"""Tests for the abstract-machine runtime: values, heap, machine, intrinsics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import InterpreterError, MemorySafetyError
from repro.core import run_under_model
from repro.core.api import compile_for_model
from repro.interp import AbstractMachine, IntVal, ObjectAllocator, PtrVal, get_model
from repro.interp.heap import HEAP_BASE
from repro.interp.values import NULL_PTR, PERM_READ, PERM_WRITE, Provenance


class TestIntVal:
    def test_wrapping_and_sign(self):
        assert IntVal(256, bytes=1).value == 0
        assert IntVal(255, bytes=1, signed=True).value == -1
        assert IntVal(255, bytes=1, signed=False).value == 255

    def test_unsigned_view(self):
        assert IntVal(-1, bytes=4).unsigned == 0xFFFFFFFF

    def test_truthiness(self):
        assert IntVal(1).is_true and not IntVal(0).is_true

    def test_narrowing_marks_provenance_modified(self):
        pointer = PtrVal(address=0x1000, base=0x1000, length=8)
        wide = IntVal(0x1000, bytes=8, provenance=Provenance(pointer))
        narrow = wide.converted(bytes=4, signed=False)
        assert narrow.provenance is not None and narrow.provenance.modified

    def test_same_width_conversion_keeps_provenance(self):
        pointer = PtrVal(address=0x1000, base=0x1000, length=8)
        value = IntVal(0x1000, bytes=8, provenance=Provenance(pointer))
        assert not value.converted(bytes=8, signed=False).provenance.modified

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_64bit_roundtrip(self, value):
        assert IntVal(value, bytes=8, signed=True).value == value


class TestPtrVal:
    def test_null(self):
        assert NULL_PTR.is_null and not NULL_PTR.tag

    def test_offset_property(self):
        pointer = PtrVal(address=0x1010, base=0x1000, length=0x100)
        assert pointer.offset == 0x10
        assert pointer.in_bounds

    def test_moves_wrap_modulo_64_bits(self):
        pointer = PtrVal(address=8, base=0, length=16)
        assert pointer.moved_by(-16).address == (8 - 16) % (1 << 64)

    def test_perm_helpers(self):
        pointer = PtrVal(address=0, base=0, length=8, perms=PERM_READ | PERM_WRITE)
        assert pointer.with_perms(PERM_READ).perms == PERM_READ


class TestAllocator:
    def test_regions_are_disjoint_and_high(self):
        allocator = ObjectAllocator()
        glob = allocator.allocate_global(16, "g")
        heap = allocator.allocate_heap(16)
        stack = allocator.allocate_stack(16)
        assert glob.base < heap.base < stack.base
        assert glob.base >= (1 << 32)  # WIDE idiom must lose information

    def test_find_by_address(self):
        allocator = ObjectAllocator()
        obj = allocator.allocate_heap(64)
        assert allocator.find(obj.base + 10) is obj
        assert allocator.find(obj.base + 64) is not obj

    def test_free_and_double_free(self):
        allocator = ObjectAllocator()
        obj = allocator.allocate_heap(16)
        allocator.free(obj)
        assert obj.freed
        with pytest.raises(InterpreterError):
            allocator.free(obj)

    def test_stack_addresses_reused_across_frames(self):
        allocator = ObjectAllocator()
        allocator.push_frame()
        first = allocator.allocate_stack(32)
        allocator.pop_frame()
        allocator.push_frame()
        second = allocator.allocate_stack(32)
        allocator.pop_frame()
        assert first.base == second.base
        assert first.freed and second.freed

    def test_heap_base_constant(self):
        allocator = ObjectAllocator()
        assert allocator.allocate_heap(8).base >= HEAP_BASE

    @given(st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=50))
    def test_allocations_never_overlap(self, sizes):
        allocator = ObjectAllocator()
        objects = [allocator.allocate_heap(size) for size in sizes]
        spans = sorted((o.base, o.top) for o in objects)
        for (base_a, top_a), (base_b, _) in zip(spans, spans[1:]):
            assert top_a <= base_b


class TestMachineBasics:
    def test_exit_code_from_main(self):
        assert run_under_model("int main(void) { return 7; }", "pdp11").exit_code == 7

    def test_pointer_width_mismatch_rejected(self):
        module = compile_for_model("int main(void){return 0;}", "pdp11")
        with pytest.raises(InterpreterError):
            AbstractMachine(module, get_model("cheri_v3"))

    def test_instruction_budget_enforced(self):
        module = compile_for_model("int main(void){ while (1) {} return 0; }", "pdp11")
        result = AbstractMachine(module, get_model("pdp11"), max_instructions=10_000).run()
        assert result.trapped

    def test_output_capture(self):
        result = run_under_model('int main(void){ printf("x=%d", 42); return 0; }', "pdp11")
        assert result.output_text() == "x=42"

    def test_checkpoints(self):
        result = run_under_model(
            "int main(void){ mini_checkpoint(5); mini_checkpoint(9); return 0; }", "pdp11"
        )
        assert result.checkpoints == [5, 9]

    def test_exit_intrinsic(self):
        assert run_under_model("int main(void){ exit(3); return 0; }", "pdp11").exit_code == 3

    def test_timing_accumulates(self):
        result = run_under_model(
            "int main(void){ int a[64]; int i; for (i=0;i<64;i++) a[i]=i; return 0; }", "pdp11"
        )
        assert result.cycles > result.instructions
        assert result.memory_accesses > 64


class TestUnoptimizedPrograms:
    """The predecoded engine must not depend on the optimizer's constant
    folding: unoptimized IR feeds constants straight into casts, unary ops
    and unboxed register slots (regression for the slot-type analysis)."""

    SOURCE = """
    int main(void) {
        int x = (int)300;
        int y = -(5);
        long wide = (long)x;
        int z = x + y + (int)wide - x;
        mini_output_int(z);
        return z;
    }
    """

    @pytest.mark.parametrize("optimize", [True, False])
    def test_const_casts_and_unops(self, optimize: bool):
        module = compile_for_model(self.SOURCE, "pdp11", optimize=optimize)
        result = AbstractMachine(module, get_model("pdp11")).run()
        assert not result.trapped, result.trap
        assert result.exit_code == 295
        assert result.output == b"295\n"

    def test_budget_trap_instruction_count_is_exact(self):
        # Fused pairs must re-check the budget before the consumer half runs:
        # a budget trap always reports max_instructions + 1 executed.
        source = "int main(void){ int i; int t=0; for(i=0;i<20;i++){ t+=i; } return t; }"
        for budget in (5, 9, 17, 33, 57):
            module = compile_for_model(source, "pdp11")
            result = AbstractMachine(module, get_model("pdp11"),
                                     max_instructions=budget).run()
            assert result.trapped
            assert result.instructions == budget + 1


class TestMemorySafetyEnforcement:
    def test_heap_overflow_trapped_by_cheri(self):
        source = """
        int main(void) {
            char *p = (char *)malloc(16);
            p[16] = 1;            /* classic off-by-one heap overflow */
            return 0;
        }
        """
        assert run_under_model(source, "cheri_v3").trapped
        assert not run_under_model(source, "pdp11").trapped

    def test_stack_buffer_overflow_trapped(self):
        source = """
        void smash(char *buf) { int i; for (i = 0; i < 64; i++) buf[i] = 65; }
        int main(void) { char buf[8]; smash(buf); return 0; }
        """
        result = run_under_model(source, "cheri_v3")
        assert isinstance(result.trap, MemorySafetyError)
        assert not run_under_model(source, "pdp11").trapped

    def test_use_after_free_trapped(self):
        source = """
        int main(void) {
            int *p = (int *)malloc(sizeof(int));
            *p = 4;
            free(p);
            return *p;
        }
        """
        assert run_under_model(source, "cheri_v3").trapped

    def test_dangling_stack_pointer_trapped(self):
        source = """
        int *escape(void) { int local = 3; return &local; }
        int main(void) { int *p = escape(); return *p; }
        """
        assert run_under_model(source, "cheri_v3").trapped

    def test_null_dereference_trapped_everywhere(self):
        source = "int main(void) { int *p = 0; return *p; }"
        for model in ("pdp11", "cheri_v3", "strict", "mpx"):
            assert run_under_model(source, model).trapped, model

    def test_input_qualifier_enforced_by_cheri_only(self):
        source = """
        int poke(char * __input view) { view[0] = 'X'; return 0; }
        int main(void) { char buf[4]; buf[0] = 'a'; poke(buf); return buf[0] == 'a' ? 1 : 0; }
        """
        assert run_under_model(source, "cheri_v3").trapped
        assert run_under_model(source, "cheri_v2").trapped
        assert not run_under_model(source, "pdp11").trapped

    def test_const_advisory_on_v3_enforced_on_v2(self):
        source = """
        int main(void) {
            char buf[4];
            const char *view = buf;
            char *w = (char *)view;
            w[0] = 'x';
            return 0;
        }
        """
        assert not run_under_model(source, "cheri_v3").trapped
        assert run_under_model(source, "cheri_v2").trapped

    def test_capability_oblivious_memcpy_preserves_pointers(self):
        """§4: memcpy must be able to copy structures containing pointers."""
        source = """
        struct holder { int *item; long pad; };
        int main(void) {
            int value = 11;
            struct holder a;
            struct holder b;
            a.item = &value;
            a.pad = 1;
            memcpy(&b, &a, sizeof(struct holder));
            return *b.item == 11 ? 0 : 1;
        }
        """
        for model in ("pdp11", "cheri_v2", "cheri_v3", "hardbound", "strict"):
            result = run_under_model(source, model)
            assert not result.trapped and result.exit_code == 0, model

    def test_data_overwrite_invalidates_stored_capability(self):
        """Union-style type punning cannot forge a capability (§4.2)."""
        source = """
        union punning { int *pointer; long words[4]; };
        int main(void) {
            int value = 5;
            union punning u;
            u.pointer = &value;
            u.words[0] = u.words[0] + 0;   /* rewrite the pointer bytes as data */
            return *u.pointer;
        }
        """
        assert run_under_model(source, "cheri_v3").trapped
        assert not run_under_model(source, "pdp11").trapped

    def test_intcap_roundtrip_supported_on_v3(self):
        source = """
        int main(void) {
            int x = 9;
            intptr_t bits = (intptr_t)&x;
            bits = bits + 4;
            bits = bits - 4;
            int *p = (int *)bits;
            return *p == 9 ? 0 : 1;
        }
        """
        assert run_under_model(source, "cheri_v3").exit_code == 0
        assert run_under_model(source, "strict").trapped


class TestIntrinsics:
    def test_malloc_calloc_zeroing(self):
        source = """
        int main(void) {
            int *p = (int *)calloc(4, sizeof(int));
            return p[0] == 0 && p[3] == 0 ? 0 : 1;
        }
        """
        assert run_under_model(source, "cheri_v3").exit_code == 0

    def test_realloc_preserves_prefix(self):
        source = """
        int main(void) {
            int *p = (int *)malloc(2 * sizeof(int));
            p[0] = 3; p[1] = 4;
            p = (int *)realloc(p, 8 * sizeof(int));
            p[7] = 9;
            return p[0] == 3 && p[1] == 4 && p[7] == 9 ? 0 : 1;
        }
        """
        assert run_under_model(source, "cheri_v3").exit_code == 0

    def test_memset_memcmp_memchr(self):
        source = """
        int main(void) {
            char buf[8];
            memset(buf, 7, 8);
            char other[8];
            memset(other, 7, 8);
            if (memcmp(buf, other, 8) != 0) return 1;
            other[5] = 9;
            if (memcmp(buf, other, 8) == 0) return 2;
            char *found = (char *)memchr(other, 9, 8);
            return found == &other[5] ? 0 : 3;
        }
        """
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_string_functions(self):
        source = """
        int main(void) {
            char buf[32];
            strcpy(buf, "hello");
            if (strncmp(buf, "help", 3) != 0) return 1;
            if (strchr(buf, 'l') != &buf[2]) return 2;
            strncpy(buf, "worldly", 5);
            buf[5] = 0;
            return strcmp(buf, "world") == 0 ? 0 : 3;
        }
        """
        assert run_under_model(source, "cheri_v3").exit_code == 0

    def test_printf_formats(self):
        source = r"""
        int main(void) {
            printf("%d %u %x %c %s %%", -3, 10, 255, 65, "ok");
            return 0;
        }
        """
        result = run_under_model(source, "pdp11")
        assert result.output_text() == "-3 10 ff A ok %"

    def test_sprintf_and_snprintf(self):
        source = r"""
        int main(void) {
            char buf[32];
            sprintf(buf, "v=%d", 12);
            if (strcmp(buf, "v=12") != 0) return 1;
            snprintf(buf, 4, "%s", "abcdef");
            return strcmp(buf, "abc") == 0 ? 0 : 2;
        }
        """
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_assert_failure_traps(self):
        assert run_under_model("int main(void){ assert(0); return 0; }", "pdp11").trapped

    def test_abs_and_division_semantics(self):
        source = "int main(void){ return abs(-5) == 5 && labs(-6) == 6 ? 0 : 1; }"
        assert run_under_model(source, "pdp11").exit_code == 0

    def test_rand_is_deterministic_across_runs(self):
        source = "int main(void){ srand(7); return rand() % 100; }"
        assert run_under_model(source, "pdp11").exit_code == run_under_model(source, "pdp11").exit_code

    def test_division_by_zero_reported(self):
        assert run_under_model("int main(void){ int z = 0; return 5 / z; }", "pdp11").trapped

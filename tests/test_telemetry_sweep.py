"""Telemetry integration with the sweep service: the never-changes-artifacts
contract, plus every telemetry surface end to end.

The load-bearing property is bit-identity: a sweep with every telemetry
surface enabled (trace + stats + status, serial or parallel, even under
fault injection) must journal exactly the records a telemetry-off serial
sweep produces.  Everything else — trace schema, status liveness, stats
trailers, resume/merge aggregation, SIGKILL atomicity — is checked against
those same sweeps.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.difftest import SweepService, parse_inject_spec
from repro.difftest.generator import generate_corpus
from repro.difftest.journal import load_journal
from repro.difftest.merge import merge_journals
from repro.difftest.oracle import cell_record, classify_sweep
from repro.difftest.runner import DifferentialRunner
from repro.telemetry import metrics
from repro.telemetry.status import read_status, write_status

SEED = 0
COUNT = 10

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def reference_records():
    """Telemetry-off serial in-process sweep: the golden record list."""
    programs = generate_corpus(SEED, COUNT)
    runner = DifferentialRunner()
    results = runner.sweep(programs)
    classifications = classify_sweep(results)
    return [cell_record(p, r, c)
            for p, r, c in zip(programs, results, classifications)]


def _run(tmp_path, name="journal.jsonl", resume=False, **kwargs):
    kwargs.setdefault("seed", SEED)
    kwargs.setdefault("count", COUNT)
    service = SweepService(journal_path=str(tmp_path / name), **kwargs)
    return service.run(resume=resume), service


# ---------------------------------------------------------------------------
# bit-identity: telemetry never touches the records
# ---------------------------------------------------------------------------


def test_serial_sweep_with_all_telemetry_is_bit_identical(
        tmp_path, reference_records):
    trace = tmp_path / "trace.json"
    outcome, _ = _run(tmp_path, trace_path=str(trace), collect_stats=True,
                      status_interval=0.05)
    assert json.dumps(outcome.records, sort_keys=True) == \
        json.dumps(reference_records, sort_keys=True)


def test_parallel_injected_sweep_with_telemetry_is_bit_identical(
        tmp_path, reference_records):
    trace = tmp_path / "trace.json"
    outcome, _ = _run(tmp_path, jobs=2, timeout=10.0,
                      inject=parse_inject_spec("all", COUNT),
                      trace_path=str(trace), collect_stats=True,
                      status_interval=0.05)
    assert json.dumps(outcome.records, sort_keys=True) == \
        json.dumps(reference_records, sort_keys=True)
    # the injected journal tear must surface as a structured incident
    assert any(incident["type"] == "torn_tail_recovery"
               and incident["injected"]
               for incident in outcome.incidents)
    assert outcome.telemetry["counters"]["journal.torn_tail_recoveries"] >= 1


def test_telemetry_off_outcome_has_no_surfaces(tmp_path):
    outcome, service = _run(tmp_path, count=2, status_interval=0)
    assert outcome.telemetry is None
    assert not service.telemetry_on
    assert service.status_path is None
    assert not list(tmp_path.glob("*.status.json"))


# ---------------------------------------------------------------------------
# trace file schema
# ---------------------------------------------------------------------------


def test_trace_schema_and_tracks(tmp_path):
    trace = tmp_path / "trace.json"
    _run(tmp_path, jobs=2, trace_path=str(trace), status_interval=0)
    with open(trace, encoding="utf-8") as handle:
        document = json.load(handle)
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    events = document["traceEvents"]
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        if event["ph"] == "X":
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int) and event["dur"] >= 0
    # one "program" span per program, on worker tracks (pid >= 1)
    programs = [e for e in events if e["name"] == "program"]
    assert len(programs) == COUNT
    assert all(e["pid"] >= 1 for e in programs)
    assert {e["args"]["index"] for e in programs} == set(range(COUNT))
    # per-stage spans nest on the same tracks; per-model execute spans exist
    names = {e["name"] for e in events}
    assert {"stage.generate", "stage.parse", "stage.lower",
            "stage.predecode", "stage.classify"} <= names
    assert any(name.startswith("stage.execute.") for name in names)
    # metadata names the supervisor and both workers
    metadata = [e for e in events if e["ph"] == "M"]
    named = {e["pid"]: e["args"]["name"] for e in metadata}
    assert named[0] == "difftest-supervisor"
    assert named[1] == "difftest-worker-0"


# ---------------------------------------------------------------------------
# status file
# ---------------------------------------------------------------------------


def test_status_file_reaches_done_with_worker_detail(tmp_path):
    outcome, service = _run(tmp_path, jobs=2, status_interval=0.05)
    status = read_status(service.status_path)
    assert status["kind"] == "repro-difftest-status"
    assert status["done"] is True
    assert status["completed"] == status["target"] == COUNT
    assert status["journal"] == str(tmp_path / "journal.jsonl")
    assert set(status["workers"]) == {"0", "1"}
    for worker in status["workers"].values():
        assert {"alive", "os_pid", "current_index", "busy_seconds",
                "respawns", "straggler"} <= set(worker)
    assert status["counters"]["completed"] == COUNT
    assert "artifact.hits" in status["cache"]


def test_status_interval_zero_disables_even_with_other_telemetry(tmp_path):
    outcome, service = _run(tmp_path, count=2, collect_stats=True,
                            status_interval=0)
    assert service.status_path is None
    assert outcome.telemetry is not None  # stats still collected
    assert not list(tmp_path.glob("*.status.json"))


def test_status_file_survives_sigkill_mid_write(tmp_path):
    """A reader never sees a torn document, even when the writer dies."""
    path = str(tmp_path / "victim.status.json")

    def writer_loop(path):
        i = 0
        while True:
            i += 1
            write_status(path, {"n": i, "pad": "x" * 4096})

    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    child = ctx.Process(target=writer_loop, args=(path,), daemon=True)
    child.start()
    try:
        deadline = time.monotonic() + 10.0
        while not os.path.exists(path):
            assert time.monotonic() < deadline, "writer never produced a file"
            time.sleep(0.005)
        reads = 0
        while reads < 50:
            status = read_status(path)  # must always parse completely
            assert status["pad"] == "x" * 4096
            reads += 1
    finally:
        os.kill(child.pid, signal.SIGKILL)
        child.join(5.0)
    status = read_status(path)  # still a complete document after the kill
    assert status["n"] >= 1 and status["pad"] == "x" * 4096


# ---------------------------------------------------------------------------
# stats: trailer, resume, merge aggregation
# ---------------------------------------------------------------------------


def test_stats_trailer_written_and_separated_from_records(tmp_path):
    outcome, service = _run(tmp_path, collect_stats=True, status_interval=0)
    state = load_journal(service.journal_path)
    assert len(state.records) == COUNT  # trailer never becomes a record
    (trailer,) = state.stats_trailers
    assert trailer["kind"] == "repro-difftest-stats"
    assert trailer["version"] == 1
    assert trailer["service"]["completed"] == COUNT
    snap = trailer["metrics"]
    assert snap["counters"]["service.completed"] == COUNT
    assert snap["histograms"]["stage.parse"]["count"] == COUNT
    # outcome telemetry is a later snapshot of the same registry: it also
    # sees the journal's close-time fsync
    assert outcome.telemetry["counters"]["journal.fsync_batches"] >= 1


def test_resume_after_trailer_replays_and_appends_second_trailer(tmp_path):
    _run(tmp_path, collect_stats=True, status_interval=0)
    outcome, service = _run(tmp_path, collect_stats=True, status_interval=0,
                            resume=True)
    assert len(outcome.records) == COUNT
    assert outcome.stats["resumed"] == COUNT
    state = load_journal(service.journal_path)
    assert len(state.stats_trailers) == 2  # one per completed session


def test_torn_tail_resume_records_structured_incident(tmp_path, capsys):
    _run(tmp_path, collect_stats=True, status_interval=0)
    journal = tmp_path / "journal.jsonl"
    with open(journal, "ab") as handle:
        handle.write(b'{"index":3,"torn":')  # crash mid-append
    outcome, _ = _run(tmp_path, collect_stats=True, status_interval=0,
                      resume=True)
    (incident,) = outcome.incidents
    assert incident["type"] == "torn_tail_recovery"
    assert incident["torn_index"] == 3
    assert incident["injected"] is False
    assert incident["dropped_bytes"] == len(b'{"index":3,"torn":')
    assert outcome.telemetry["counters"]["journal.torn_tail_recoveries"] == 1
    assert "recovered a torn tail" in capsys.readouterr().err


def test_sharded_sweep_trailers_aggregate_through_merge(
        tmp_path, reference_records):
    for shard in (0, 1):
        _run(tmp_path, name=f"shard{shard}.jsonl", host_shard=(shard, 2),
             collect_stats=True, status_interval=0)
    merged = merge_journals([str(tmp_path / "shard0.jsonl"),
                             str(tmp_path / "shard1.jsonl")])
    assert json.dumps(merged.records, sort_keys=True) == \
        json.dumps(reference_records, sort_keys=True)
    assert len(merged.stats_trailers) == 2
    assert {tuple(t["host_shard"]) for t in merged.stats_trailers} == \
        {(0, 2), (1, 2)}
    combined = {}
    for trailer in merged.stats_trailers:
        combined = metrics.merge_snapshots(combined, trailer["metrics"])
    assert combined["counters"]["service.completed"] == COUNT
    assert combined["histograms"]["stage.parse"]["count"] == COUNT


def test_worker_cache_stats_cross_the_fork_boundary(tmp_path):
    """Satellite 2: with jobs > 0 the LRU counters come from the workers'
    registries via the result queue, not the supervisor's zeros."""
    outcome, _ = _run(tmp_path, jobs=2, collect_stats=True, status_interval=0)
    counters = outcome.telemetry["counters"]
    assert counters["cache.artifact.hits"] > 0
    assert counters["cache.artifact.misses"] > 0


def test_artifact_cache_reports_evictions():
    from repro.interp.artifact import ArtifactCache

    class _Fn:  # minimal stand-in: identity-keyed, never revalidated
        def __init__(self):
            self.instrs = []
            self.mutations = 0
            self.name = "f"

        def label_index(self):
            return {}

    class _Ctx:
        pointer_bytes = 8
        pointer_align = 8

    cache = ArtifactCache(maxsize=2)
    ctx = _Ctx()
    functions = [_Fn() for _ in range(4)]
    for function in functions:
        cache.get(function, ctx)
    stats = cache.stats()
    assert stats["evictions"] == 2
    assert stats["entries"] == 2
    cache.clear()
    assert cache.stats() == {"hits": 0, "misses": 0, "evictions": 0,
                             "entries": 0}


# ---------------------------------------------------------------------------
# CLI round-trip (one subprocess: sweep with every surface, then dashboard)
# ---------------------------------------------------------------------------


def test_cli_sweep_and_status_dashboard_roundtrip(tmp_path):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    journal = tmp_path / "journal.jsonl"
    trace = tmp_path / "trace.json"
    result = subprocess.run(
        [sys.executable, os.path.join(REPO, "scripts", "run_difftest.py"),
         "--count", "6", "--jobs", "2", "--reduce", "0",
         "--out-dir", str(tmp_path), "--journal", str(journal),
         "--trace", str(trace), "--stats", "--status-interval", "0.05",
         "--quiet"],
        capture_output=True, text=True, env=env, timeout=240)
    assert result.returncode == 0, result.stderr
    assert "sweep telemetry" in result.stdout
    assert "stage latency" in result.stdout
    json.load(open(trace, encoding="utf-8"))  # parses as a trace document
    dashboard = subprocess.run(
        [sys.executable, os.path.join(REPO, "scripts", "sweep_status.py"),
         str(journal), "--check-complete"],
        capture_output=True, text=True, env=env, timeout=60)
    assert dashboard.returncode == 0, dashboard.stderr
    assert "100.0%" in dashboard.stdout

    missing = subprocess.run(
        [sys.executable, os.path.join(REPO, "scripts", "sweep_status.py"),
         str(tmp_path / "no_such.jsonl"), "--check-complete"],
        capture_output=True, text=True, env=env, timeout=60)
    assert missing.returncode == 1

"""Tests for the CHERI capability model (repro.isa.capability)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import BoundsViolation, PermissionViolation, TagViolation
from repro.isa.capability import (
    CAPABILITY_SIZE,
    Capability,
    NULL_CAPABILITY,
    Permission,
    capability_from_int,
    make_default_capability,
)


@pytest.fixture
def cap():
    return Capability(base=0x1000, length=0x100, offset=0x10,
                      permissions=Permission.all_data(), tag=True)


class TestBasics:
    def test_address_is_base_plus_offset(self, cap):
        assert cap.address == 0x1010
        assert cap.top == 0x1100

    def test_null_capability_is_untagged_zero(self):
        assert not NULL_CAPABILITY.tag
        assert NULL_CAPABILITY.base == 0 and NULL_CAPABILITY.length == 0

    def test_default_capability_spans_memory(self):
        cap = make_default_capability(1 << 20)
        assert cap.tag and cap.base == 0 and cap.length == 1 << 20
        assert cap.permissions & Permission.STORE

    def test_capability_from_int_never_tagged(self):
        value = capability_from_int(0xDEAD)
        assert not value.tag
        assert value.address == 0xDEAD

    def test_in_bounds(self, cap):
        assert cap.in_bounds(1)
        assert cap.in_bounds(0x100, address=0x1000)
        assert not cap.in_bounds(1, address=0x1100)
        assert not cap.in_bounds(0x200, address=0x1000)

    def test_capability_size_constant(self):
        assert CAPABILITY_SIZE == 32


class TestChecks:
    def test_check_access_ok(self, cap):
        assert cap.check_access(size=4, permission=Permission.LOAD) == 0x1010

    def test_untagged_access_traps(self, cap):
        with pytest.raises(TagViolation):
            cap.without_tag().check_access(size=1, permission=Permission.LOAD)

    def test_out_of_bounds_traps(self, cap):
        with pytest.raises(BoundsViolation):
            cap.check_access(size=1, permission=Permission.LOAD, address=0x1100)

    def test_missing_permission_traps(self, cap):
        read_only = cap.with_permissions_masked(Permission.read_only())
        with pytest.raises(PermissionViolation):
            read_only.check_access(size=1, permission=Permission.STORE)

    def test_sealed_access_traps(self, cap):
        sealable = cap.with_permissions_masked(Permission.all())
        sealed = Capability(base=cap.base, length=cap.length, offset=cap.offset,
                            permissions=Permission.all(), tag=True).sealed(7)
        with pytest.raises(PermissionViolation):
            sealed.check_access(size=1, permission=Permission.LOAD)
        assert sealable.unsealed().otype == -1


class TestMonotonicity:
    def test_offset_moves_freely(self, cap):
        moved = cap.with_offset(0x5000)
        assert moved.tag  # still valid: bounds checked only at dereference
        assert moved.address == 0x1000 + 0x5000

    def test_increment_offset(self, cap):
        assert cap.with_offset_increment(-0x10).offset == 0
        assert cap.with_offset_increment(8).address == cap.address + 8

    def test_shrinking_length_keeps_tag(self, cap):
        assert cap.with_length(0x10).tag

    def test_growing_length_clears_tag(self, cap):
        assert not cap.with_length(0x200).tag

    def test_base_increment_shrinks(self, cap):
        derived = cap.with_base_increment(0x20)
        assert derived.tag
        assert derived.base == 0x1020
        assert derived.length == 0xE0

    def test_negative_base_increment_clears_tag(self, cap):
        assert not cap.with_base_increment(-8).tag

    def test_bounds_outside_parent_clear_tag(self, cap):
        assert not cap.with_bounds(0x0F00, 0x10).tag
        assert not cap.with_bounds(0x10F0, 0x20).tag
        assert cap.with_bounds(0x1010, 0x20).tag

    def test_permission_masking_only_removes(self, cap):
        masked = cap.with_permissions_masked(Permission.LOAD)
        assert masked.permissions == Permission.LOAD
        remasked = masked.with_permissions_masked(Permission.all())
        assert remasked.permissions == Permission.LOAD

    def test_seal_requires_permission(self, cap):
        with pytest.raises(PermissionViolation):
            cap.sealed(3)  # all_data() lacks SEAL

    @given(st.integers(min_value=0, max_value=0x100), st.integers(min_value=0, max_value=0x200))
    def test_with_bounds_never_grows(self, base_offset, length):
        parent = Capability(base=0x1000, length=0x100, permissions=Permission.all(), tag=True)
        derived = parent.with_bounds(0x1000 + base_offset, length)
        if derived.tag:
            assert derived.base >= parent.base
            assert derived.top <= parent.top

    @given(st.integers(min_value=-(2**16), max_value=2**16))
    def test_base_increment_never_grows_rights(self, increment):
        parent = Capability(base=0x1000, length=0x100, permissions=Permission.all(), tag=True)
        derived = parent.with_base_increment(increment)
        if derived.tag:
            assert derived.base >= parent.base
            assert derived.top <= parent.top


class TestComparisonAndConversion:
    def test_compare_orders_untagged_first(self, cap):
        untagged = capability_from_int(cap.address)
        assert untagged.compare_key() < cap.compare_key()

    def test_equals_pointer(self, cap):
        assert cap.equals_pointer(cap.with_length(0x80))
        assert not cap.equals_pointer(cap.with_offset_increment(1))
        assert not cap.equals_pointer(cap.without_tag())

    def test_to_pointer_relative(self, cap):
        ddc = make_default_capability(1 << 20)
        assert cap.to_pointer(ddc) == cap.address

    def test_to_pointer_out_of_range_gives_zero(self, cap):
        small = Capability(base=0, length=0x10, permissions=Permission.all(), tag=True)
        assert cap.to_pointer(small) == 0

    def test_to_pointer_untagged_gives_zero(self, cap):
        ddc = make_default_capability(1 << 20)
        assert cap.without_tag().to_pointer(ddc) == 0

"""Static checker: crossval goldens, proven-facts export, totality.

Three layers of guarantees, mirroring ``docs/staticcheck.md``:

* **Crossval goldens** — the 64-program mini-sweep's static-vs-dynamic
  confusion matrix is pinned exactly (semantic-diff style, like the Table 5
  goldens in test_difftest.py).  Zero soundness violations — a dynamically
  trapping cell predicted safe — is an acceptance invariant, not a target.

* **Facts export** — proven facts (``repro.staticcheck.facts``) feed the
  interpreter's slot-type fixpoint and shadow fast path.  They must be
  observationally invisible: every model, every workload, bit-identical
  results with facts on and off.

* **Totality** — the predictor is a *static* analyzer: it must return a
  verdict from the taxonomy for every generated program and every model,
  never raise, across the full scenario-template space (5000 seeded
  programs, all 24 generator features, both pointer layouts via the
  seven-model sweep).
"""

from __future__ import annotations

import pytest

from repro.difftest.generator import generate_program
from repro.difftest.oracle import cell_record, classify_results
from repro.difftest.output import sweep_meta
from repro.difftest.runner import DifferentialRunner
from repro.interp.artifact import analyze_slots
from repro.interp.models import PAPER_MODEL_ORDER
from repro.minic.irgen import compile_unit
from repro.minic.optimizer import optimize_module
from repro.minic.parser import parse
from repro.staticcheck import PREDICTION_CATEGORIES
from repro.staticcheck.crossval import (
    format_crossval,
    is_soundness_violation,
    prediction_matches,
    summarize_crossval,
)
from repro.staticcheck.facts import annotate_module, compute_module_facts
from repro.staticcheck.predict import predict_source, predict_source_report

MINI_SWEEP_COUNT = 64

#: pinned (static prediction, dynamic oracle) -> count over the 64-program
#: mini-sweep, all seven models.  Every off-diagonal pair that appears is
#: itself meaningful: ``corrupt-possible``/``corrupt`` is the taxonomy's one
#: deliberate alias.  Re-pin only with a written justification for every
#: moved cell (a moved trap row means the *analyzer* changed its model of a
#: template, not just a count).
GOLDEN_CONFUSION = {
    ("agree", "agree"): 137,
    ("benign", "benign"): 1,
    ("corrupt-possible", "corrupt"): 3,
    ("trap:bounds", "trap:bounds"): 131,
    ("trap:permission", "trap:permission"): 12,
    ("trap:ptrdiff", "trap:ptrdiff"): 6,
    ("trap:tag", "trap:tag"): 107,
    ("trap:uaf", "trap:uaf"): 51,
}


@pytest.fixture(scope="module")
def crossval_records():
    runner = DifferentialRunner(analyze=False)
    records = []
    for index in range(MINI_SWEEP_COUNT):
        program = generate_program(0, index)
        result = runner.run_program(program)
        prediction = predict_source_report(program.source)
        records.append(cell_record(program, result,
                                   classify_results(result),
                                   static_prediction=prediction.verdicts))
    return records


@pytest.fixture(scope="module")
def crossval_summary(crossval_records):
    return summarize_crossval(crossval_records)


# ---------------------------------------------------------------------------
# Crossval goldens (mini-sweep)
# ---------------------------------------------------------------------------


def test_mini_sweep_confusion_matrix_is_golden(crossval_summary):
    actual = dict(crossval_summary.confusion)
    if actual != GOLDEN_CONFUSION:
        moved = {cell: (GOLDEN_CONFUSION.get(cell, 0), actual.get(cell, 0))
                 for cell in set(actual) | set(GOLDEN_CONFUSION)
                 if actual.get(cell, 0) != GOLDEN_CONFUSION.get(cell, 0)}
        pytest.fail(f"confusion cells moved (golden, actual): {moved}")


def test_mini_sweep_has_zero_soundness_violations(crossval_summary):
    # The acceptance invariant: no dynamically trapping cell may ever be
    # predicted definitely-safe.  An imprecise analyzer says "unknown" or a
    # conservative trap — never "agree" for a trap.
    assert crossval_summary.violations == []


def test_mini_sweep_per_model_agreement(crossval_summary):
    assert crossval_summary.per_model == {
        model: (MINI_SWEEP_COUNT, MINI_SWEEP_COUNT)
        for model in PAPER_MODEL_ORDER
    }


def test_mini_sweep_trap_precision_and_recall_are_total(crossval_summary):
    assert crossval_summary.trap_precision() == 1.0
    assert crossval_summary.trap_recall() == 1.0


def test_crossval_artifact_text_is_deterministic(crossval_records,
                                                 crossval_summary):
    # Predictions are a pure function of (seed, index, models, budget):
    # recomputing every static verdict from scratch must reproduce the
    # rendered artifact byte-for-byte (the CI smoke job asserts the same
    # property across two full process invocations).
    meta = sweep_meta(seed=0, count=MINI_SWEEP_COUNT,
                      models=PAPER_MODEL_ORDER, budget=200_000,
                      generator_version=2)
    first = format_crossval(crossval_summary, meta=meta)
    records = []
    for record in crossval_records:
        program = generate_program(0, record["index"])
        again = dict(record)
        again["static_prediction"] = predict_source(program.source)
        records.append(again)
    second = format_crossval(summarize_crossval(records), meta=meta)
    assert first == second


def test_match_and_violation_predicates():
    assert prediction_matches("agree", "agree")
    assert prediction_matches("corrupt-possible", "corrupt")
    assert not prediction_matches("corrupt-possible", "agree")
    assert not prediction_matches("agree", "trap:bounds")
    assert is_soundness_violation("agree", "trap:tag")
    assert is_soundness_violation("benign", "trap:bounds")
    assert not is_soundness_violation("unknown", "trap:bounds")
    assert not is_soundness_violation("trap:uaf", "trap:bounds")
    assert not is_soundness_violation("agree", "corrupt")


# ---------------------------------------------------------------------------
# Proven facts (repro.staticcheck.facts)
# ---------------------------------------------------------------------------

FACTS_SOURCE = """
int add(int a, int b) { return a + b; }
long fib(long n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int *first(int *p) { return p; }
int main(void) {
    int acc[4];
    int i = 0;
    while (i < 4) { acc[i] = add(i, i); i = i + 1; }
    long f = fib(5);
    int *p = first(&acc[0]);
    return (int)(f + *p) - 5;
}
"""


def _facts_for(source, *, pointer_bytes=8, pointer_align=8):
    unit, _ = parse(source)
    module = compile_unit(unit, pointer_bytes=pointer_bytes,
                          pointer_align=pointer_align)
    optimize_module(module)
    return module, compute_module_facts(module)


def test_facts_prove_scalar_returns_and_reject_pointers():
    _, facts = _facts_for(FACTS_SOURCE)
    assert facts["add"].noprov_return
    assert facts["add"].return_scalar == (4, True)
    # Mutual/self recursion survives the greatest fixpoint.
    assert facts["fib"].return_scalar == (8, True)
    # A pointer-returning function carries provenance by definition.
    assert not facts["first"].noprov_return
    assert facts["first"].return_scalar is None
    # main's per-call-site view names exactly the proven callees.
    callees = {name: (width, signed)
               for name, width, signed in facts["main"].noprov_callees}
    assert callees["add"] == (4, True)
    assert callees["fib"] == (8, True)
    assert "first" not in callees


def test_facts_unbox_proven_call_destinations():
    module, _ = _facts_for(FACTS_SOURCE)
    main = module.functions["main"]
    before = set(analyze_slots(main, module.context, True))
    annotate_module(module)
    after = set(analyze_slots(main, module.context, True))
    # Annotation can only widen the raw-slot set, and must widen it here:
    # add()'s destination becomes a raw int slot.
    assert before < after
    assert main.static_facts is not None


def test_facts_ignored_without_fast_noprov():
    module, _ = _facts_for(FACTS_SOURCE)
    main = module.functions["main"]
    annotate_module(module)
    with_hook = analyze_slots(main, module.context, False)
    # With a provenance-propagating model, CALL destinations stay boxed even
    # with facts attached (the proof cannot see the model's hook).
    call_dests = {instr.dest.index for instr in main.instrs
                  if instr.op.name == "CALL" and instr.dest is not None}
    assert not call_dests & set(with_hook)


def test_facts_find_safe_allocas_and_their_stores():
    source = """
    int helper(int *p) { return p[0]; }
    int main(void) {
        int safe[4];
        int leaked[4];
        int i = 0;
        while (i < 4) { safe[i] = i; leaked[i] = i; i = i + 1; }
        return safe[3] + helper(leaked) - 3;
    }
    """
    module, facts = _facts_for(source)
    main = module.functions["main"]
    safe_pcs = facts["main"].safe_allocas
    # Exactly the non-escaping scalar arrays qualify; ``leaked`` is passed
    # to a call and must not appear.
    names = {main.instrs[pc].attrs.get("name") for pc in safe_pcs}
    assert "safe" in names
    assert "leaked" not in names
    # Every safe store is a STORE instruction rooted at a safe alloca.
    for pc in facts["main"].safe_stores:
        assert main.instrs[pc].op.name == "STORE"


def test_facts_reject_address_taken_and_pointer_holding_allocas():
    source = """
    int main(void) {
        long x = 5;
        long *p = &x;
        return (int)*p - 5;
    }
    """
    module, facts = _facts_for(source)
    main = module.functions["main"]
    names = {main.instrs[pc].attrs.get("name")
             for pc in facts["main"].safe_allocas}
    # x's address escapes into p; p holds a pointer.  Neither is safe.
    assert "x" not in names
    assert "p" not in names


# ---------------------------------------------------------------------------
# Facts export: observational equivalence (the Layer-3 contract)
# ---------------------------------------------------------------------------


def _result_signature(result):
    return (result.exit_code, result.output,
            type(result.trap).__name__ if result.trap else None,
            str(result.trap) if result.trap else None,
            result.instructions, result.cycles, result.memory_accesses,
            result.allocations, result.allocated_bytes,
            tuple(result.checkpoints))


def _assert_program_equivalent(facts_off, facts_on, program_result_pairs):
    for label, source in program_result_pairs:
        off = facts_off.run_source(source)
        on = facts_on.run_source(source)
        assert off.compile_errors == on.compile_errors, label
        assert set(off.results) == set(on.results), label
        for model in off.results:
            assert _result_signature(off.results[model]) \
                == _result_signature(on.results[model]), (label, model)


#: stack reuse with stale shadow: ``dirty`` leaves pointer metadata on its
#: stack addresses; ``clean``'s safe alloca then reuses them, so the
#: activation probe must see the stale entries and take the clearing path.
STALE_SHADOW_SOURCE = """
long dirty(void) {
    long x = 5;
    long *slots[2];
    slots[0] = &x;
    slots[1] = &x;
    return *slots[0] + *slots[1];
}
long clean(void) {
    long buf[4];
    int i = 0;
    while (i < 4) { buf[i] = i; i = i + 1; }
    return buf[0] + buf[3];
}
int main(void) {
    long a = dirty();
    long b = clean();
    return (int)(a + b) - 13;
}
"""

#: clean-first variant: the probe finds a pristine range and the skip path
#: actually executes (flag == 1) before the frame is ever dirtied.
CLEAN_FIRST_SOURCE = """
long clean(void) {
    long buf[4];
    int i = 0;
    while (i < 4) { buf[i] = i * 2; i = i + 1; }
    return buf[1] + buf[3];
}
int main(void) {
    long total = clean() + clean();
    int *p = (int *)malloc(8);
    *p = 3;
    int got = *p;
    free(p);
    return (int)total + got - 19;
}
"""


def test_facts_are_observationally_invisible_on_fixed_programs():
    facts_off = DifferentialRunner(analyze=False)
    facts_on = DifferentialRunner(analyze=False, static_facts=True)
    _assert_program_equivalent(facts_off, facts_on, [
        ("stale_shadow", STALE_SHADOW_SOURCE),
        ("clean_first", CLEAN_FIRST_SOURCE),
    ])


def test_facts_are_observationally_invisible_on_mini_sweep():
    # The Layer-3 acceptance gate: all seven models, 64 generated programs,
    # every observable field bit-compared with facts on and off.
    facts_off = DifferentialRunner(analyze=False)
    facts_on = DifferentialRunner(analyze=False, static_facts=True)
    pairs = []
    for index in range(MINI_SWEEP_COUNT):
        program = generate_program(0, index)
        pairs.append((f"gen_0_{index}", program.source))
    _assert_program_equivalent(facts_off, facts_on, pairs)


# ---------------------------------------------------------------------------
# Totality: the analyzer never raises, over the full template space
# ---------------------------------------------------------------------------

TOTALITY_CHUNK = 1250
TOTALITY_CHUNKS = 4

#: every feature tag the generator can emit; chunk 0 alone covers all of
#: them (asserted below), so template coverage cannot silently rot.
ALL_GENERATOR_FEATURES = frozenset({
    "abi_assume", "arith", "container", "deconst", "gc_churn", "helper",
    "helper_oob", "int_arith", "int_roundtrip", "layout_probe", "loop",
    "mask", "memcpy_alias", "memcpy_self", "oob_read", "oob_write",
    "ptr_launder_copy", "qualified", "stack_escape", "string_ops",
    "subobject", "uaf", "union_pun", "wide",
})


@pytest.mark.parametrize("chunk", range(TOTALITY_CHUNKS))
def test_static_predictor_is_total_over_seeded_corpus(chunk):
    """5000 programs in 4 chunks: a verdict for every (program, model) cell,
    never an exception, walk step counts inside the budget mirror."""
    seen_features = set()
    for index in range(chunk * TOTALITY_CHUNK, (chunk + 1) * TOTALITY_CHUNK):
        program = generate_program(0, index)
        seen_features.update(program.features)
        report = predict_source_report(program.source)
        assert set(report.verdicts) == set(PAPER_MODEL_ORDER), program.name
        for model, verdict in report.verdicts.items():
            assert verdict in PREDICTION_CATEGORIES, \
                (program.name, model, verdict)
        for layout, steps in report.steps.items():
            assert 0 <= steps <= 200_000, (program.name, layout, steps)
    if chunk == 0:
        assert seen_features == ALL_GENERATOR_FEATURES

"""Golden-metrics regression test: the semantic guardrail for perf PRs.

The predecoded threaded-dispatch engine (and every future optimization of the
interpreter or memory stack) must be **observationally identical** to the
original opcode-chain interpreter: same instruction/cycle/memory-access
counts, same output bytes, same allocations, same checkpoints and same trap
kinds for every memory model in the paper's matrix.

The values below were recorded by running the pre-optimization seed
interpreter (commit 607eec0) over five small fixed workloads under all seven
models.  If an optimization changes any number here, it changed simulated
behaviour — fix the optimization, do not re-record the goldens without
understanding exactly why they moved.
"""

from __future__ import annotations

import pytest

from repro.core.api import run_under_model
from repro.interp.models import PAPER_MODEL_ORDER
from repro.workloads import dhrystone
from repro.workloads.olden import treeadd

#: pointer subtraction (the SUB idiom): traps under CHERIv2, runs elsewhere.
SUB_IDIOM = r"""
int main(void) {
    int arr[8];
    int i;
    for (i = 0; i < 8; i++) { arr[i] = i * 3; }
    int *p = &arr[6];
    int *q = &arr[1];
    long d = p - q;
    mini_output_int(d);
    mini_output_int(arr[(int)d]);
    return 0;
}
"""

#: memcpy of pointer-carrying structs: exercises the shadow-table move,
#: string intrinsics and memset (the zero-copy memory fast paths).
SHADOW_COPY = r"""
struct node { struct node *next; long value; };

int main(void) {
    struct node *a = (struct node *)malloc(sizeof(struct node));
    struct node *b = (struct node *)malloc(sizeof(struct node));
    struct node *copies = (struct node *)malloc(4 * sizeof(struct node));
    a->next = b;
    a->value = 41;
    b->next = 0;
    b->value = 1;
    memcpy(&copies[1], a, sizeof(struct node));
    memcpy(&copies[2], b, sizeof(struct node));
    long total = copies[1].value + copies[1].next->value;
    mini_output_int(total);
    char buffer[64];
    sprintf(buffer, "total=%d", total);
    int n = strlen(buffer);
    mini_output_int(n);
    printf("%s\n", buffer);
    memset(&copies[2], 0, sizeof(struct node));
    mini_output_int(copies[2].value);
    return total == 42 ? 0 : 1;
}
"""

#: pointer metadata at non-8-aligned addresses, created both by memcpy with an
#: unaligned delta and by a direct unaligned pointer store — the cases where
#: copy_memory's aligned-slot fast path must fall back to the full table scan.
UNALIGNED_SHADOW = r"""
int main(void) {
    char buffer[64];
    char copy[64];
    int x = 7;
    int *p = &x;
    memcpy(buffer + 4, (char *)&p, sizeof(int *));
    memcpy(copy, buffer, 64);
    int *q;
    memcpy((char *)&q, copy + 4, sizeof(int *));
    mini_output_int(*q);
    int **slot = (int **)(buffer + 12);
    *slot = &x;
    memcpy(copy, buffer, 64);
    int **out = (int **)(copy + 12);
    mini_output_int(**out);
    return 0;
}
"""

WORKLOADS = {
    "treeadd_d6": lambda: treeadd.source(depth=6, passes=1),
    "dhrystone_20": lambda: dhrystone.source(runs=20),
    "sub_idiom": lambda: SUB_IDIOM,
    "shadow_copy": lambda: SHADOW_COPY,
    "unaligned_shadow": lambda: UNALIGNED_SHADOW,
}

#: recorded from the pre-optimization interpreter; see module docstring.
GOLDEN = {
    'unaligned_shadow/cheri_v2': dict(instructions=53, cycles=262, memory_accesses=19, allocations=7,
           output='7\n7\n', exit_code=0, trap=None, checkpoints=[]),
    'unaligned_shadow/cheri_v3': dict(instructions=53, cycles=262, memory_accesses=19, allocations=7,
           output='7\n7\n', exit_code=0, trap=None, checkpoints=[]),
    'unaligned_shadow/hardbound': dict(instructions=53, cycles=226, memory_accesses=19, allocations=7,
           output='7\n7\n', exit_code=0, trap=None, checkpoints=[]),
    'unaligned_shadow/mpx': dict(instructions=53, cycles=226, memory_accesses=19, allocations=7,
           output='7\n7\n', exit_code=0, trap=None, checkpoints=[]),
    'unaligned_shadow/pdp11': dict(instructions=53, cycles=226, memory_accesses=19, allocations=7,
           output='7\n7\n', exit_code=0, trap=None, checkpoints=[]),
    'unaligned_shadow/relaxed': dict(instructions=53, cycles=226, memory_accesses=19, allocations=7,
           output='7\n7\n', exit_code=0, trap=None, checkpoints=[]),
    'unaligned_shadow/strict': dict(instructions=53, cycles=226, memory_accesses=19, allocations=7,
           output='7\n7\n', exit_code=0, trap=None, checkpoints=[]),
    'dhrystone_20/cheri_v2': dict(instructions=8806, cycles=15749, memory_accesses=5817, allocations=802,
           output='', exit_code=0, trap=None, checkpoints=[5, 7]),
    'dhrystone_20/cheri_v3': dict(instructions=8806, cycles=15749, memory_accesses=5817, allocations=802,
           output='', exit_code=0, trap=None, checkpoints=[5, 7]),
    'dhrystone_20/hardbound': dict(instructions=8806, cycles=15676, memory_accesses=5817, allocations=802,
           output='', exit_code=0, trap=None, checkpoints=[5, 7]),
    'dhrystone_20/mpx': dict(instructions=8806, cycles=15676, memory_accesses=5817, allocations=802,
           output='', exit_code=0, trap=None, checkpoints=[5, 7]),
    'dhrystone_20/pdp11': dict(instructions=8806, cycles=15676, memory_accesses=5817, allocations=802,
           output='', exit_code=0, trap=None, checkpoints=[5, 7]),
    'dhrystone_20/relaxed': dict(instructions=8806, cycles=15676, memory_accesses=5817, allocations=802,
           output='', exit_code=0, trap=None, checkpoints=[5, 7]),
    'dhrystone_20/strict': dict(instructions=8806, cycles=15676, memory_accesses=5817, allocations=802,
           output='', exit_code=0, trap=None, checkpoints=[5, 7]),
    'shadow_copy/cheri_v2': dict(instructions=92, cycles=505, memory_accesses=69, allocations=12,
           output='42\n8\ntotal=42\n0\n', exit_code=0, trap=None, checkpoints=[]),
    'shadow_copy/cheri_v3': dict(instructions=92, cycles=505, memory_accesses=69, allocations=12,
           output='42\n8\ntotal=42\n0\n', exit_code=0, trap=None, checkpoints=[]),
    'shadow_copy/hardbound': dict(instructions=92, cycles=397, memory_accesses=69, allocations=12,
           output='42\n8\ntotal=42\n0\n', exit_code=0, trap=None, checkpoints=[]),
    'shadow_copy/mpx': dict(instructions=92, cycles=397, memory_accesses=69, allocations=12,
           output='42\n8\ntotal=42\n0\n', exit_code=0, trap=None, checkpoints=[]),
    'shadow_copy/pdp11': dict(instructions=92, cycles=397, memory_accesses=69, allocations=12,
           output='42\n8\ntotal=42\n0\n', exit_code=0, trap=None, checkpoints=[]),
    'shadow_copy/relaxed': dict(instructions=92, cycles=397, memory_accesses=69, allocations=12,
           output='42\n8\ntotal=42\n0\n', exit_code=0, trap=None, checkpoints=[]),
    'shadow_copy/strict': dict(instructions=92, cycles=397, memory_accesses=69, allocations=12,
           output='42\n8\ntotal=42\n0\n', exit_code=0, trap=None, checkpoints=[]),
    'sub_idiom/cheri_v2': dict(instructions=148, cycles=265, memory_accesses=54, allocations=5,
           output='', exit_code=None, trap='MemorySafetyError', checkpoints=[]),
    'sub_idiom/cheri_v3': dict(instructions=159, cycles=320, memory_accesses=58, allocations=5,
           output='5\n15\n', exit_code=0, trap=None, checkpoints=[]),
    'sub_idiom/hardbound': dict(instructions=159, cycles=284, memory_accesses=58, allocations=5,
           output='5\n15\n', exit_code=0, trap=None, checkpoints=[]),
    'sub_idiom/mpx': dict(instructions=159, cycles=284, memory_accesses=58, allocations=5,
           output='5\n15\n', exit_code=0, trap=None, checkpoints=[]),
    'sub_idiom/pdp11': dict(instructions=159, cycles=284, memory_accesses=58, allocations=5,
           output='5\n15\n', exit_code=0, trap=None, checkpoints=[]),
    'sub_idiom/relaxed': dict(instructions=159, cycles=284, memory_accesses=58, allocations=5,
           output='5\n15\n', exit_code=0, trap=None, checkpoints=[]),
    'sub_idiom/strict': dict(instructions=159, cycles=284, memory_accesses=58, allocations=5,
           output='5\n15\n', exit_code=0, trap=None, checkpoints=[]),
    'treeadd_d6/cheri_v2': dict(instructions=3775, cycles=9332, memory_accesses=1471, allocations=323,
           output='', exit_code=0, trap=None, checkpoints=[63]),
    'treeadd_d6/cheri_v3': dict(instructions=3775, cycles=9332, memory_accesses=1471, allocations=323,
           output='', exit_code=0, trap=None, checkpoints=[63]),
    'treeadd_d6/hardbound': dict(instructions=3775, cycles=6920, memory_accesses=1471, allocations=323,
           output='', exit_code=0, trap=None, checkpoints=[63]),
    'treeadd_d6/mpx': dict(instructions=3775, cycles=6920, memory_accesses=1471, allocations=323,
           output='', exit_code=0, trap=None, checkpoints=[63]),
    'treeadd_d6/pdp11': dict(instructions=3775, cycles=6920, memory_accesses=1471, allocations=323,
           output='', exit_code=0, trap=None, checkpoints=[63]),
    'treeadd_d6/relaxed': dict(instructions=3775, cycles=6920, memory_accesses=1471, allocations=323,
           output='', exit_code=0, trap=None, checkpoints=[63]),
    'treeadd_d6/strict': dict(instructions=3775, cycles=6920, memory_accesses=1471, allocations=323,
           output='', exit_code=0, trap=None, checkpoints=[63]),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("model", PAPER_MODEL_ORDER)
def test_metrics_match_golden(workload: str, model: str) -> None:
    expected = GOLDEN[f"{workload}/{model}"]
    result = run_under_model(WORKLOADS[workload](), model)
    observed = dict(
        instructions=result.instructions,
        cycles=result.cycles,
        memory_accesses=result.memory_accesses,
        allocations=result.allocations,
        output=result.output.decode("latin-1"),
        exit_code=result.exit_code,
        trap=type(result.trap).__name__ if result.trap else None,
        checkpoints=result.checkpoints,
    )
    assert observed == expected


def test_golden_covers_full_matrix() -> None:
    assert set(GOLDEN) == {
        f"{workload}/{model}" for workload in WORKLOADS for model in PAPER_MODEL_ORDER
    }

"""Tests for the range-indexed shadow table (repro.interp.shadow).

The page-bucketed index must agree with a brute-force scan of the flat
entry dict under every mutation pattern the interpreter and GC produce:
stores at arbitrary (including non-8-aligned) addresses, deletions, range
clears, and memcpy-style moves.  A deterministic pseudo-random workout
doubles as the property test; a GC scenario pins that relocation moves
metadata stored at unaligned addresses correctly.
"""

from __future__ import annotations

import random

from repro.core.api import compile_for_model
from repro.gc import CapabilityGarbageCollector
from repro.interp import AbstractMachine, get_model
from repro.interp.shadow import ShadowTable


class TestShadowTableProperties:
    def _reference_range(self, mirror: dict, start: int, stop: int):
        return sorted((a, v) for a, v in mirror.items() if start <= a < stop)

    def test_random_ops_match_brute_force(self):
        rng = random.Random(0xC0FFEE)
        table = ShadowTable()
        mirror: dict[int, object] = {}
        # Addresses straddle page boundaries and include odd alignments.
        addresses = [0x1_0000_0000 + rng.randrange(0, 5 * 4096) for _ in range(400)]
        for step in range(3000):
            op = rng.randrange(6)
            if op <= 2:  # set (biased: the common operation)
                address = rng.choice(addresses) + rng.choice((0, 1, 3, 4, 7))
                value = ("v", step)
                table.set(address, value)
                mirror[address] = value
            elif op == 3 and mirror:  # discard / pop
                address = rng.choice(list(mirror))
                if rng.random() < 0.5:
                    table.discard(address)
                else:
                    assert table.pop(address) == mirror[address]
                del mirror[address]
            elif op == 4:  # range clear
                start = rng.choice(addresses)
                stop = start + rng.randrange(1, 3 * 4096)
                table.clear_range(start, stop)
                for address in [a for a in mirror if start <= a < stop]:
                    del mirror[address]
            else:  # memcpy-style move with arbitrary (unaligned) delta
                start = rng.choice(addresses)
                stop = start + rng.randrange(1, 2 * 4096)
                delta = rng.randrange(-8192, 8192)
                moved = table.entries_in_range(start, stop)
                for address, _ in moved:
                    table.pop(address)
                    del mirror[address]
                for address, value in moved:
                    table.set(address + delta, value)
                    mirror[address + delta] = value
            if step % 97 == 0:
                start = rng.choice(addresses) - rng.randrange(0, 4096)
                stop = start + rng.randrange(1, 4 * 4096)
                assert table.entries_in_range(start, stop) == \
                    self._reference_range(mirror, start, stop)
                assert table.check_index()
        assert dict(table.items()) == mirror
        assert table.check_index()
        assert len(table) == len(mirror)

    def test_range_queries_on_empty_and_degenerate_ranges(self):
        table = ShadowTable()
        assert table.entries_in_range(0, 1 << 40) == []
        table.set(0x1000, "a")
        assert table.entries_in_range(0x1000, 0x1000) == []
        assert table.entries_in_range(0x1001, 0x1000) == []
        assert table.entries_in_range(0x1000, 0x1001) == [(0x1000, "a")]
        del table[0x1000]
        assert 0x1000 not in table
        assert table.check_index()

    def test_dict_compat_surface(self):
        table = ShadowTable()
        table[0x10] = "x"
        table.update({0x18: "y", 0x4020: "z"})
        assert set(iter(table)) == {0x10, 0x18, 0x4020}
        assert sorted(table.keys()) == [0x10, 0x18, 0x4020]
        assert table.get(0x10) == "x" and table.get(0x999) is None
        assert sorted(table.values()) == ["x", "y", "z"]
        assert bool(table) and len(table) == 3
        assert table.addresses_in_range(0x0, 0x5000) == [0x10, 0x18, 0x4020]


class TestUnalignedRelocation:
    """GC relocation must move shadow entries at non-8-aligned addresses."""

    #: a node whose pointer field is copied to an unaligned offset inside a
    #: reachable buffer before the collection runs.
    SOURCE = r"""
    struct node { struct node *next; long value; };

    struct node *keep;
    char *buffer;

    int main(void) {
        struct node *a = (struct node *)malloc(sizeof(struct node));
        struct node *b = (struct node *)malloc(sizeof(struct node));
        a->next = b;
        a->value = 17;
        b->next = 0;
        b->value = 25;
        keep = a;
        buffer = (char *)malloc(64);
        /* plant a capability to `b` at an unaligned slot inside buffer */
        memcpy(buffer + 3, (char *)&b, sizeof(struct node *));
        return 0;
    }
    """

    def _machine(self) -> AbstractMachine:
        model = get_model("cheri_v3")
        module = compile_for_model(self.SOURCE, model)
        machine = AbstractMachine(module, model)
        result = machine.run()
        assert result.exit_code == 0
        return machine

    def test_unaligned_entry_keeps_target_alive_and_relocates(self):
        machine = self._machine()
        buffer_ptr = machine._load_scalar(machine.globals["buffer"],
                                          machine.module.globals["buffer"].ctype)
        unaligned = buffer_ptr.address + 3
        assert unaligned % 8 != 0
        assert unaligned in machine.shadow, "memcpy must move metadata to the unaligned slot"

        collector = CapabilityGarbageCollector(machine)
        stats = collector.collect(relocate=True)
        # a, b and the buffer all survive (b only via the unaligned entry and
        # a->next), and every survivor moved.
        assert stats.swept_objects == 0
        assert stats.relocated_objects == 3

        machine_shadow = machine.shadow
        assert machine_shadow.check_index()
        buffer_ptr = machine._load_scalar(machine.globals["buffer"],
                                          machine.module.globals["buffer"].ctype)
        moved_unaligned = buffer_ptr.address + 3
        assert moved_unaligned % 8 != 0
        entry = machine_shadow.get(moved_unaligned)
        assert entry is not None, "unaligned metadata must relocate with its object"
        # The entry still identifies the (relocated) node object b.
        assert entry.obj is not None and not entry.obj.freed
        value_address = entry.obj.base + machine.model.pointer_bytes
        assert machine.memory.read_int(value_address, 8) == 25

    def test_unaligned_entry_traced_as_root_field(self):
        machine = self._machine()
        # Drop the aligned references to b (a->next raw bytes + shadow slot):
        # reachability must then flow through the unaligned buffer entry.
        keep_ptr = machine._load_scalar(machine.globals["keep"],
                                        machine.module.globals["keep"].ctype)
        machine.shadow.discard(keep_ptr.address)  # a->next shadow slot
        machine.memory.write_int(keep_ptr.address, 8, 0)
        collector = CapabilityGarbageCollector(machine)
        stats = collector.collect()
        assert stats.swept_objects == 0, (
            "object b is reachable only through the unaligned shadow entry; "
            "the range-indexed trace must still find it"
        )

"""Edge-case and property tests for ``repro.common.bitops``.

``sign_extend(value, 0)`` used to raise a confusing ``ValueError`` from
``1 << -1``; zero-width values now have an explicit, documented meaning
(no bits -> 0, matching ``truncate``) and negative widths fail with a clear
message from both ``sign_extend`` and ``to_signed``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.bitops import (
    mask,
    sign_extend,
    to_signed,
    to_unsigned,
    truncate,
    zero_extend,
)


@pytest.mark.parametrize("value", [0, 1, -1, 0xDEADBEEF, -(1 << 80), 1 << 80])
def test_zero_width_is_zero(value):
    assert sign_extend(value, 0) == 0
    assert to_signed(value, 0) == 0
    assert truncate(value, 0) == 0
    assert zero_extend(value, 0) == 0
    assert to_unsigned(value, 0) == 0


@pytest.mark.parametrize("func", [sign_extend, to_signed])
@pytest.mark.parametrize("bits", [-1, -64])
def test_negative_width_message(func, bits):
    with pytest.raises(ValueError, match="bit width must be non-negative"):
        func(0, bits)


def test_width_one():
    assert sign_extend(0, 1) == 0
    assert sign_extend(1, 1) == -1
    assert sign_extend(2, 1) == 0  # only the low bit participates
    assert to_unsigned(-1, 1) == 1


def test_width_sixty_four():
    assert sign_extend(mask(64), 64) == -1
    assert sign_extend(1 << 63, 64) == -(1 << 63)
    assert sign_extend((1 << 63) - 1, 64) == (1 << 63) - 1
    assert to_unsigned(-1, 64) == mask(64)


@given(value=st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
def test_signed_unsigned_round_trip_64(value):
    assert to_signed(to_unsigned(value, 64), 64) == value


@given(value=st.integers(), bits=st.integers(min_value=1, max_value=128))
def test_sign_extend_idempotent_and_in_range(value, bits):
    extended = sign_extend(value, bits)
    # idempotent: extending an already-extended value changes nothing
    assert sign_extend(extended, bits) == extended
    # in range for the width
    assert -(1 << (bits - 1)) <= extended < (1 << (bits - 1))
    # round-trip: the unsigned view of the extension is the truncation
    assert to_unsigned(extended, bits) == truncate(value, bits)

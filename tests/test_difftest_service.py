"""Recovery-path oracle for the sharded difftest service.

The contract under test is *bit-identity*: whatever the service survives —
parallel sharding, killed workers, hung programs, injected interpreter
bugs, torn journals, resume boundaries — the merged records must rebuild
exactly the artifacts a serial in-process sweep produces.  Transient faults
therefore have golden-output tests; persistent faults have quarantine
tests; the journal has its own corruption-semantics tests.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.common.errors import JournalError, ServiceError
from repro.difftest import (
    DifferentialRunner,
    Fault,
    FaultPlan,
    SweepService,
    cell_record,
    classify_sweep,
    corpus_document,
    corpus_document_from_records,
    generate_corpus,
    parse_inject_spec,
    summarize,
    summarize_records,
)
from repro.difftest.faultinject import InjectedEngineError
from repro.difftest.journal import JournalWriter, load_journal, make_header
from repro.difftest.oracle import (
    feature_breakdown,
    feature_breakdown_from_records,
    format_matrix,
)

SEED = 0
COUNT = 10
META = {"seed": SEED, "count": COUNT, "baseline": "pdp11"}


@pytest.fixture(scope="module")
def reference():
    """Serial in-process sweep: the golden artifacts every service run must hit."""
    programs = generate_corpus(SEED, COUNT)
    runner = DifferentialRunner()
    results = runner.sweep(programs)
    classifications = classify_sweep(results)
    matrix = format_matrix(summarize(classifications),
                           feature_breakdown(programs, classifications), meta=META)
    doc = json.dumps(corpus_document(programs, results, classifications, meta=META),
                     indent=2, sort_keys=True)
    records = [cell_record(p, r, c)
               for p, r, c in zip(programs, results, classifications)]
    return {"matrix": matrix, "doc": doc, "records": records}


def _artifacts(records):
    matrix = format_matrix(summarize_records(records),
                           feature_breakdown_from_records(records), meta=META)
    doc = json.dumps(corpus_document_from_records(records, meta=META),
                     indent=2, sort_keys=True)
    return matrix, doc


def _run(tmp_path, name="journal.jsonl", resume=False, **kwargs):
    kwargs.setdefault("seed", SEED)
    kwargs.setdefault("count", COUNT)
    service = SweepService(journal_path=str(tmp_path / name), **kwargs)
    return service.run(resume=resume)


def _assert_bit_identical(records, reference):
    matrix, doc = _artifacts(records)
    assert matrix == reference["matrix"]
    assert doc == reference["doc"]


# ---------------------------------------------------------------------------
# Record path == legacy path (no subprocesses involved)
# ---------------------------------------------------------------------------


def test_record_rebuild_equals_legacy_document(reference):
    matrix, doc = _artifacts(reference["records"])
    assert matrix == reference["matrix"]
    assert doc == reference["doc"]


def test_records_survive_json_roundtrip(reference):
    round_tripped = [json.loads(json.dumps(record))
                     for record in reference["records"]]
    _assert_bit_identical(round_tripped, reference)


# ---------------------------------------------------------------------------
# Service identity: serial, parallel, fault-injected, resumed
# ---------------------------------------------------------------------------


def test_serial_service_matches_inprocess_sweep(tmp_path, reference):
    outcome = _run(tmp_path, jobs=1)
    assert outcome.stats["completed"] == COUNT
    _assert_bit_identical(outcome.records, reference)


def test_parallel_service_matches_inprocess_sweep(tmp_path, reference):
    outcome = _run(tmp_path, jobs=3)
    _assert_bit_identical(outcome.records, reference)


def test_injected_crash_hang_engine_journal_still_bit_identical(tmp_path, reference):
    """The acceptance-criteria core: one fault of every kind, outputs unmoved."""
    outcome = _run(tmp_path, jobs=2, timeout=3.0,
                   inject=parse_inject_spec("all", COUNT))
    stats = outcome.stats
    assert stats["respawns"] >= 2          # crash + hang each killed a worker
    assert stats["timeouts"] >= 1          # the hang hit the deadline
    assert stats["worker_errors"] >= 1     # the crash was seen as worker death
    assert stats["engine_fallbacks"] >= 1  # the armed block was demoted
    assert stats["journal_recoveries"] == 1
    assert stats["quarantined"] == 0       # transient faults never quarantine
    _assert_bit_identical(outcome.records, reference)


def test_resume_after_kill_and_torn_tail_is_bit_identical(tmp_path, reference):
    # Build the "killed at ~50%" journal: header + first half of the records,
    # then the torn bytes an append crash leaves behind.
    full = _run(tmp_path, name="full.jsonl", jobs=1)
    lines = (tmp_path / "full.jsonl").read_bytes().splitlines(keepends=True)
    partial = tmp_path / "partial.jsonl"
    partial.write_bytes(b"".join(lines[:1 + COUNT // 2]) + b'{"index": 5, "se')
    outcome = _run(tmp_path, name="partial.jsonl", jobs=2, resume=True)
    assert outcome.stats["resumed"] == COUNT // 2
    assert outcome.stats["journal_recoveries"] == 1
    assert outcome.stats["completed"] == COUNT - COUNT // 2
    _assert_bit_identical(outcome.records, reference)
    assert full.stats["completed"] == COUNT


def test_resume_reports_torn_tail_recovery_on_stderr(tmp_path, capfd, reference):
    full = _run(tmp_path, name="full.jsonl", jobs=1)
    data = (tmp_path / "full.jsonl").read_bytes()
    partial = tmp_path / "partial.jsonl"
    partial.write_bytes(data + b'{"index": 5, "se')
    capfd.readouterr()
    _run(tmp_path, name="partial.jsonl", jobs=1, resume=True)
    err = capfd.readouterr().err
    # The operator-facing crash diagnosis: which journal, where it was cut,
    # how much was dropped, and which program gets re-run.
    assert "recovered a torn tail" in err
    assert str(partial) in err
    assert f"byte offset {len(data)}" in err
    assert "dropping 16 corrupt trailing byte(s)" in err
    assert "program index 5 will be re-run" in err
    assert full.stats["completed"] == COUNT


def test_injected_cache_faults_with_artifact_cache_still_bit_identical(
        tmp_path, reference):
    cache_root = tmp_path / "artifact-cache"
    outcome = _run(
        tmp_path, jobs=2, artifact_cache=str(cache_root),
        inject=parse_inject_spec("cache-torn:1,cache-bitflip:4,"
                                 "cache-stale-lock:7", COUNT))
    assert outcome.stats["quarantined"] == 0
    _assert_bit_identical(outcome.records, reference)
    # The torn/bitflip faults really fired: their evidence is quarantined.
    quarantined = os.listdir(cache_root / "quarantine")
    assert any(name.endswith(".truncated") for name in quarantined)
    assert any(name.endswith(".checksum") for name in quarantined)
    # Warm pass over the (healed) cache: still bit-identical.
    warm = _run(tmp_path, name="warm.jsonl", jobs=2,
                artifact_cache=str(cache_root))
    _assert_bit_identical(warm.records, reference)


def test_host_shards_partition_and_rebuild_the_sweep(tmp_path, reference):
    by_index = {}
    for i in range(3):
        outcome = _run(tmp_path, name=f"shard{i}.jsonl", host_shard=(i, 3))
        indices = [record["index"] for record in outcome.records]
        assert indices == list(range(i, COUNT, 3))
        for record in outcome.records:
            by_index[record["index"]] = record
    _assert_bit_identical([by_index[i] for i in range(COUNT)], reference)


def test_resume_rejects_journal_from_different_sweep(tmp_path):
    _run(tmp_path, jobs=1)
    with pytest.raises(ServiceError, match="different sweep"):
        _run(tmp_path, resume=True, seed=SEED + 1)
    with pytest.raises(ServiceError, match="different sweep"):
        _run(tmp_path, resume=True, count=COUNT + 5)
    # host_shard is part of the sweep identity: resuming a whole-sweep
    # journal as one shard of it would silently skip indices.
    with pytest.raises(ServiceError, match="different sweep.*host_shard"):
        _run(tmp_path, resume=True, host_shard=(0, 2))
    with pytest.raises(ServiceError, match="does not exist"):
        _run(tmp_path, name="never-written.jsonl", resume=True)


# ---------------------------------------------------------------------------
# Quarantine: persistent faults become error:* cells, not aborts
# ---------------------------------------------------------------------------


def test_persistent_crash_quarantines_as_error_engine(tmp_path):
    plan = FaultPlan([Fault("crash", 1, always=True)])
    outcome = _run(tmp_path, count=4, jobs=2, retries=1, inject=plan)
    assert outcome.stats["quarantined"] == 1
    poisoned = outcome.records[1]
    assert set(poisoned["classification"].values()) == {"error:engine"}
    assert poisoned["metrics"] == {}
    # the other programs are untouched by the quarantine
    assert all(set(r["classification"].values()) != {"error:engine"}
               for i, r in enumerate(outcome.records) if i != 1)


def test_persistent_hang_quarantines_as_error_timeout(tmp_path):
    plan = FaultPlan([Fault("hang", 2, always=True)])
    outcome = _run(tmp_path, count=4, jobs=2, timeout=1.5, retries=0, inject=plan)
    assert outcome.stats["quarantined"] == 1
    assert outcome.stats["timeouts"] >= 1
    assert set(outcome.records[2]["classification"].values()) == {"error:timeout"}


def test_quarantined_records_flow_through_the_artifacts(tmp_path):
    plan = FaultPlan([Fault("crash", 0, always=True)])
    outcome = _run(tmp_path, count=4, jobs=1, retries=0, inject=plan)
    matrix, doc = _artifacts(outcome.records)
    assert "error:engine" in matrix
    document = json.loads(doc)
    assert document["summary"]["pdp11"]["error:engine"] == 1
    assert any(entry["index"] == 0 and "error:engine" in entry["kinds"]
               for entry in document["divergent"])


# ---------------------------------------------------------------------------
# Journal semantics
# ---------------------------------------------------------------------------


def _journal_header():
    return make_header(seed=1, count=2, models=["pdp11"], budget=100,
                       generator_version=2, analyze=True)


def test_journal_roundtrip_and_torn_tail_recovery(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with JournalWriter.create(path, _journal_header()) as writer:
        writer.append({"index": 0, "seed": 7})
        writer.append({"index": 1, "seed": 9})
    state = load_journal(path)
    assert state.header["seed"] == 1
    assert state.records == {0: {"index": 0, "seed": 7}, 1: {"index": 1, "seed": 9}}
    assert state.corrupt_tail == b""

    # a torn tail (no trailing newline) is recovered, not fatal — including
    # the nasty case where the torn bytes happen to be valid JSON
    with open(path, "ab") as handle:
        handle.write(b'{"index": 2, "seed": 11}')  # valid JSON, missing \n
    state = load_journal(path)
    assert sorted(state.records) == [0, 1]
    assert state.corrupt_tail == b'{"index": 2, "seed": 11}'
    from repro.difftest.journal import truncate_to
    truncate_to(path, state.valid_bytes)
    assert load_journal(path).corrupt_tail == b""


def test_journal_interior_corruption_is_fatal(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with JournalWriter.create(path, _journal_header()) as writer:
        writer.append({"index": 0})
        writer.write_raw(b"### not json ###\n")
        writer.append({"index": 1})
    with pytest.raises(JournalError, match="interior"):
        load_journal(path)


def test_journal_rejects_foreign_files(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text('{"kind": "something-else"}\n')
    with pytest.raises(JournalError, match="not a difftest journal"):
        load_journal(str(path))
    path.write_text("")
    with pytest.raises(JournalError):
        load_journal(str(path))


# ---------------------------------------------------------------------------
# Fault-plan parsing
# ---------------------------------------------------------------------------


def test_parse_inject_all_schedules_every_kind_at_distinct_indices():
    plan = parse_inject_spec("all", 200)
    kinds = {fault.kind for fault in plan.faults}
    assert kinds == {"crash", "hang", "engine", "journal",
                     "cache-torn", "cache-bitflip", "cache-stale-lock"}
    indices = [fault.index for fault in plan.faults]
    assert len(set(indices)) == 7
    assert all(0 <= index < 200 for index in indices)
    assert not any(fault.always for fault in plan.faults)


def test_parse_inject_spec_validation():
    with pytest.raises(ServiceError, match=">= 7 programs"):
        parse_inject_spec("all", 6)
    with pytest.raises(ServiceError, match="unknown fault kind"):
        parse_inject_spec("segfault", 10)
    with pytest.raises(ServiceError, match="outside the corpus"):
        parse_inject_spec("crash:99", 10)
    with pytest.raises(ServiceError, match="distinct programs"):
        parse_inject_spec("crash:3,hang:3", 10)
    with pytest.raises(ServiceError, match="modifier"):
        parse_inject_spec("crash:3:sometimes", 10)
    plan = parse_inject_spec("crash:3,hang:5:always", 10)
    assert plan.faults == (Fault("crash", 3), Fault("hang", 5, always=True))


def test_service_argument_validation(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(ServiceError, match="--jobs"):
        SweepService(seed=0, count=4, jobs=0, journal_path=path)
    with pytest.raises(ServiceError, match="--timeout"):
        SweepService(seed=0, count=4, timeout=0, journal_path=path)
    with pytest.raises(ServiceError, match="--retries"):
        SweepService(seed=0, count=4, retries=-1, journal_path=path)
    with pytest.raises(ServiceError, match="unknown models"):
        SweepService(seed=0, count=4, models=("pdp12",), journal_path=path)
    with pytest.raises(ServiceError, match="--host-shard"):
        SweepService(seed=0, count=4, host_shard=(3, 3), journal_path=path)
    with pytest.raises(ServiceError, match="--host-shard"):
        SweepService(seed=0, count=4, host_shard=(-1, 2), journal_path=path)


# ---------------------------------------------------------------------------
# Block-engine fallback (machine level, no subprocesses)
# ---------------------------------------------------------------------------


def test_engine_fallback_is_observationally_identical():
    """An armed superinstruction raises an internal error mid-run; the
    machine demotes it to single-step dispatch and every architectural
    observable — exit code, output, checkpoints, instructions, cycles —
    matches the unarmed run exactly."""
    from repro.interp.machine import AbstractMachine
    from repro.minic.irgen import compile_source

    source = (
        "int main(void) {\n"
        "    int i; int s = 0;\n"
        "    for (i = 0; i < 50; i++) { s += i * 2; }\n"
        "    mini_checkpoint(s);\n"
        "    printf(\"%d\\n\", s);\n"
        "    return 0;\n"
        "}\n"
    )

    def run(arm):
        module = compile_source(source)
        machine = AbstractMachine(module, "pdp11", shared_blocks=True)
        if arm:
            machine.arm_engine_fault(InjectedEngineError)
        return machine.run()

    clean, armed = run(False), run(True)
    assert armed.engine_fallbacks >= 1
    assert clean.engine_fallbacks == 0
    for attr in ("exit_code", "output", "checkpoints", "instructions",
                 "cycles", "memory_accesses", "allocations"):
        assert getattr(armed, attr) == getattr(clean, attr), attr
    assert armed.trap is None


def test_unhandled_internal_error_still_propagates():
    """The fallback only absorbs failures it can replay; a non-block error
    (nothing registered in block_fallbacks) must still surface."""
    from repro.interp.machine import AbstractMachine
    from repro.minic.irgen import compile_source

    module = compile_source("int main(void) { return 3; }\n")
    machine = AbstractMachine(module, "pdp11")
    code = machine._code_for(module.functions["main"])
    code.block_fallbacks.clear()
    if code.paired:
        handler, cost = code.paired[0]

        def boom(frame):
            raise ZeroDivisionError("not a trap")

        code.paired[0] = (boom, cost)
    with pytest.raises(ZeroDivisionError):
        machine._call(module.functions["main"], [], code)


# ---------------------------------------------------------------------------
# CLI round-trip
# ---------------------------------------------------------------------------


def test_cli_injected_parallel_run_matches_serial_run(tmp_path):
    import importlib.util

    script = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "scripts", "run_difftest.py")
    spec = importlib.util.spec_from_file_location("run_difftest_cli", script)
    cli = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(cli)

    serial_dir, faulty_dir = tmp_path / "serial", tmp_path / "faulty"
    base = ["--seed", "0", "--count", "8", "--reduce", "0", "--quiet",
            "--timeout", "5"]
    assert cli.main(base + ["--out-dir", str(serial_dir)]) == 0
    assert cli.main(base + ["--out-dir", str(faulty_dir), "--jobs", "2",
                            "--inject", "all"]) == 0
    for name in ("table5_differential_matrix.txt", "difftest_corpus.json"):
        assert ((serial_dir / name).read_bytes()
                == (faulty_dir / name).read_bytes()), name

    # validation surfaces as exit code 2, not a traceback
    assert cli.main(base + ["--out-dir", str(tmp_path / "x"),
                            "--inject", "bogus"]) == 2

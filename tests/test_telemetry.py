"""Unit tests for the telemetry primitives (repro.telemetry).

Coverage map: histogram ``le`` bucket semantics including every edge
(value equal to a bound, below the first bound, negative, overflow),
snapshot merging, the disabled no-op fast path (shared singletons — the
property the overhead guard relies on), trace event structure, the
``timed_span`` seam, atomic status writes, EMA/ETA math, status-writer
throttling, and the dashboard/summary renderers.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.telemetry import metrics
from repro.telemetry.metrics import (
    LATENCY_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Histogram,
    MetricsRegistry,
    format_summary,
    merge_snapshots,
)
from repro.telemetry.status import (
    STATUS_KIND,
    StatusWriter,
    ThroughputEMA,
    read_status,
    render_dashboard,
    render_status_line,
    write_status,
)
from repro.telemetry.trace import (
    NULL_TRACER,
    _NOOP_SPAN,
    TraceBuffer,
    TraceWriter,
    timed_span,
)


# ---------------------------------------------------------------------------
# histograms
# ---------------------------------------------------------------------------


def test_histogram_value_equal_to_bound_lands_in_that_bucket():
    hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
    hist.observe(2.0)  # le semantics: == bound -> that bound's bucket
    assert hist.counts == [0, 1, 0, 0]


def test_histogram_below_first_bound_and_negative():
    hist = Histogram("h", bounds=(1.0, 2.0))
    hist.observe(0.5)
    hist.observe(-3.0)
    assert hist.counts == [2, 0, 0]
    assert hist.minimum == -3.0


def test_histogram_overflow_bucket():
    hist = Histogram("h", bounds=(1.0, 2.0))
    hist.observe(2.0001)
    hist.observe(999.0)
    assert hist.counts == [0, 0, 2]
    assert hist.maximum == 999.0
    assert hist.quantile_bound(0.5) == float("inf")


def test_histogram_between_bounds():
    hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
    hist.observe(1.5)
    assert hist.counts == [0, 1, 0, 0]


def test_histogram_sum_count_min_max():
    hist = Histogram("h", bounds=(1.0,))
    for value in (0.25, 0.5, 3.0):
        hist.observe(value)
    assert hist.count == 3
    assert hist.total == pytest.approx(3.75)
    assert (hist.minimum, hist.maximum) == (0.25, 3.0)


def test_histogram_quantile_bound():
    hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
    assert hist.quantile_bound(0.5) is None  # empty
    for _ in range(9):
        hist.observe(0.5)
    hist.observe(3.0)
    assert hist.quantile_bound(0.5) == 1.0
    assert hist.quantile_bound(0.95) == 4.0


def test_histogram_requires_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=())


# ---------------------------------------------------------------------------
# registry: enabled/disabled and snapshots
# ---------------------------------------------------------------------------


def test_disabled_registry_hands_out_shared_null_singletons():
    registry = MetricsRegistry(enabled=False)
    assert registry.counter("a") is NULL_COUNTER
    assert registry.counter("b") is NULL_COUNTER
    assert registry.gauge("g") is NULL_GAUGE
    assert registry.histogram("h") is NULL_HISTOGRAM
    # mutators are no-ops, and nothing registers
    registry.counter("a").inc(5)
    registry.histogram("h").observe(1.0)
    assert registry.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}


def test_enabled_registry_snapshot_roundtrip():
    registry = MetricsRegistry(enabled=True)
    registry.counter("c").inc(3)
    registry.gauge("g").set(1.5)
    registry.histogram("h", bounds=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert snap["counters"] == {"c": 3}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["histograms"]["h"]["counts"] == [1, 0]
    json.dumps(snap)  # JSON-safe by contract


def test_registry_absorb_and_counter_values():
    registry = MetricsRegistry(enabled=True)
    registry.counter("cache.artifact.hits").inc(2)
    registry.absorb({"cache.artifact.hits": 3, "cache.disk.misses": 1,
                     "zero": 0})
    assert registry.counter_values("cache.") == {
        "cache.artifact.hits": 5, "cache.disk.misses": 1}
    assert "zero" not in registry.counter_values()


def test_module_configure_swaps_registry():
    registry = metrics.configure(True)
    assert metrics.enabled()
    metrics.counter("x").inc()
    assert metrics.snapshot()["counters"] == {"x": 1}
    metrics.configure(False)
    assert not metrics.enabled()
    assert metrics.counter("x") is NULL_COUNTER
    assert registry.counter("x").value == 1  # old registry untouched


def test_merge_snapshots_adds_counters_and_histograms():
    left = MetricsRegistry(enabled=True)
    right = MetricsRegistry(enabled=True)
    for registry, n in ((left, 1), (right, 2)):
        registry.counter("c").inc(n)
        registry.gauge("g").set(float(n))
        hist = registry.histogram("h", bounds=(1.0, 2.0))
        hist.observe(0.5 * n)
        hist.observe(5.0)
    merged = merge_snapshots(left.snapshot(), right.snapshot())
    assert merged["counters"] == {"c": 3}
    assert merged["gauges"] == {"g": 2.0}  # right wins
    hist = merged["histograms"]["h"]
    assert hist["counts"] == [2, 0, 2]
    assert hist["count"] == 4
    assert hist["sum"] == pytest.approx(0.5 + 1.0 + 10.0)
    assert (hist["min"], hist["max"]) == (0.5, 5.0)


def test_merge_snapshots_disjoint_and_empty():
    left = MetricsRegistry(enabled=True)
    left.counter("only_left").inc()
    merged = merge_snapshots(left.snapshot(), {})
    assert merged["counters"] == {"only_left": 1}
    merged = merge_snapshots({}, left.snapshot())
    assert merged["counters"] == {"only_left": 1}


def test_merge_snapshots_refuses_mismatched_bounds():
    left = MetricsRegistry(enabled=True)
    right = MetricsRegistry(enabled=True)
    left.histogram("h", bounds=(1.0,)).observe(0.5)
    right.histogram("h", bounds=(2.0,)).observe(0.5)
    with pytest.raises(ValueError, match="bucket bounds differ"):
        merge_snapshots(left.snapshot(), right.snapshot())


def test_merge_trailer_snapshots_folds_only_metrics_bearing_trailers():
    shard_a = MetricsRegistry(enabled=True)
    shard_a.counter("service.completed").inc(5)
    shard_b = MetricsRegistry(enabled=True)
    shard_b.counter("service.completed").inc(7)
    trailers = [{"metrics": shard_a.snapshot()},
                {"kind": "repro-difftest-stats"},  # swept without --stats
                {"metrics": shard_b.snapshot()}]
    combined, folded = metrics.merge_trailer_snapshots(trailers)
    assert folded == 2
    assert combined["counters"] == {"service.completed": 12}

    merge_host = MetricsRegistry(enabled=True)
    merge_host.counter("reduce.programs").inc(3)
    combined, folded = metrics.merge_trailer_snapshots(
        trailers, base=merge_host.snapshot())
    assert folded == 2
    assert combined["counters"] == {"reduce.programs": 3,
                                    "service.completed": 12}

    combined, folded = metrics.merge_trailer_snapshots([{}, {"metrics": {}}])
    assert (combined, folded) == ({}, 0)


def test_merge_snapshots_does_not_mutate_inputs():
    left = MetricsRegistry(enabled=True)
    left.histogram("h", bounds=(1.0,)).observe(0.5)
    left_snap = left.snapshot()
    before = json.dumps(left_snap, sort_keys=True)
    merge_snapshots(left_snap, left_snap)
    assert json.dumps(left_snap, sort_keys=True) == before


def test_format_summary_sections_and_determinism():
    registry = MetricsRegistry(enabled=True)
    registry.counter("cache.artifact.hits").inc(3)
    registry.counter("cache.artifact.misses").inc(1)
    registry.histogram("stage.parse").observe(0.004)
    registry.gauge("workers").set(4)
    snap = registry.snapshot()
    text = format_summary(snap)
    assert "cache.artifact: 3/4 hits (75.0%)" in text
    assert "stage.parse" in text and "n=1" in text
    assert "workers" in text
    assert text == format_summary(snap)  # deterministic


def test_latency_buckets_cover_fast_and_slow_ends():
    assert LATENCY_BUCKETS[0] <= 0.001
    assert LATENCY_BUCKETS[-1] >= 10.0
    assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


def test_trace_span_event_structure():
    buffer = TraceBuffer(pid=3, tid=0)
    with buffer.span("program", index=7):
        pass
    (event,) = buffer.events
    assert event["name"] == "program"
    assert event["ph"] == "X"
    assert event["pid"] == 3 and event["tid"] == 0
    assert isinstance(event["ts"], int) and isinstance(event["dur"], int)
    assert event["args"] == {"index": 7}


def test_trace_instant_and_drain():
    buffer = TraceBuffer(pid=0)
    buffer.instant("torn_tail_recovery", cat="recovery", dropped_bytes=12)
    events = buffer.drain()
    assert buffer.events == []
    (event,) = events
    assert event["ph"] == "i" and event["s"] == "t"
    assert event["args"]["dropped_bytes"] == 12


def test_timed_span_disabled_returns_shared_noop():
    # The overhead guard's contract: both off -> one shared object, reused.
    first = timed_span(NULL_TRACER, None, "stage.parse")
    second = timed_span(NULL_TRACER, None, "stage.lower")
    assert first is _NOOP_SPAN and second is _NOOP_SPAN


def test_timed_span_feeds_sink_and_buffer():
    buffer = TraceBuffer(pid=1)
    samples = []
    with timed_span(buffer, lambda n, s: samples.append((n, s)),
                    "stage.parse"):
        pass
    assert [e["name"] for e in buffer.events] == ["stage.parse"]
    ((name, seconds),) = samples
    assert name == "stage.parse" and seconds >= 0.0


def test_timed_span_sink_only_and_tracer_only():
    samples = []
    with timed_span(NULL_TRACER, lambda n, s: samples.append(n), "x"):
        pass
    assert samples == ["x"]
    buffer = TraceBuffer()
    with timed_span(buffer, None, "y"):
        pass
    assert [e["name"] for e in buffer.events] == ["y"]


def test_null_tracer_surface():
    assert NULL_TRACER.span("x") is _NOOP_SPAN
    NULL_TRACER.instant("x")
    assert NULL_TRACER.drain() == []


def test_trace_writer_document(tmp_path):
    path = str(tmp_path / "trace.json")
    writer = TraceWriter(path)
    buffer = TraceBuffer(pid=1)
    with buffer.span("program"):
        pass
    writer.add_events(buffer.drain())
    writer.set_process_name(1, "difftest-worker-0")
    assert writer.close() == path
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["displayTimeUnit"] == "ms"
    names = {event["name"] for event in document["traceEvents"]}
    assert names == {"program", "process_name"}
    meta = next(e for e in document["traceEvents"] if e["ph"] == "M")
    assert meta["args"]["name"] == "difftest-worker-0"
    assert not os.path.exists(path + ".tmp")


# ---------------------------------------------------------------------------
# status: atomic writes, EMA, throttling, dashboard
# ---------------------------------------------------------------------------


def test_write_status_atomic_and_readable(tmp_path):
    path = str(tmp_path / "s.status.json")
    write_status(path, {"completed": 1})
    write_status(path, {"completed": 2})
    assert read_status(path) == {"completed": 2}
    leftovers = [name for name in os.listdir(tmp_path)
                 if name.endswith(".tmp")]
    assert leftovers == []


def test_throughput_ema_windows_and_eta():
    now = [0.0]
    ema = ThroughputEMA(alpha=0.5, min_window=1.0, clock=lambda: now[0])
    ema.update(0)
    assert ema.rate is None
    now[0] = 0.5
    ema.update(5)          # inside the window: ignored
    assert ema.rate is None
    now[0] = 2.0
    ema.update(10)         # 10 programs / 2s
    assert ema.rate == pytest.approx(5.0)
    now[0] = 4.0
    ema.update(12)         # 1/s folded in with alpha 0.5
    assert ema.rate == pytest.approx(3.0)
    assert ema.eta_seconds(6) == pytest.approx(2.0)
    assert ema.eta_seconds(0) == 0.0
    assert ThroughputEMA().eta_seconds(5) is None


def test_status_writer_throttles_by_interval(tmp_path):
    now = [0.0]
    writer = StatusWriter(str(tmp_path / "s.json"), interval=2.0,
                          clock=lambda: now[0])
    calls = []

    def build():
        calls.append(now[0])
        return {"completed": len(calls)}

    assert writer.maybe_write(build)           # first write always lands
    assert not writer.maybe_write(build)       # throttled: build not called
    now[0] = 2.5
    assert writer.maybe_write(build)
    now[0] = 3.0
    assert writer.maybe_write(build, force=True)
    assert calls == [0.0, 2.5, 3.0]
    status = read_status(str(tmp_path / "s.json"))
    assert status["kind"] == STATUS_KIND and status["completed"] == 3


def _status(**overrides):
    base = {
        "kind": STATUS_KIND, "version": 1, "host_shard": None,
        "target": 10, "completed": 5, "throughput_programs_per_s": 2.5,
        "eta_seconds": 2.0, "done": False,
        "workers": {"0": {"alive": True, "current_index": 7,
                          "busy_seconds": 1.0, "respawns": 0,
                          "straggler": False}},
        "cache": {"artifact.hits": 8, "artifact.misses": 2},
        "recoveries": [],
    }
    base.update(overrides)
    return base


def test_render_status_line_contents():
    line = render_status_line(_status())
    assert "5/10" in line and "50.0%" in line
    assert "2.5 prog/s" in line and "lru 80%" in line
    assert "workers 1/1" in line


def test_render_dashboard_details_and_total():
    shard0 = _status(host_shard=[0, 2])
    shard1 = _status(
        host_shard=[1, 2], completed=10, done=True,
        workers={"0": {"alive": False, "current_index": None,
                       "respawns": 2, "straggler": False}},
        recoveries=[{"type": "torn_tail_recovery", "torn_index": 4,
                     "dropped_bytes": 12}])
    text = render_dashboard([shard0, shard1])
    assert "shard 0/2" in text and "shard 1/2" in text
    assert "worker 0: program 7" in text
    assert "worker 0: dead" in text and "respawns 2" in text
    assert "recovery: torn_tail_recovery" in text
    assert "total" in text and "15/20" in text


def test_render_dashboard_straggler_flag():
    status = _status()
    status["workers"]["0"]["straggler"] = True
    assert "STRAGGLER" in render_dashboard([status])

"""Tests for the memory models (Table 3 behaviour), the idiom detector and
the core API (compatibility matrix, porting analysis)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    CorpusGenerator,
    PACKAGE_PROFILES,
    PAPER_TABLE1,
    PAPER_TABLE1_TOTAL,
    analyze_source,
    format_table1,
    survey_corpus,
)
from repro.analysis.corpus import PackageProfile, generate_package
from repro.analysis.idioms import Idiom, TABLE_IDIOMS, paper_row
from repro.common.errors import BoundsViolation, MemorySafetyError
from repro.core import (
    IDIOM_TEST_CASES,
    MemorySafeMachine,
    PAPER_TABLE3,
    PortingAnalyzer,
    evaluate_matrix,
    format_table3,
    format_table4,
    run_under_model,
)
from repro.core.compat import Outcome, evaluate_case
from repro.core.idiom_cases import case_for
from repro.interp import MODEL_REGISTRY, get_model, model_names
from repro.interp.heap import ObjectAllocator
from repro.interp.values import IntVal, PERM_WRITE, Provenance, PtrVal


class TestModelRegistry:
    def test_all_paper_models_registered(self):
        assert set(model_names()) == set(PAPER_TABLE3)
        assert set(model_names()) <= set(MODEL_REGISTRY)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_model("itanium")

    def test_pointer_widths(self):
        assert get_model("pdp11").pointer_bytes == 8
        assert get_model("cheri_v3").pointer_bytes == 32
        assert get_model("cheri_v2").pointer_bytes == 32

    def test_configurable_capability_width(self):
        assert get_model("cheri_v3", capability_bytes=16).pointer_bytes == 16

    def test_describe_metadata(self):
        info = get_model("mpx").describe()
        assert info["name"] == "mpx" and info["narrow_field_bounds"] is True


class TestModelPrimitives:
    """Direct unit tests of the model operations behind the Table 3 rows."""

    def _object_pointer(self, model):
        allocator = ObjectAllocator()
        obj = allocator.allocate_heap(64)
        return allocator, model.make_pointer(obj)

    def test_cheri_v2_subtraction_rejected(self):
        model = get_model("cheri_v2")
        _, pointer = self._object_pointer(model)
        with pytest.raises(MemorySafetyError):
            model.ptr_diff(pointer, pointer, 1)

    def test_cheri_v2_backwards_motion_invalidates(self):
        model = get_model("cheri_v2")
        _, pointer = self._object_pointer(model)
        forward = model.ptr_offset(pointer, 16)
        assert forward.tag and forward.base == pointer.base + 16
        assert not model.ptr_offset(forward, -8).tag

    def test_cheri_v3_out_of_bounds_cursor_kept(self):
        model = get_model("cheri_v3")
        _, pointer = self._object_pointer(model)
        wandering = model.ptr_offset(pointer, 1024)
        assert wandering.tag
        with pytest.raises(BoundsViolation):
            model.check_access(wandering, 1, is_write=False)
        back = model.ptr_offset(wandering, -1024)
        assert model.check_access(back, 1, is_write=False) == pointer.address

    def test_mpx_narrows_field_bounds(self):
        model = get_model("mpx")
        _, pointer = self._object_pointer(model)
        field = model.field_address(pointer, 8, 4)
        assert field.base == pointer.base + 8 and field.length == 4

    def test_hardbound_keeps_object_bounds_on_fields(self):
        model = get_model("hardbound")
        _, pointer = self._object_pointer(model)
        field = model.field_address(pointer, 8, 4)
        assert field.base == pointer.base and field.length == 64

    def test_strict_rejects_modified_provenance(self):
        model = get_model("strict")
        allocator, pointer = self._object_pointer(model)
        laundered = IntVal(pointer.address + 8, bytes=8,
                           provenance=Provenance(pointer, modified=True))
        assert not model.int_to_ptr(laundered, allocator).tag

    def test_mpx_fails_open_on_modified_provenance(self):
        model = get_model("mpx")
        allocator, pointer = self._object_pointer(model)
        laundered = IntVal(pointer.address + 8, bytes=8,
                           provenance=Provenance(pointer, modified=True))
        reconstructed = model.int_to_ptr(laundered, allocator)
        assert reconstructed.tag and not reconstructed.checked

    def test_relaxed_reconstructs_by_object_lookup(self):
        model = get_model("relaxed")
        allocator, pointer = self._object_pointer(model)
        raw = IntVal(pointer.address + 4, bytes=8)
        rebuilt = model.int_to_ptr(raw, allocator)
        assert rebuilt.tag and rebuilt.obj is pointer.obj
        stale = IntVal(pointer.top + 4096, bytes=8)
        assert not model.int_to_ptr(stale, allocator).tag

    def test_cheri_v3_forging_from_plain_int_fails(self):
        model = get_model("cheri_v3")
        allocator, pointer = self._object_pointer(model)
        forged = IntVal(pointer.address, bytes=8)  # no provenance at all
        assert not model.int_to_ptr(forged, allocator).tag

    def test_const_enforcement_flagged_per_model(self):
        v2, v3 = get_model("cheri_v2"), get_model("cheri_v3")
        _, pointer = self._object_pointer(v2)
        assert not (v2.apply_const(pointer).perms & PERM_WRITE)
        assert v3.apply_const(pointer).perms & PERM_WRITE
        assert not (v3.apply_input_qualifier(pointer).perms & PERM_WRITE)


class TestIdiomCases:
    def test_eight_cases_cover_table_columns(self):
        assert [case.idiom for case in IDIOM_TEST_CASES] == list(TABLE_IDIOMS)

    def test_case_lookup(self):
        assert case_for(Idiom.MASK).name == "mask"
        with pytest.raises(KeyError):
            case_for(Idiom.LAST_WORD)

    def test_every_case_passes_on_pdp11_except_wide(self):
        for case in IDIOM_TEST_CASES:
            outcome = evaluate_case("pdp11", case.source)
            if case.idiom is Idiom.WIDE:
                assert outcome is not Outcome.SUPPORTED
            else:
                assert outcome is Outcome.SUPPORTED, case.name

    def test_matrix_matches_paper(self):
        matrix = evaluate_matrix()
        assert matrix.matches_paper(), matrix.differences()

    def test_format_table3_mentions_models(self):
        text = format_table3(evaluate_matrix(models=("cheri_v2", "cheri_v3")))
        assert "CHERIv2" in text and "CHERIv3" in text


class TestDetector:
    def test_detects_each_planted_idiom(self):
        snippets = {
            Idiom.DECONST: "int f(const char *p){ char *q = (char *)p; q[0]=1; return 0; }",
            Idiom.SUB: "long f(char *a, char *b){ return a - b; }",
            Idiom.INT: "long f(int *p){ intptr_t v = (intptr_t)p; return (long)v; }",
            Idiom.IA: "long f(char *p, long n){ return (long)((intptr_t)p + n * 8); }",
            Idiom.MASK: "long f(void *p){ return (long)((intptr_t)p & 7); }",
            Idiom.WIDE: "int f(void *p){ return (int)(intptr_t)p; }",
        }
        for idiom, source in snippets.items():
            result = analyze_source(source)
            assert result.count(idiom) >= 1, idiom

    def test_container_pattern(self):
        source = """
        struct rec { long key; struct inner { int x; } member; };
        long f(struct inner *m) {
            struct rec *r = (struct rec *)((char *)m - offsetof(struct rec, member));
            return r->key;
        }
        """
        result = analyze_source(source)
        assert result.count(Idiom.CONTAINER) == 1
        assert result.count(Idiom.SUB) == 0

    def test_invalid_intermediate_pattern(self):
        source = """
        int f(void) {
            int arr[4];
            int *p = arr + 9;
            int back = 7;
            p = p - back;
            return *p;
        }
        """
        assert analyze_source(source).count(Idiom.II) == 1

    def test_clean_code_has_no_findings(self):
        source = """
        struct point { int x; int y; };
        int area(struct point *p) { return p->x * p->y; }
        int sum(int *values, int count) {
            int total = 0;
            int i;
            for (i = 0; i < count; i++) total += values[i];
            return total;
        }
        """
        assert analyze_source(source).total == 0

    def test_optimized_away_roundtrip_not_counted(self):
        # The integer value is never stored nor modified: DCE removes the
        # round trip, which the paper's methodology also ignores.
        source = "int f(int *p){ (void)(intptr_t)p; return *p; }"
        result = analyze_source("int f(int *p){ return *p; }")
        assert result.total == 0

    def test_dual_use_ptrtoint_is_order_independent(self):
        # A ptrtoint result that is both stored unmodified AND arithmetically
        # modified is IA, never INT — and the verdict must not depend on
        # whether the store or the arithmetic appears first in the IR
        # (the historical misattribution risk: first-consumer pattern
        # matching classified whichever use it visited first).
        store_first = """
        long f(int *p) {
            intptr_t v = (intptr_t)p;
            long keep = (long)v;
            long moved = (long)(v + 8);
            return keep + moved;
        }
        """
        arith_first = """
        long f(int *p) {
            intptr_t v = (intptr_t)p;
            long moved = (long)(v + 8);
            long keep = (long)v;
            return keep + moved;
        }
        """
        first = analyze_source(store_first)
        second = analyze_source(arith_first)
        for result in (first, second):
            assert result.count(Idiom.INT) == 0
            assert result.count(Idiom.IA) >= 1
        assert first.counts() == second.counts()

    def test_arithmetic_through_stack_slot_is_flow_sensitive(self):
        # The arithmetic happens on a value loaded back from the local the
        # pointer was stored into: a one-hop consumer match sees only the
        # store (INT); the dataflow fixpoint follows the slot round trip
        # and classifies the modification (IA).
        source = """
        long f(char *p) {
            intptr_t v = (intptr_t)p;
            v = v + 16;
            return (long)v;
        }
        """
        result = analyze_source(source)
        assert result.count(Idiom.IA) >= 1
        assert result.count(Idiom.INT) == 0


class TestCorpus:
    def test_paper_table_totals_consistent(self):
        # The paper's own TOTAL row does not exactly equal its column sums for
        # every idiom (e.g. DECONST sums to 2454 vs. a stated 2491); the data
        # here is transcribed verbatim, so only require close agreement.
        for idiom in TABLE_IDIOMS:
            column_sum = sum(row.count(idiom) for row in PAPER_TABLE1)
            stated = PAPER_TABLE1_TOTAL.count(idiom)
            assert abs(column_sum - stated) <= max(5, 0.16 * stated), idiom
        assert sum(row.loc for row in PAPER_TABLE1) == PAPER_TABLE1_TOTAL.loc

    def test_profiles_cover_every_package(self):
        assert {p.name for p in PACKAGE_PROFILES} == {row.package for row in PAPER_TABLE1}

    def test_generation_is_deterministic(self):
        assert generate_package("zlib") == generate_package("zlib")

    def test_generated_counts_match_plan(self):
        profile = PackageProfile(name="perf", survey=paper_row("perf"),
                                 idiom_scale=0.02, loc_scale=0.002)
        source = CorpusGenerator(profile).generate()
        result = analyze_source(source)
        for idiom in TABLE_IDIOMS:
            assert result.count(idiom) == profile.scaled_count(idiom), idiom

    def test_survey_subset_and_formatting(self):
        rows = survey_corpus(idiom_scale=0.02, loc_scale=0.002, packages=("zlib", "pmc"))
        assert len(rows) == 2
        table = format_table1(rows)
        assert "zlib" in table and "TOTAL" in table

    def test_unknown_package_rejected(self):
        with pytest.raises(KeyError):
            generate_package("emacs")


class TestCoreApi:
    def test_machine_runs_and_reports(self):
        machine = MemorySafeMachine(model="cheri_v3")
        report = machine.report("int main(void){ char *p = (char*)malloc(4); p[0]=1; free(p); return 0; }")
        assert report.result.ok
        assert report.model_name == "cheri_v3"

    def test_run_under_model_shortcut(self):
        assert run_under_model("int main(void){return 0;}", "strict").ok

    def test_analysis_through_facade(self):
        machine = MemorySafeMachine(model="pdp11")
        result = machine.analyze("long f(char *a, char *b){ return a - b; }")
        assert result.count(Idiom.SUB) == 1

    def test_compile_is_model_specific(self):
        machine = MemorySafeMachine(model="cheri_v3")
        module = machine.compile("struct s { char *p; }; int main(void){ return sizeof(struct s); }")
        assert module.context.pointer_bytes == 32


class TestPorting:
    SOURCE = """
    struct packet { char *data; long length; };
    long span(char *start, char *end) { return end - start; }
    int read_byte(struct packet *p, long index) {
        char *cursor = p->data;
        return cursor[index];
    }
    """

    def test_annotation_counts_pointer_declarations(self):
        analyzer = PortingAnalyzer(program="demo", source=self.SOURCE)
        # struct field, two params of span, param p, local cursor -> >= 5
        assert analyzer.annotation_lines() >= 5

    def test_semantic_changes_only_for_v2(self):
        analyzer = PortingAnalyzer(program="demo", source=self.SOURCE)
        assert analyzer.semantic_lines("cheri_v2") == 1   # the pointer subtraction
        assert analyzer.semantic_lines("cheri_v3") == 0

    def test_report_and_formatting(self):
        analyzer = PortingAnalyzer(program="demo", source=self.SOURCE, hardening_lines_v3=2)
        reports = [analyzer.report("cheri_v2"), analyzer.report("cheri_v3")]
        assert reports[1].hardening_lines == 2
        text = format_table4(reports)
        assert "demo" in text and "cheri_v2" in text

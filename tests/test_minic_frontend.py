"""Tests for the mini-C front end: lexer, parser, type system, IR generation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import LexError, ParseError, TypeCheckError
from repro.minic import Lexer, Opcode, TokenKind, compile_source, optimize_module, parse
from repro.minic.ir import Const, Temp
from repro.minic.typesys import (
    ArrayType,
    IntType,
    PointerType,
    Qualifiers,
    StructField,
    StructType,
    TypeContext,
)


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = Lexer("int main __capability foo42").tokenize()
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.KEYWORD, TokenKind.IDENT]

    def test_number_bases_and_suffixes(self):
        tokens = Lexer("42 0x2A 052 7UL").tokenize()
        assert [t.value for t in tokens[:-1]] == [42, 42, 42, 7]

    def test_char_and_string_escapes(self):
        tokens = Lexer("'\\n' 'a' \"hi\\tthere\"").tokenize()
        assert tokens[0].value == ord("\n")
        assert tokens[1].value == ord("a")
        assert tokens[2].kind is TokenKind.STRING
        assert tokens[2].value == "hi\tthere"

    def test_comments_are_skipped(self):
        tokens = Lexer("a // line comment\n/* block */ b").tokenize()
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_preprocessor_lines_are_skipped(self):
        tokens = Lexer("#include <stdio.h>\nint x;").tokenize()
        assert tokens[0].text == "int"

    def test_multichar_punctuators(self):
        tokens = Lexer("a->b <<= >= && ...").tokenize()
        texts = [t.text for t in tokens[:-1]]
        assert "->" in texts and "<<=" in texts and ">=" in texts and "&&" in texts

    def test_unterminated_string_rejected(self):
        with pytest.raises(LexError):
            Lexer('"oops').tokenize()

    def test_unterminated_comment_rejected(self):
        with pytest.raises(LexError):
            Lexer("/* never closed").tokenize()

    def test_line_numbers_tracked(self):
        tokens = Lexer("a\nb\n  c").tokenize()
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]


class TestTypeSystem:
    def test_integer_sizes(self):
        ctx = TypeContext()
        assert ctx.char.size(ctx) == 1
        assert ctx.int_.size(ctx) == 4
        assert ctx.long.size(ctx) == 8

    def test_pointer_size_follows_abi(self):
        mips = TypeContext(pointer_bytes=8)
        cheri = TypeContext(pointer_bytes=32)
        pointer = mips.pointer_to(mips.int_)
        assert pointer.size(mips) == 8
        assert pointer.size(cheri) == 32

    def test_intptr_is_pointer_sized(self):
        cheri = TypeContext(pointer_bytes=32)
        assert cheri.typedefs["intptr_t"].size(cheri) == 32
        assert cheri.typedefs["int64_t"].size(cheri) == 8

    def test_struct_layout_and_padding(self):
        ctx = TypeContext()
        struct = StructType(tag="s")
        struct.define([StructField("a", ctx.char), StructField("b", ctx.long),
                       StructField("c", ctx.int_)])
        size, align = struct.layout(ctx)
        assert align == 8
        assert struct.field_named("b", ctx).offset == 8
        assert size == 24

    def test_struct_layout_depends_on_pointer_width(self):
        mips = TypeContext(pointer_bytes=8)
        cheri = TypeContext(pointer_bytes=32, pointer_align=32)
        struct = StructType(tag="node")
        struct.define([StructField("next", PointerType(pointee=IntType())),
                       StructField("value", IntType(bytes=8, name="long"))])
        assert struct.size(mips) == 16
        assert struct.size(cheri) == 64

    def test_union_layout(self):
        ctx = TypeContext()
        union = StructType(tag="u", is_union=True)
        union.define([StructField("a", ctx.long), StructField("b", ctx.char)])
        assert union.size(ctx) == 8
        assert union.field_named("b", ctx).offset == 0

    def test_incomplete_struct_rejected(self):
        ctx = TypeContext()
        with pytest.raises(TypeCheckError):
            StructType(tag="open").size(ctx)

    def test_missing_member_rejected(self):
        ctx = TypeContext()
        struct = StructType(tag="s")
        struct.define([StructField("a", ctx.int_)])
        with pytest.raises(TypeCheckError):
            struct.field_named("zz", ctx)

    def test_array_size(self):
        ctx = TypeContext()
        assert ArrayType(element=ctx.int_, count=10).size(ctx) == 40

    def test_common_type_promotion(self):
        ctx = TypeContext()
        assert ctx.common_type(ctx.char, ctx.int_).size(ctx) == 4
        assert ctx.common_type(ctx.long, ctx.int_).size(ctx) == 8

    def test_qualifier_copy(self):
        ctx = TypeContext()
        const_int = ctx.int_.with_qualifiers(Qualifiers.CONST)
        assert const_int.is_const and not ctx.int_.is_const


class TestParser:
    def test_function_and_globals(self):
        unit, _ = parse("int counter = 3; long area(int w, int h) { return w * h; }")
        assert unit.declarations[0].name == "counter"
        assert unit.functions[0].name == "area"
        assert len(unit.functions[0].params) == 2

    def test_struct_definition_registered(self):
        _, ctx = parse("struct point { int x; int y; }; struct point origin;")
        assert ctx.struct("point").complete

    def test_typedef(self):
        unit, ctx = parse("typedef unsigned long word_t; word_t w;")
        assert ctx.lookup_typedef("word_t") is not None
        assert unit.declarations[0].ctype.size(ctx) == 8

    def test_capability_qualifier_on_pointer(self):
        unit, _ = parse("int * __capability p;")
        assert unit.declarations[0].ctype.qualifiers & Qualifiers.CAPABILITY

    def test_input_qualifier_implies_capability(self):
        unit, _ = parse("void f(const char * __input data) { }")
        param_type = unit.functions[0].params[0].ctype
        assert param_type.qualifiers & Qualifiers.INPUT
        assert param_type.qualifiers & Qualifiers.CAPABILITY

    def test_control_flow_statements(self):
        unit, _ = parse("""
        int f(int n) {
            int total = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) continue;
                total += i;
                while (total > 100) { total -= 10; break; }
            }
            do { total++; } while (total < 0);
            return total;
        }
        """)
        assert unit.functions[0].body is not None

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse("int main(void) { return 0 }")

    def test_unbalanced_braces_rejected(self):
        with pytest.raises(ParseError):
            parse("int main(void) { if (1) { return 0; }")

    def test_offsetof_expression(self):
        unit, _ = parse("struct s { long a; int b; }; long f(void) { return offsetof(struct s, b); }")
        assert unit.functions[0].body is not None

    def test_prototype_without_body(self):
        unit, _ = parse("int helper(int x); int main(void) { return helper(1); }")
        assert unit.functions[0].body is None
        assert unit.functions[1].body is not None


class TestIrGeneration:
    def test_pointer_arithmetic_uses_gep(self):
        module = compile_source("int f(int *p, int i) { return p[i]; }")
        opcodes = [instr.op for _, instr in module.all_instructions()]
        assert Opcode.GEP in opcodes
        assert Opcode.PTRTOINT not in opcodes

    def test_member_access_uses_field(self):
        module = compile_source("struct s { int a; int b; }; int f(struct s *p) { return p->b; }")
        fields = [i for _, i in module.all_instructions() if i.op is Opcode.FIELD]
        assert fields and fields[0].attrs["field"] == "b"
        assert fields[0].attrs["offset"] == 4

    def test_pointer_int_roundtrip_is_explicit(self):
        module = compile_source(
            "long f(int *p) { long v = (long)p; int *q = (int *)v; return *q; }"
        )
        opcodes = [instr.op for _, instr in module.all_instructions()]
        assert Opcode.PTRTOINT in opcodes and Opcode.INTTOPTR in opcodes

    def test_deconst_cast_is_flagged(self):
        module = compile_source("char f(const char *p) { char *q = (char *)p; return q[0]; }")
        bitcasts = [i for _, i in module.all_instructions() if i.op is Opcode.BITCAST]
        assert any(i.attrs.get("deconst") for i in bitcasts)

    def test_pointer_difference_is_ptrdiff(self):
        module = compile_source("long f(char *a, char *b) { return a - b; }")
        opcodes = [instr.op for _, instr in module.all_instructions()]
        assert Opcode.PTRDIFF in opcodes

    def test_string_literal_becomes_global(self):
        module = compile_source('int f(void) { return (int)strlen("hello"); }')
        strings = [g for g in module.globals.values() if g.is_string]
        assert strings and strings[0].init_bytes == b"hello\x00"

    def test_global_initializer_generates_init_function(self):
        module = compile_source("int x = 5; int main(void) { return x; }")
        assert "__global_init" in module.functions

    def test_sizeof_is_constant(self):
        module = compile_source("long f(void) { return sizeof(long) + sizeof(int); }")
        module = optimize_module(module)
        consts = [a for _, i in module.all_instructions() for a in i.args if isinstance(a, Const)]
        assert any(c.value == 12 for c in consts)

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(TypeCheckError):
            compile_source("int f(void) { return mystery; }")

    def test_undeclared_function_rejected(self):
        with pytest.raises(TypeCheckError):
            compile_source("int f(void) { return mystery(); }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(TypeCheckError):
            compile_source("int f(void) { break; return 0; }")

    def test_dereference_of_non_pointer_rejected(self):
        with pytest.raises(TypeCheckError):
            compile_source("int f(int x) { return *x; }")

    def test_lines_recorded_on_instructions(self):
        module = compile_source("int f(void) {\n  int x = 1;\n  return x;\n}\n")
        lines = [i.line for _, i in module.all_instructions() if i.line]
        assert lines and max(lines) >= 3


class TestOptimizer:
    def test_constant_folding(self):
        module = compile_source("int f(void) { return 2 * 3 + 4; }")
        optimize_module(module)
        instrs = [i for _, i in module.all_instructions()]
        binops = [i for i in instrs if i.op is Opcode.BINOP]
        assert not binops
        returns = [i for i in instrs if i.op is Opcode.RET and i.args]
        assert any(isinstance(r.args[0], Const) and r.args[0].value == 10 for r in returns)

    def test_dead_code_removed(self):
        module = compile_source("int f(int x) { x + 1; x * 2; return x; }")
        before = sum(1 for _ in module.all_instructions())
        optimize_module(module)
        after = sum(1 for _ in module.all_instructions())
        assert after < before

    def test_side_effects_preserved(self):
        module = compile_source("int f(void) { putchar(65); return 0; }")
        optimize_module(module)
        calls = [i for _, i in module.all_instructions() if i.op is Opcode.CALL]
        assert calls

    def test_folding_respects_width(self):
        module = compile_source("int f(void) { return 2147483647 + 1; }")
        optimize_module(module)
        returns = [i for _, i in module.all_instructions() if i.op is Opcode.RET and i.args]
        folded = [r.args[0] for r in returns if isinstance(r.args[0], Const)]
        assert folded and folded[0].value == -2147483648


class TestExecutionSemantics:
    """End-to-end checks that compiled programs compute correct C semantics."""

    @staticmethod
    def _run(source: str) -> int:
        from repro.core import run_under_model

        result = run_under_model(source, "pdp11")
        assert not result.trapped, result.trap
        return result.exit_code

    def test_arithmetic_precedence(self):
        assert self._run("int main(void){ return 2 + 3 * 4 - 6 / 2; }") == 11

    def test_signed_division_truncates_toward_zero(self):
        assert self._run("int main(void){ return -7 / 2 == -3 && -7 % 2 == -1 ? 0 : 1; }") == 0

    def test_short_circuit_evaluation(self):
        source = """
        int counter = 0;
        int bump(void) { counter++; return 1; }
        int main(void) {
            int a = 0 && bump();
            int b = 1 || bump();
            return counter == 0 && a == 0 && b == 1 ? 0 : 1;
        }
        """
        assert self._run(source) == 0

    def test_recursion(self):
        assert self._run("""
        int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
        int main(void) { return fact(6) == 720 ? 0 : 1; }
        """) == 0

    def test_struct_copy_assignment(self):
        assert self._run("""
        struct pair { int a; int b; };
        int main(void) {
            struct pair x;
            struct pair y;
            x.a = 3; x.b = 4;
            y = x;
            x.a = 9;
            return y.a == 3 && y.b == 4 ? 0 : 1;
        }
        """) == 0

    def test_union_reinterpretation(self):
        assert self._run("""
        union bits { unsigned int word; unsigned char bytes[4]; };
        int main(void) {
            union bits u;
            u.word = 0x01020304;
            return u.bytes[0] == 4 && u.bytes[3] == 1 ? 0 : 1;
        }
        """) == 0

    def test_array_of_structs(self):
        assert self._run("""
        struct item { int key; int value; };
        int main(void) {
            struct item table[4];
            int i;
            for (i = 0; i < 4; i++) { table[i].key = i; table[i].value = i * i; }
            return table[3].value == 9 ? 0 : 1;
        }
        """) == 0

    def test_pointer_to_pointer(self):
        assert self._run("""
        void set(int **out, int *value) { *out = value; }
        int main(void) {
            int x = 77;
            int *p = 0;
            set(&p, &x);
            return *p == 77 ? 0 : 1;
        }
        """) == 0

    def test_global_array_initializer(self):
        assert self._run("""
        int table[4] = { 2, 4, 8, 16 };
        int main(void) { return table[0] + table[3] == 18 ? 0 : 1; }
        """) == 0

    def test_char_string_handling(self):
        assert self._run("""
        int main(void) {
            char buffer[16];
            strcpy(buffer, "abc");
            strcat(buffer, "def");
            return strcmp(buffer, "abcdef") == 0 && strlen(buffer) == 6 ? 0 : 1;
        }
        """) == 0

    def test_unsigned_comparison(self):
        assert self._run("""
        int main(void) {
            unsigned int big = 3000000000u;
            return big > 2000000000u ? 0 : 1;
        }
        """) == 0

    def test_shift_and_mask(self):
        assert self._run("int main(void){ return ((0xF0 >> 4) | (1 << 3)) == 0x0F + 8 - 7 ? 1 : 0; }") in (0, 1)

    @given(st.integers(min_value=-1000, max_value=1000), st.integers(min_value=-1000, max_value=1000))
    def test_addition_matches_python(self, a, b):
        source = f"int main(void) {{ return {a} + {b} == {a + b} ? 0 : 1; }}"
        assert self._run(source) == 0


class TestSharedAstLayouts:
    """compile_unit lowers one parsed AST under several pointer layouts; the
    struct-layout memo must restore each context's field offsets on reuse
    (offsets live on shared StructField objects — PR 5 regression)."""

    SOURCE = """
    struct S { char c; int *p; long tail; };
    int main(void) {
        struct S s;
        s.tail = 7;
        mini_checkpoint((int)s.tail);
        return 0;
    }
    """

    @staticmethod
    def _field_offsets(module):
        from repro.minic.ir import Opcode
        return [instr.attrs["offset"] for fn in module.functions.values()
                for instr in fn.instrs if instr.op is Opcode.FIELD]

    def test_context_reuse_after_other_layout_restores_offsets(self):
        from repro.minic.irgen import compile_unit
        from repro.minic.parser import parse
        from repro.minic.typesys import TypeContext

        unit, _ = parse(self.SOURCE)
        ctx8 = TypeContext(pointer_bytes=8)
        first = self._field_offsets(compile_unit(unit, context=ctx8))
        wide = self._field_offsets(compile_unit(unit, pointer_bytes=32, pointer_align=32))
        again = self._field_offsets(compile_unit(unit, context=ctx8))
        assert first == again
        assert wide != first  # the capability layout really is different

        from repro.interp.machine import AbstractMachine
        result = AbstractMachine(compile_unit(unit, context=ctx8), "pdp11").run()
        assert result.exit_code == 0 and result.checkpoints == [7]

"""Engine-equivalence tests for basic-block superinstruction compilation.

The block compiler batches instruction-count/cycle charges per charge group
and threads raw register values through generated locals.  These tests pin
that this is **observationally identical** to single-step dispatch — same
counters, output, traps — on every memory model, including the two places
where batching could plausibly diverge:

* a trap raised by a mid-block entry (a load/store/call/division charge
  point) must surface with the exact single-step counter values;
* instruction-budget exhaustion landing *inside* a block must trap at the
  same instruction, with the same counts, as the single-step loop (the
  generated handlers fall back to per-entry charge replay for this).
"""

from __future__ import annotations

import pytest

from repro.core.api import compile_for_model
from repro.interp import predecode
from repro.interp.machine import AbstractMachine
from repro.interp.models import PAPER_MODEL_ORDER, get_model

#: arithmetic + memory + calls + a trap under CHERIv2 (pointer subtraction).
WORKLOADS = {
    "scalar_loop": r"""
    int accumulate(int limit) {
        int total = 0;
        int i;
        for (i = 0; i < limit; i++) {
            total = total + (i ^ 3) * 2 - (i >> 1);
        }
        return total;
    }
    int main(void) {
        int buffer[16];
        int i;
        for (i = 0; i < 16; i++) { buffer[i] = accumulate(i + 4); }
        long sum = 0;
        for (i = 0; i < 16; i++) { sum = sum + buffer[i]; }
        mini_output_int(sum);
        return 0;
    }
    """,
    "sub_idiom": r"""
    int main(void) {
        int arr[8];
        int i;
        for (i = 0; i < 8; i++) { arr[i] = i * 3; }
        int *p = &arr[6];
        int *q = &arr[1];
        long d = p - q;
        mini_output_int(d);
        mini_output_int(arr[(int)d]);
        return 0;
    }
    """,
    "pointer_chase": r"""
    struct node { struct node *next; long value; };
    int main(void) {
        struct node nodes[10];
        int i;
        for (i = 0; i < 10; i++) {
            nodes[i].value = i * 7;
            nodes[i].next = i + 1 < 10 ? &nodes[i + 1] : 0;
        }
        long total = 0;
        struct node *cursor = &nodes[0];
        while (cursor) { total = total + cursor->value; cursor = cursor->next; }
        mini_output_int(total);
        return 0;
    }
    """,
}


def _run(source: str, model: str, *, blocks: bool, max_instructions: int = 10_000_000):
    predecode.SUPERINSTRUCTIONS = blocks
    try:
        module = compile_for_model(source, model)
        machine = AbstractMachine(module, get_model(model),
                                  max_instructions=max_instructions)
        result = machine.run()
    finally:
        predecode.SUPERINSTRUCTIONS = True
    return result, machine


def _observables(result) -> dict:
    return dict(
        instructions=result.instructions,
        cycles=result.cycles,
        memory_accesses=result.memory_accesses,
        allocations=result.allocations,
        output=bytes(result.output),
        exit_code=result.exit_code,
        trap_type=type(result.trap).__name__ if result.trap else None,
        trap_text=str(result.trap) if result.trap else None,
        checkpoints=result.checkpoints,
    )


@pytest.mark.parametrize("model", PAPER_MODEL_ORDER)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_blocks_match_single_step(workload: str, model: str) -> None:
    source = WORKLOADS[workload]
    stepped, _ = _run(source, model, blocks=False)
    blocked, machine = _run(source, model, blocks=True)
    assert _observables(blocked) == _observables(stepped)
    # non-vacuity: the block engine actually compiled superinstructions
    assert any(code.blocks for code in machine._code_cache.values()), (
        "no superinstructions were installed; the equivalence test is vacuous")


@pytest.mark.parametrize("model", PAPER_MODEL_ORDER)
def test_budget_exhaustion_inside_blocks_is_exact(model: str) -> None:
    """Budgets landing mid-block must trap at the single-step point."""
    source = WORKLOADS["scalar_loop"]
    full, _ = _run(source, model, blocks=False)
    total = full.instructions
    assert total > 100
    # Budgets spread across the run: most land inside some charge group.
    for budget in sorted({total // 7 * step + 3 for step in range(1, 7)}):
        stepped, _ = _run(source, model, blocks=False, max_instructions=budget)
        blocked, _ = _run(source, model, blocks=True, max_instructions=budget)
        assert _observables(blocked) == _observables(stepped), (
            f"budget {budget} diverged under model {model}")
        assert stepped.trap is not None  # the budget really was exhausted
        assert stepped.instructions == budget + 1


def test_frame_pool_releases_reset_frames() -> None:
    """Released frames are reset to the prototype with the alloca list kept."""
    source = WORKLOADS["scalar_loop"]
    result, machine = _run(source, "pdp11", blocks=True)
    assert result.exit_code == 0
    pooled = 0
    for code in machine._code_cache.values():
        for frame in code.pool:
            pooled += 1
            allocas = frame[1]
            reference = list(code.frame_proto)
            if allocas is not None:
                assert list(allocas) == [None] * code.nallocas
                reference[1] = allocas
            assert frame == reference
    assert pooled > 0  # completed calls actually released their frames

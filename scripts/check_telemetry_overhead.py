#!/usr/bin/env python3
"""CI guard: disabled-telemetry overhead on the sweep fast path.

The telemetry design promise is "free when off": every instrumentation
seam the sweep pipeline crosses per program collapses to a shared no-op
(``timed_span`` returns one shared context manager, disabled registries
hand out shared null instruments).  This script turns that promise into a
measured bound:

1. count the seam crossings one program actually makes (by running one
   program with a counting sink — the count is a property of the pipeline,
   not of the clock);
2. measure the per-crossing cost of the *disabled* seam with a tight
   timing loop;
3. time a real telemetry-off sweep to get the per-program baseline;
4. assert ``crossings x per_crossing_cost < threshold%`` of the
   per-program wall time.

The computed bound is deliberately used instead of differencing two noisy
end-to-end wall-clock runs: the disabled seam cost is nanoseconds, far
below run-to-run sweep variance, so an A/B comparison would be all noise.

Usage::

    PYTHONPATH=src python scripts/check_telemetry_overhead.py --count 40
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.difftest.generator import generate_program  # noqa: E402
from repro.difftest.oracle import classify_results  # noqa: E402
from repro.difftest.runner import DifferentialRunner  # noqa: E402
from repro.telemetry.trace import NULL_TRACER, _NOOP_SPAN, timed_span  # noqa: E402


def count_seam_crossings(seed: int, index: int) -> int:
    """Seam crossings (timed_span calls) one program makes in the pipeline.

    Counted with a live sink: every ``timed_span`` the pipeline opens
    reports exactly one sample, so the sample count equals the number of
    seams the disabled path would cross for the same program (plus the two
    worker-loop seams, generate and classify, added explicitly).
    """
    samples: list = []
    runner = DifferentialRunner(stage_sink=lambda name, seconds:
                                samples.append(name))
    program = generate_program(seed, index)
    result = runner.run_program(program)
    classify_results(result)
    return len(samples) + 2  # + stage.generate / stage.classify seams


def disabled_seam_cost(iterations: int = 200_000) -> float:
    """Seconds per disabled ``timed_span`` crossing (shared no-op path)."""
    # Sanity: the disabled call must return the shared no-op, otherwise we
    # would be measuring the wrong (enabled) path.
    span = timed_span(NULL_TRACER, None, "stage.check")
    if span is not _NOOP_SPAN:
        raise AssertionError("disabled timed_span did not return the shared "
                             "no-op span; the fast path regressed")
    begin = time.perf_counter()
    for _ in range(iterations):
        with timed_span(NULL_TRACER, None, "stage.check"):
            pass
    elapsed = time.perf_counter() - begin
    return elapsed / iterations


def baseline_seconds_per_program(seed: int, count: int) -> float:
    """Telemetry-off serial sweep wall time per program."""
    runner = DifferentialRunner()
    programs = [generate_program(seed, index) for index in range(count)]
    begin = time.perf_counter()
    for program in programs:
        result = runner.run_program(program)
        classify_results(result)
    return (time.perf_counter() - begin) / count


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--count", type=int, default=40,
                        help="programs in the baseline sweep (default 40)")
    parser.add_argument("--threshold", type=float, default=2.0,
                        metavar="PCT",
                        help="maximum disabled-telemetry overhead as a "
                             "percentage of per-program time (default 2)")
    args = parser.parse_args(argv)

    crossings = count_seam_crossings(args.seed, 0)
    per_crossing = disabled_seam_cost()
    per_program = baseline_seconds_per_program(args.seed, args.count)
    overhead = crossings * per_crossing
    percent = 100.0 * overhead / per_program

    print(f"seam crossings per program:  {crossings}")
    print(f"disabled cost per crossing:  {per_crossing * 1e9:.0f} ns")
    print(f"baseline per-program time:   {per_program * 1e3:.2f} ms "
          f"({args.count} programs)")
    print(f"disabled-telemetry overhead: {overhead * 1e6:.2f} us/program "
          f"({percent:.4f}%)")
    if percent >= args.threshold:
        print(f"check_telemetry_overhead: FAIL — {percent:.4f}% >= "
              f"{args.threshold}% threshold", file=sys.stderr)
        return 1
    print(f"check_telemetry_overhead: OK (< {args.threshold}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Differential-execution sweep: generated mini-C corpora across all models.

Generates a seeded corpus of pointer-idiom-heavy programs, executes every
program under every requested memory model on a fault-tolerant sharded
worker pool (``repro.difftest.service``), classifies each (program, model)
outcome against the PDP-11 baseline, and writes:

* ``results/table5_differential_matrix.txt`` — the Table-5 outcome matrix
  plus a per-feature breakdown;
* ``results/difftest_corpus.json`` — sweep metadata, per-model summaries and
  every interesting (divergent) seed, plus delta-debugged minimal
  reproducers for the first ``--reduce`` divergent programs.

Both outputs are bit-deterministic for a given (seed, count, models,
budget): worker count, injected faults, retries and ``--resume`` boundaries
never change a byte.  Every sweep is journaled (one JSON line per completed
program); an interrupted run continues with ``--resume``.

Usage::

    PYTHONPATH=src python scripts/run_difftest.py --seed 0 --count 1000
    PYTHONPATH=src python scripts/run_difftest.py --count 200 --jobs 4
    PYTHONPATH=src python scripts/run_difftest.py --count 200 --jobs 4 --resume
    PYTHONPATH=src python scripts/run_difftest.py --count 40 --jobs 2 --inject all
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.common.errors import ServiceError  # noqa: E402  (sys.path setup above)
from repro.difftest import (  # noqa: E402
    GENERATOR_VERSION,
    DifferentialRunner,
    SweepService,
    corpus_document_from_records,
    feature_breakdown_from_records,
    format_matrix,
    generate_program,
    parse_inject_spec,
    reduce_program,
    summarize_records,
)
from repro.difftest.oracle import BASELINE, is_divergent  # noqa: E402
from repro.difftest.runner import DEFAULT_BUDGET  # noqa: E402
from repro.interp.models import PAPER_MODEL_ORDER  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0, help="corpus seed (default 0)")
    parser.add_argument("--count", type=int, default=1000,
                        help="number of generated programs (default 1000)")
    parser.add_argument("--models", default=",".join(PAPER_MODEL_ORDER),
                        help="comma-separated model names (default: all seven)")
    parser.add_argument("--budget", type=int, default=None,
                        help="per-run instruction budget (default: runner default)")
    parser.add_argument("--reduce", type=int, default=3, metavar="N",
                        help="minimize the first N divergent programs into the "
                             "JSON corpus (default 3; 0 disables)")
    parser.add_argument("--out-dir", default=None,
                        help="output directory (default: <repo>/results)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker subprocesses (default 1)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-program wall-clock timeout in seconds (default 30)")
    parser.add_argument("--retries", type=int, default=2,
                        help="attempts beyond the first before a program is "
                             "quarantined (default 2)")
    parser.add_argument("--resume", action="store_true",
                        help="continue from this sweep's journal instead of "
                             "starting over")
    parser.add_argument("--inject", default=None, metavar="SPEC",
                        help="fault-injection spec: 'all' or a comma list of "
                             "crash/hang/engine/journal[:index[:always]] "
                             "(exercises the supervisor's recovery paths)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="journal file (default: <out-dir>/difftest_journal.jsonl)")
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    models = tuple(name.strip() for name in args.models.split(",") if name.strip())
    budget = args.budget if args.budget is not None else DEFAULT_BUDGET
    out_dir = pathlib.Path(args.out_dir) if args.out_dir else \
        pathlib.Path(__file__).resolve().parent.parent / "results"
    out_dir.mkdir(parents=True, exist_ok=True)
    journal_path = pathlib.Path(args.journal) if args.journal else \
        out_dir / "difftest_journal.jsonl"

    say = (lambda *a, **k: None) if args.quiet else print
    t0 = time.perf_counter()

    def progress(done, total):
        if not args.quiet and done % 100 == 0:
            say(f"  swept {done}/{total} programs "
                f"({time.perf_counter() - t0:.1f}s)")

    try:
        inject = parse_inject_spec(args.inject, args.count) if args.inject else None
        service = SweepService(
            seed=args.seed, count=args.count, models=models, budget=budget,
            jobs=args.jobs, timeout=args.timeout, retries=args.retries,
            inject=inject, journal_path=str(journal_path), progress=progress,
        )
        say(f"sweeping {args.count} programs (seed={args.seed}, generator "
            f"v{GENERATOR_VERSION}) across {args.jobs} worker(s)"
            + (", resuming" if args.resume else ""))
        outcome = service.run(resume=args.resume)
    except ServiceError as exc:
        print(f"run_difftest: {exc}", file=sys.stderr)
        return 2
    records, stats = outcome.records, outcome.stats
    sweep_seconds = time.perf_counter() - t0
    runs = args.count * len(models)
    say(f"swept {args.count} programs x {len(models)} models in "
        f"{sweep_seconds:.1f}s ({runs / max(sweep_seconds, 1e-9):.0f} "
        f"program-runs/s)")
    noteworthy = {key: value for key, value in stats.items()
                  if value and key not in ("completed",)}
    if noteworthy:
        say("  service stats: " + ", ".join(f"{k}={v}"
                                            for k, v in sorted(noteworthy.items())))

    meta = {
        "seed": args.seed,
        "count": args.count,
        "models": list(models),
        "budget": budget,
        "generator_version": GENERATOR_VERSION,
        "baseline": BASELINE,
    }
    matrix_text = format_matrix(summarize_records(records),
                                feature_breakdown_from_records(records), meta=meta)
    document = corpus_document_from_records(records, meta=meta)

    if args.reduce:
        # Reduction replays live in the supervisor: regenerate each divergent
        # program from its index (records carry no sources by design).
        reducer_runner = DifferentialRunner(models=models, budget=budget,
                                            analyze=False)
        reductions = []
        for record in records:
            if len(reductions) >= args.reduce:
                break
            classification = record["classification"]
            if not is_divergent(classification):
                continue
            model = next(m for m in models
                         if classification[m] not in ("agree", "agree-trap"))
            category = classification[model]
            if category in ("error:engine", "error:timeout"):
                continue  # quarantined cells have nothing to replay
            program = generate_program(args.seed, record["index"])
            try:
                reduction = reduce_program(program, model, category,
                                           runner=reducer_runner)
            except ValueError:
                continue
            say(f"  reduced program {program.index} "
                f"({model}={category}): {reduction.original_statements} -> "
                f"{reduction.reduced_statements} statements "
                f"in {reduction.tests_run} runs")
            reductions.append({
                "index": program.index,
                "model": model,
                "category": category,
                "statements_before": reduction.original_statements,
                "statements_after": reduction.reduced_statements,
                "source": reduction.source,
            })
        document["reductions"] = reductions

    matrix_path = out_dir / "table5_differential_matrix.txt"
    corpus_path = out_dir / "difftest_corpus.json"
    matrix_path.write_text(matrix_text + "\n", encoding="utf-8")
    corpus_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                           encoding="utf-8")
    say(f"wrote {matrix_path}")
    say(f"wrote {corpus_path}")
    say("")
    say(matrix_text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Differential-execution sweep: generated mini-C corpora across all models.

Generates a seeded corpus of pointer-idiom-heavy programs, executes every
program under every requested memory model, classifies each (program, model)
outcome against the PDP-11 baseline, and writes:

* ``results/table5_differential_matrix.txt`` — the Table-5 outcome matrix
  plus a per-feature breakdown;
* ``results/difftest_corpus.json`` — sweep metadata, per-model summaries and
  every interesting (divergent) seed, plus delta-debugged minimal
  reproducers for the first ``--reduce`` divergent programs.

Both outputs are bit-deterministic for a given (seed, count, models, budget):
run the sweep twice and the files are identical.

Usage::

    PYTHONPATH=src python scripts/run_difftest.py --seed 0 --count 1000
    PYTHONPATH=src python scripts/run_difftest.py --count 64 --models pdp11,cheri_v3
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.difftest import (  # noqa: E402  (sys.path setup above)
    GENERATOR_VERSION,
    DifferentialRunner,
    classify_sweep,
    corpus_document,
    format_matrix,
    generate_corpus,
    reduce_program,
    summarize,
)
from repro.difftest.oracle import BASELINE, feature_breakdown, is_divergent  # noqa: E402
from repro.interp.models import PAPER_MODEL_ORDER  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0, help="corpus seed (default 0)")
    parser.add_argument("--count", type=int, default=1000,
                        help="number of generated programs (default 1000)")
    parser.add_argument("--models", default=",".join(PAPER_MODEL_ORDER),
                        help="comma-separated model names (default: all seven)")
    parser.add_argument("--budget", type=int, default=None,
                        help="per-run instruction budget (default: runner default)")
    parser.add_argument("--reduce", type=int, default=3, metavar="N",
                        help="minimize the first N divergent programs into the "
                             "JSON corpus (default 3; 0 disables)")
    parser.add_argument("--out-dir", default=None,
                        help="output directory (default: <repo>/results)")
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    models = tuple(name.strip() for name in args.models.split(",") if name.strip())
    runner_kwargs = {"models": models}
    if args.budget is not None:
        runner_kwargs["budget"] = args.budget
    runner = DifferentialRunner(**runner_kwargs)

    say = (lambda *a, **k: None) if args.quiet else print
    t0 = time.perf_counter()
    programs = generate_corpus(args.seed, args.count)
    say(f"generated {len(programs)} programs (seed={args.seed}, "
        f"generator v{GENERATOR_VERSION})")

    def progress(i, program):
        if not args.quiet and (i + 1) % 100 == 0:
            say(f"  swept {i + 1}/{len(programs)} programs "
                f"({time.perf_counter() - t0:.1f}s)")

    results = runner.sweep(programs, progress=progress)
    sweep_seconds = time.perf_counter() - t0
    classifications = classify_sweep(results)
    summary = summarize(classifications)
    runs = len(programs) * len(models)
    say(f"swept {len(programs)} programs x {len(models)} models in "
        f"{sweep_seconds:.1f}s ({runs / sweep_seconds:.0f} program-runs/s)")

    meta = {
        "seed": args.seed,
        "count": args.count,
        "models": list(models),
        "budget": runner.budget,
        "generator_version": GENERATOR_VERSION,
        "baseline": BASELINE,
    }
    matrix_text = format_matrix(summary, feature_breakdown(programs, classifications),
                                meta=meta)
    document = corpus_document(programs, results, classifications, meta=meta)

    if args.reduce:
        reducer_runner = DifferentialRunner(models=models, budget=runner.budget,
                                            analyze=False)
        reductions = []
        for program, classification in zip(programs, classifications):
            if len(reductions) >= args.reduce:
                break
            if not is_divergent(classification):
                continue
            model = next(m for m in models
                         if classification[m] not in ("agree", "agree-trap"))
            category = classification[model]
            try:
                reduction = reduce_program(program, model, category,
                                           runner=reducer_runner)
            except ValueError:
                continue
            say(f"  reduced program {program.index} "
                f"({model}={category}): {reduction.original_statements} -> "
                f"{reduction.reduced_statements} statements "
                f"in {reduction.tests_run} runs")
            reductions.append({
                "index": program.index,
                "model": model,
                "category": category,
                "statements_before": reduction.original_statements,
                "statements_after": reduction.reduced_statements,
                "source": reduction.source,
            })
        document["reductions"] = reductions

    out_dir = pathlib.Path(args.out_dir) if args.out_dir else \
        pathlib.Path(__file__).resolve().parent.parent / "results"
    out_dir.mkdir(parents=True, exist_ok=True)
    matrix_path = out_dir / "table5_differential_matrix.txt"
    corpus_path = out_dir / "difftest_corpus.json"
    matrix_path.write_text(matrix_text + "\n", encoding="utf-8")
    corpus_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                           encoding="utf-8")
    say(f"wrote {matrix_path}")
    say(f"wrote {corpus_path}")
    say("")
    say(matrix_text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Differential-execution sweep: generated mini-C corpora across all models.

Generates a seeded corpus of pointer-idiom-heavy programs, executes every
program under every requested memory model on a fault-tolerant sharded
worker pool (``repro.difftest.service``), classifies each (program, model)
outcome against the PDP-11 baseline, and writes:

* ``results/table5_differential_matrix.txt`` — the Table-5 outcome matrix
  plus a per-feature breakdown;
* ``results/difftest_corpus.json`` — sweep metadata, per-model summaries and
  every interesting (divergent) seed, plus delta-debugged minimal
  reproducers for the first ``--reduce`` divergent programs.

Both outputs are bit-deterministic for a given (seed, count, models,
budget): worker count, injected faults, retries, ``--resume`` boundaries,
the persistent artifact cache (``--artifact-cache``, cold, warm or
corrupted) and multi-host sharding never change a byte.  Every sweep is
journaled (one JSON line per completed program); an interrupted run
continues with ``--resume``.

Multi-host: ``--host-shard i/N`` runs the deterministic interleaved slice
``index % N == i`` into a per-host journal; ``--merge`` (or
``scripts/merge_journals.py``) recombines the N journals into the same two
artifacts a single-host run writes, refusing on any gap, overlap or
conflict.  See ``docs/difftest.md``.

Usage::

    PYTHONPATH=src python scripts/run_difftest.py --seed 0 --count 1000
    PYTHONPATH=src python scripts/run_difftest.py --count 200 --jobs 4
    PYTHONPATH=src python scripts/run_difftest.py --count 200 --jobs 4 --resume
    PYTHONPATH=src python scripts/run_difftest.py --count 40 --jobs 2 --inject all
    PYTHONPATH=src python scripts/run_difftest.py --count 900 --host-shard 0/3
    PYTHONPATH=src python scripts/run_difftest.py --merge shard*.jsonl
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.common.errors import ServiceError  # noqa: E402  (sys.path setup above)
from repro.difftest import (  # noqa: E402
    GENERATOR_VERSION,
    SweepService,
    parse_inject_spec,
)
from repro.difftest import output as sweep_output  # noqa: E402
from repro.difftest.merge import merge_journals  # noqa: E402
from repro.difftest.runner import DEFAULT_BUDGET  # noqa: E402
from repro.interp.models import PAPER_MODEL_ORDER  # noqa: E402
from repro.telemetry import metrics  # noqa: E402


def _parse_host_shard(text: str) -> tuple[int, int]:
    shard, sep, nshards = text.partition("/")
    try:
        if not sep:
            raise ValueError
        return int(shard), int(nshards)
    except ValueError:
        raise ServiceError(f"--host-shard must look like i/N, got {text!r}") \
            from None


def _write_artifacts(records, out_dir, say, *, seed, count, models, budget,
                     reduce_limit, crossval=False,
                     generator_version=GENERATOR_VERSION) -> None:
    meta = sweep_output.sweep_meta(seed=seed, count=count, models=models,
                                   budget=budget,
                                   generator_version=generator_version)
    if crossval:
        # Static predictions are a pure function of (seed, index, models,
        # budget): recomputing them here keeps the journal format unchanged
        # and gives the serial, sharded and merged paths byte-identical
        # annotations.
        from repro.staticcheck import crossval as staticcheck_crossval
        staticcheck_crossval.annotate_records(
            records, seed=seed, models=models, budget=budget, say=say)
        summary = staticcheck_crossval.summarize_crossval(records)
        crossval_text = staticcheck_crossval.format_crossval(summary, meta=meta)
        crossval_path = (pathlib.Path(out_dir)
                         / staticcheck_crossval.CROSSVAL_NAME)
        crossval_path.parent.mkdir(parents=True, exist_ok=True)
        crossval_path.write_text(crossval_text + "\n", encoding="utf-8")
        say(f"wrote {crossval_path}")
        if summary.violations:
            print(f"run_difftest: static cross-validation found "
                  f"{len(summary.violations)} soundness violation(s); see "
                  f"{crossval_path}", file=sys.stderr)
    matrix_text, document = sweep_output.build_outputs(records, meta=meta)
    document["reductions"] = sweep_output.compute_reductions(
        records, seed=seed, models=models, budget=budget,
        limit=reduce_limit, say=say)
    if not reduce_limit:
        del document["reductions"]
    matrix_path, corpus_path = sweep_output.write_outputs(
        out_dir, matrix_text, document)
    say(f"wrote {matrix_path}")
    say(f"wrote {corpus_path}")
    say("")
    say(matrix_text)


def _merged_stats_summary(merged, say) -> None:
    """Aggregate per-shard stats trailers (+ this host's artifact stages)."""
    combined, folded = metrics.merge_trailer_snapshots(
        merged.stats_trailers, base=metrics.snapshot())
    if not folded:
        say("no stats trailers in the input journals "
            "(sweep the shards with --stats to record them)")
        return
    print()
    print(metrics.format_summary(
        combined,
        title=f"sweep telemetry ({folded} shard trailer(s) merged)"))


def _run_merge(args, say) -> int:
    if args.stats:
        # Enabled so the merge host's own artifact stages (stage.reduce,
        # stage.crossval) land in the combined report alongside the shards'.
        metrics.configure(True)
    merged = merge_journals(args.merge)
    for recovery in merged.recoveries:
        torn = recovery["torn_index"]
        print(f"run_difftest: recovered a torn tail in "
              f"{recovery['journal']} (in memory only; the file was not "
              f"modified): kept {recovery['valid_bytes']} bytes, dropped "
              f"{recovery['dropped_bytes']}; torn record was program index "
              f"{torn if torn is not None else 'unknown'}", file=sys.stderr)
    header = merged.header
    say(f"merged {len(merged.sources)} journal(s): {header['count']} "
        f"programs (seed={header['seed']}, generator "
        f"v{header['generator_version']})")
    reduce_limit = args.reduce
    if reduce_limit and header["generator_version"] != GENERATOR_VERSION:
        # Reductions regenerate programs from (seed, index) with *this*
        # build's generator; a version skew would replay different programs
        # than the sweep classified.
        raise ServiceError(
            f"cannot reduce: the journals were swept with generator "
            f"v{header['generator_version']} but this build has "
            f"v{GENERATOR_VERSION}; re-run with --reduce 0 to merge "
            f"without reductions")
    out_dir = pathlib.Path(args.out_dir) if args.out_dir else \
        pathlib.Path(__file__).resolve().parent.parent / "results"
    _write_artifacts(merged.records, out_dir, say,
                     seed=header["seed"], count=header["count"],
                     models=tuple(header["models"]), budget=header["budget"],
                     reduce_limit=reduce_limit, crossval=args.crossval,
                     generator_version=header["generator_version"])
    if args.stats:
        _merged_stats_summary(merged, say)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0, help="corpus seed (default 0)")
    parser.add_argument("--count", type=int, default=1000,
                        help="number of generated programs (default 1000)")
    parser.add_argument("--models", default=",".join(PAPER_MODEL_ORDER),
                        help="comma-separated model names (default: all seven)")
    parser.add_argument("--budget", type=int, default=None,
                        help="per-run instruction budget (default: runner default)")
    parser.add_argument("--reduce", type=int, default=3, metavar="N",
                        help="minimize the first N divergent programs into the "
                             "JSON corpus (default 3; 0 disables)")
    parser.add_argument("--crossval", action="store_true",
                        help="run the static predictor (repro.staticcheck) "
                             "over every program, annotate the corpus JSON "
                             "with per-cell static_prediction and write "
                             "results/staticcheck_crossval.txt")
    parser.add_argument("--static-facts", action="store_true",
                        help="annotate compiled modules with proven static "
                             "facts (repro.staticcheck) so the interpreter "
                             "unboxes proven call results and skips provably "
                             "dead shadow bookkeeping; observationally "
                             "identical, faster")
    parser.add_argument("--lockstep", choices=("pairs", "all"), default=None,
                        help="batched lockstep execution (repro.interp."
                             "lockstep): run each pointer layout's models as "
                             "2-lane groups ('pairs') or one N-lane group "
                             "('all') stepping the shared superinstruction "
                             "stream together; observationally identical to "
                             "the serial engine, faster")
    parser.add_argument("--out-dir", default=None,
                        help="output directory (default: <repo>/results)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker subprocesses (default 1)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-program wall-clock timeout in seconds (default 30)")
    parser.add_argument("--retries", type=int, default=2,
                        help="attempts beyond the first before a program is "
                             "quarantined (default 2)")
    parser.add_argument("--resume", action="store_true",
                        help="continue from this sweep's journal instead of "
                             "starting over")
    parser.add_argument("--inject", default=None, metavar="SPEC",
                        help="fault-injection spec: 'all' or a comma list of "
                             "crash/hang/engine/journal/cache-torn/"
                             "cache-bitflip/cache-stale-lock[:index[:always]] "
                             "(exercises the supervisor's recovery paths)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="journal file (default: <out-dir>/difftest_journal"
                             "[.shardIofN].jsonl)")
    parser.add_argument("--host-shard", default=None, metavar="I/N",
                        help="run only the interleaved slice index %% N == I "
                             "of the sweep into a per-host journal; merge the "
                             "N journals afterwards with --merge")
    parser.add_argument("--artifact-cache", default=None, metavar="DIR",
                        help="persistent predecode-artifact cache directory "
                             "(crash-safe, shared across runs and hosts; "
                             "default: $REPRO_ARTIFACT_CACHE if set)")
    parser.add_argument("--merge", nargs="+", default=None, metavar="JOURNAL",
                        help="merge completed per-host shard journals into "
                             "the sweep artifacts instead of running programs")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON of the sweep "
                             "(supervisor + per-worker tracks; load at "
                             "https://ui.perfetto.dev); never changes the "
                             "sweep artifacts")
    parser.add_argument("--stats", action="store_true",
                        help="print an end-of-sweep telemetry summary (stage "
                             "latency histograms, cache effectiveness) and "
                             "append it to the journal as a stats trailer so "
                             "--resume and --merge can aggregate it")
    parser.add_argument("--status-interval", type=float, default=2.0,
                        metavar="SEC",
                        help="rewrite <journal>.status.json atomically every "
                             "SEC seconds while sweeping (default 2; 0 "
                             "disables; render with scripts/sweep_status.py)")
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    say = (lambda *a, **k: None) if args.quiet else print

    try:
        if args.merge is not None:
            for flag, name in ((args.resume, "--resume"),
                               (args.inject, "--inject"),
                               (args.host_shard, "--host-shard"),
                               (args.journal, "--journal"),
                               (args.trace, "--trace")):
                if flag:
                    raise ServiceError(f"--merge cannot be combined with {name}")
            return _run_merge(args, say)

        models = tuple(name.strip() for name in args.models.split(",")
                       if name.strip())
        budget = args.budget if args.budget is not None else DEFAULT_BUDGET
        host_shard = (_parse_host_shard(args.host_shard)
                      if args.host_shard else None)
        artifact_cache = args.artifact_cache or \
            os.environ.get("REPRO_ARTIFACT_CACHE") or None
        out_dir = pathlib.Path(args.out_dir) if args.out_dir else \
            pathlib.Path(__file__).resolve().parent.parent / "results"
        out_dir.mkdir(parents=True, exist_ok=True)
        if args.journal:
            journal_path = pathlib.Path(args.journal)
        elif host_shard:
            journal_path = out_dir / (f"difftest_journal.shard{host_shard[0]}"
                                      f"of{host_shard[1]}.jsonl")
        else:
            journal_path = out_dir / "difftest_journal.jsonl"

        t0 = time.perf_counter()

        def progress(done, total):
            if not args.quiet and done % 100 == 0:
                say(f"  swept {done}/{total} programs "
                    f"({time.perf_counter() - t0:.1f}s)")

        inject = parse_inject_spec(args.inject, args.count) if args.inject else None
        service = SweepService(
            seed=args.seed, count=args.count, models=models, budget=budget,
            jobs=args.jobs, timeout=args.timeout, retries=args.retries,
            inject=inject, journal_path=str(journal_path),
            host_shard=host_shard, artifact_cache=artifact_cache,
            static_facts=args.static_facts,
            lockstep=args.lockstep,
            progress=progress,
            trace_path=args.trace, collect_stats=args.stats,
            status_interval=args.status_interval,
        )
        shard_size = len(service.shard_indices())
        say(f"sweeping {shard_size} of {args.count} programs "
            f"(seed={args.seed}, generator v{GENERATOR_VERSION}) across "
            f"{args.jobs} worker(s)"
            + (f", host shard {host_shard[0]}/{host_shard[1]}"
               if host_shard else "")
            + (f", artifact cache {artifact_cache}" if artifact_cache else "")
            + (f", lockstep {args.lockstep}" if args.lockstep else "")
            + (", resuming" if args.resume else ""))
        outcome = service.run(resume=args.resume)
    except ServiceError as exc:
        print(f"run_difftest: {exc}", file=sys.stderr)
        return 2
    records, stats = outcome.records, outcome.stats
    sweep_seconds = time.perf_counter() - t0
    runs = len(records) * len(models)
    say(f"swept {len(records)} programs x {len(models)} models in "
        f"{sweep_seconds:.1f}s ({runs / max(sweep_seconds, 1e-9):.0f} "
        f"program-runs/s)")
    noteworthy = {key: value for key, value in stats.items()
                  if value and key not in ("completed",)}
    if noteworthy:
        say("  service stats: " + ", ".join(f"{k}={v}"
                                            for k, v in sorted(noteworthy.items())))

    if args.trace:
        say(f"wrote trace {args.trace} (load at https://ui.perfetto.dev)")

    if host_shard:
        # A shard alone cannot produce the sweep artifacts (they summarize
        # all indices); its deliverable is the completed journal.
        say(f"shard journal complete: {journal_path}")
        say(f"merge all {host_shard[1]} shard journals with: "
            f"run_difftest.py --merge <journals...>")
        if args.stats:
            print()
            print(metrics.format_summary(metrics.snapshot()))
        return 0

    _write_artifacts(records, out_dir, say, seed=args.seed, count=args.count,
                     models=models, budget=budget, reduce_limit=args.reduce,
                     crossval=args.crossval)
    if args.stats:
        # A fresh snapshot, not outcome.telemetry: the registry has since
        # accumulated the artifact-build stages (stage.reduce,
        # stage.crossval) on top of the sweep's own metrics.
        print()
        print(metrics.format_summary(metrics.snapshot()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Merge per-host difftest shard journals into the sweep artifacts.

Each host of a multi-host sweep runs::

    PYTHONPATH=src python scripts/run_difftest.py --count 900 --host-shard 0/3
    PYTHONPATH=src python scripts/run_difftest.py --count 900 --host-shard 1/3
    PYTHONPATH=src python scripts/run_difftest.py --count 900 --host-shard 2/3

and this script recombines the three journals::

    PYTHONPATH=src python scripts/merge_journals.py \\
        results/difftest_journal.shard*.jsonl --out-dir results

The merged ``table5_differential_matrix.txt`` and ``difftest_corpus.json``
are bit-identical to a single-host serial run of the same sweep.  The merge
is corruption-aware and refuses (exit status 2, diagnostic on stderr) on a
header mismatch, an index gap (an incomplete shard — finish it with
``run_difftest --resume``), an overlap, or two journals that disagree on a
cell record; a torn final line in an input journal is recovered in memory
(the input file is never modified) and reported on stderr.  See
``docs/difftest.md`` for the full runbook.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.common.errors import ServiceError  # noqa: E402  (sys.path setup above)
from repro.difftest import GENERATOR_VERSION  # noqa: E402
from repro.difftest import output as sweep_output  # noqa: E402
from repro.difftest.merge import merge_journals  # noqa: E402
from repro.telemetry import metrics  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("journals", nargs="+",
                        help="per-host shard journal files (all shards of one sweep)")
    parser.add_argument("--out-dir", default=None,
                        help="output directory (default: <repo>/results)")
    parser.add_argument("--reduce", type=int, default=3, metavar="N",
                        help="minimize the first N divergent programs into the "
                             "JSON corpus (default 3; 0 disables)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    parser.add_argument("--stats", action="store_true",
                        help="aggregate the shards' journal stats trailers "
                             "(recorded by run_difftest --stats) into one "
                             "fleet-wide telemetry summary")
    args = parser.parse_args(argv)
    say = (lambda *a, **k: None) if args.quiet else print

    try:
        merged = merge_journals(args.journals)
    except ServiceError as exc:
        print(f"merge_journals: {exc}", file=sys.stderr)
        return 2
    for recovery in merged.recoveries:
        torn = recovery["torn_index"]
        print(f"merge_journals: recovered a torn tail in "
              f"{recovery['journal']} (in memory only; the file was not "
              f"modified): kept {recovery['valid_bytes']} bytes, dropped "
              f"{recovery['dropped_bytes']}; torn record was program index "
              f"{torn if torn is not None else 'unknown'}", file=sys.stderr)

    header = merged.header
    say(f"merged {len(merged.sources)} journal(s): {header['count']} "
        f"programs (seed={header['seed']}, generator "
        f"v{header['generator_version']})")
    if args.reduce and header["generator_version"] != GENERATOR_VERSION:
        # Reductions regenerate programs from (seed, index) with *this*
        # build's generator; a version skew would replay different programs
        # than the sweep classified.
        print(f"merge_journals: cannot reduce: the journals were swept with "
              f"generator v{header['generator_version']} but this build has "
              f"v{GENERATOR_VERSION}; re-run with --reduce 0",
              file=sys.stderr)
        return 2
    out_dir = pathlib.Path(args.out_dir) if args.out_dir else \
        pathlib.Path(__file__).resolve().parent.parent / "results"
    meta = sweep_output.sweep_meta(
        seed=header["seed"], count=header["count"],
        models=tuple(header["models"]), budget=header["budget"],
        generator_version=header["generator_version"])
    matrix_text, document = sweep_output.build_outputs(merged.records, meta=meta)
    document["reductions"] = sweep_output.compute_reductions(
        merged.records, seed=header["seed"], models=tuple(header["models"]),
        budget=header["budget"], limit=args.reduce, say=say)
    if not args.reduce:
        del document["reductions"]
    matrix_path, corpus_path = sweep_output.write_outputs(
        out_dir, matrix_text, document)
    say(f"wrote {matrix_path}")
    say(f"wrote {corpus_path}")
    say("")
    say(matrix_text)
    if args.stats:
        combined, folded = metrics.merge_trailer_snapshots(merged.stats_trailers)
        if folded:
            print()
            print(metrics.format_summary(
                combined,
                title=f"sweep telemetry ({folded} shard trailer(s) merged)"))
        else:
            say("no stats trailers in the input journals "
                "(sweep the shards with --stats to record them)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Static memory-safety prediction: single programs or corpus cross-validation.

Two modes:

* **Single file** — predict the dynamic oracle's verdict for one mini-C
  source under every requested model, without running the differential
  machines::

      PYTHONPATH=src python scripts/run_staticcheck.py prog.c

* **Cross-validation sweep** (``--crossval``) — generate the seeded corpus,
  run the dynamic oracle *and* the static predictor over every program, and
  write the deterministic confusion matrix
  ``results/staticcheck_crossval.txt`` (rows: static prediction, columns:
  dynamic oracle) with per-trap precision/recall.  Disagreements are the
  triage queue for scaling the sweep; ``--min-trap-precision`` turns the
  aggregate ``trap:*`` precision into an exit-code floor for CI::

      PYTHONPATH=src python scripts/run_staticcheck.py --crossval --count 200
      PYTHONPATH=src python scripts/run_staticcheck.py --crossval --count 200 \\
          --min-trap-precision 0.95

The matrix is bit-deterministic for a given (seed, count, models, budget):
two runs must produce identical bytes (the CI smoke job asserts exactly
that).  See ``docs/staticcheck.md``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.difftest import GENERATOR_VERSION  # noqa: E402  (sys.path setup)
from repro.difftest.generator import generate_program  # noqa: E402
from repro.difftest.oracle import cell_record, classify_results  # noqa: E402
from repro.difftest.output import sweep_meta  # noqa: E402
from repro.difftest.runner import DEFAULT_BUDGET, DifferentialRunner  # noqa: E402
from repro.interp.models import PAPER_MODEL_ORDER  # noqa: E402
from repro.staticcheck.crossval import (  # noqa: E402
    CROSSVAL_NAME,
    format_crossval,
    summarize_crossval,
)
from repro.staticcheck.predict import predict_source_report  # noqa: E402


def _predict_file(path: str, models, budget: int, say) -> int:
    source = pathlib.Path(path).read_text(encoding="utf-8")
    report = predict_source_report(source, models=models, budget=budget)
    say(f"{path}:")
    for model in models:
        say(f"  {model:<12} {report.verdicts.get(model, 'unknown')}")
    for layout, reason in sorted(report.bail_reasons.items()):
        say(f"  # walk for layout {layout[0]}B/{layout[1]}B bailed: {reason}")
    return 0


def _run_crossval(args, models, budget: int, say) -> int:
    out_dir = pathlib.Path(args.out_dir) if args.out_dir else \
        pathlib.Path(__file__).resolve().parent.parent / "results"
    out_dir.mkdir(parents=True, exist_ok=True)
    runner = DifferentialRunner(models=models, budget=budget)
    records = []
    t0 = time.perf_counter()
    for index in range(args.count):
        program = generate_program(args.seed, index)
        program_result = runner.run_program(program)
        classification = classify_results(program_result)
        prediction = predict_source_report(
            program.source, models=models, budget=budget)
        records.append(cell_record(program, program_result, classification,
                                   static_prediction=prediction.verdicts))
        if (index + 1) % 100 == 0:
            say(f"  cross-validated {index + 1}/{args.count} programs "
                f"({time.perf_counter() - t0:.1f}s)")

    summary = summarize_crossval(records)
    meta = sweep_meta(seed=args.seed, count=args.count, models=models,
                      budget=budget, generator_version=GENERATOR_VERSION)
    text = format_crossval(summary, meta=meta)
    crossval_path = out_dir / CROSSVAL_NAME
    crossval_path.write_text(text + "\n", encoding="utf-8")
    say(f"wrote {crossval_path}")
    say("")
    say(text)

    if summary.violations:
        print(f"run_staticcheck: {len(summary.violations)} soundness "
              f"violation(s): dynamically trapping cells were predicted "
              f"safe", file=sys.stderr)
        return 1
    if args.min_trap_precision is not None:
        precision = summary.trap_precision()
        if precision is None:
            print("run_staticcheck: --min-trap-precision given but the sweep "
                  "produced no trap:* predictions", file=sys.stderr)
            return 1
        if precision < args.min_trap_precision:
            print(f"run_staticcheck: trap:* precision {precision:.4f} is "
                  f"below the floor {args.min_trap_precision:.4f}",
                  file=sys.stderr)
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("sources", nargs="*", metavar="FILE",
                        help="mini-C source files to predict (omit with "
                             "--crossval)")
    parser.add_argument("--crossval", action="store_true",
                        help="cross-validate the static predictor against "
                             "the dynamic oracle over a generated corpus")
    parser.add_argument("--seed", type=int, default=0,
                        help="corpus seed for --crossval (default 0)")
    parser.add_argument("--count", type=int, default=200,
                        help="number of generated programs for --crossval "
                             "(default 200)")
    parser.add_argument("--models", default=",".join(PAPER_MODEL_ORDER),
                        help="comma-separated model names (default: all seven)")
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                        help="per-run instruction budget (default: runner "
                             "default)")
    parser.add_argument("--out-dir", default=None,
                        help="output directory for --crossval (default: "
                             "<repo>/results)")
    parser.add_argument("--min-trap-precision", type=float, default=None,
                        metavar="P",
                        help="fail (exit 1) if aggregate trap:* precision "
                             "drops below P (CI floor)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    args = parser.parse_args(argv)

    say = (lambda *a, **k: None) if args.quiet else print
    models = tuple(name.strip() for name in args.models.split(",")
                   if name.strip())

    if args.crossval:
        if args.sources:
            parser.error("--crossval sweeps a generated corpus; it cannot be "
                         "combined with source files")
        return _run_crossval(args, models, args.budget, say)
    if not args.sources:
        parser.error("give at least one source file, or --crossval")
    status = 0
    for path in args.sources:
        status = max(status, _predict_file(path, models, args.budget, say))
    return status


if __name__ == "__main__":
    raise SystemExit(main())

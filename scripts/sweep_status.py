#!/usr/bin/env python3
"""Terminal dashboard over live difftest sweep status files.

``run_difftest`` (unless ``--status-interval 0``) atomically rewrites
``<journal>.status.json`` every few seconds while sweeping.  This script
renders one or many of those documents — one per host shard of a
multi-host sweep — as a terminal dashboard: progress bars, throughput and
ETA, per-worker liveness with straggler flags, cache hit rates, and every
recovery incident.  Reads are always safe: the writer replaces the file
atomically, so a reader can never observe a torn document.

Usage::

    PYTHONPATH=src python scripts/sweep_status.py results/difftest_journal.jsonl
    PYTHONPATH=src python scripts/sweep_status.py shard*.jsonl.status.json --watch 2
    PYTHONPATH=src python scripts/sweep_status.py shard*.jsonl --check-complete

Arguments may be status files or journal paths (``.status.json`` is
appended when the argument does not already end with it).  ``--watch SEC``
refreshes until every shard reports done; ``--check-complete`` exits
non-zero unless every status document exists and reports ``done`` (the CI
telemetry-smoke job uses it as its completion assertion).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.telemetry.status import (  # noqa: E402  (sys.path setup above)
    STATUS_KIND,
    read_status,
    render_dashboard,
)


def status_path(argument: str) -> str:
    """Map a journal path to its status file; pass status files through."""
    if argument.endswith(".status.json"):
        return argument
    return argument + ".status.json"


def load_statuses(paths: list[str]) -> tuple[list[dict], list[str]]:
    """Read every status document; returns (documents, problems)."""
    statuses: list[dict] = []
    problems: list[str] = []
    for path in paths:
        try:
            status = read_status(path)
        except FileNotFoundError:
            problems.append(f"{path}: no status file (sweep not started, or "
                            f"run with --status-interval 0)")
            continue
        except ValueError as exc:
            problems.append(f"{path}: unreadable status file ({exc})")
            continue
        if status.get("kind") != STATUS_KIND:
            problems.append(f"{path}: not a sweep status document "
                            f"(kind={status.get('kind')!r})")
            continue
        statuses.append(status)
    return statuses, problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", metavar="STATUS_OR_JOURNAL",
                        help="status files, or journal paths "
                             "(.status.json is appended)")
    parser.add_argument("--watch", type=float, default=None, metavar="SEC",
                        help="refresh every SEC seconds until all shards "
                             "report done")
    parser.add_argument("--no-detail", action="store_true",
                        help="one summary line per shard (no worker or "
                             "recovery rows)")
    parser.add_argument("--check-complete", action="store_true",
                        help="exit non-zero unless every status document "
                             "exists and reports done")
    args = parser.parse_args(argv)
    paths = [status_path(p) for p in args.paths]

    while True:
        statuses, problems = load_statuses(paths)
        output = render_dashboard(statuses, detail=not args.no_detail)
        if output:
            print(output)
        for problem in problems:
            print(f"sweep_status: {problem}", file=sys.stderr)
        complete = (not problems and statuses
                    and all(s.get("done") for s in statuses))
        if args.check_complete and args.watch is None:
            return 0 if complete else 1
        if args.watch is None or complete:
            return 0 if not args.check_complete or complete else 1
        time.sleep(args.watch)
        print()


if __name__ == "__main__":
    raise SystemExit(main())

#!/bin/sh
# Refresh results/BENCH_interp.json: the interpreter-throughput benchmark
# documented in PERFORMANCE.md.  The `perf` marker is deselected from the
# tier-1 run, so this explicit -m perf invocation is the only way it runs.
#
# Usage: scripts/run_bench.sh [extra pytest args]
set -e
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python -m pytest benchmarks/test_perf_interp.py -m perf -q "$@"

#!/usr/bin/env python
"""Profile the abstract-machine interpreter over one workload/model pair.

Perf PRs should start from data, not guesses: this helper runs cProfile over
``AbstractMachine.run`` (compilation excluded, like the throughput benchmark)
and prints the top functions by cumulative time, so the next optimization
target is visible immediately.  See PERFORMANCE.md ("Profiling workflow").

Usage::

    PYTHONPATH=src python scripts/profile_interp.py                    # treeadd/cheri_v3
    PYTHONPATH=src python scripts/profile_interp.py dhrystone pdp11
    PYTHONPATH=src python scripts/profile_interp.py tcpdump cheri_v3 --sort tottime
    PYTHONPATH=src python scripts/profile_interp.py treeadd pdp11 --top 40
    PYTHONPATH=src python scripts/profile_interp.py dhrystone pdp11 --blocks

``--blocks`` reports per-block dispatch residency instead of cProfile rows:
for every basic-block superinstruction, how often it ran, how many IR
instructions each execution covers, and the share of all executed
instructions it absorbed — i.e. where the dispatch loop no longer spends
round-trips.  The machine records this only when profiling is requested, so
benchmark runs stay instrumentation-free.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time

from repro.core.api import compile_for_model
from repro.interp.machine import AbstractMachine
from repro.interp.models import get_model

#: workload name -> zero-argument callable producing mini-C source.  The sizes
#: match benchmarks/test_perf_interp.py so profiles explain benchmark numbers.
WORKLOADS = {
    "treeadd": lambda: _treeadd(),
    "bisort": lambda: _bisort(),
    "dhrystone": lambda: _dhrystone(),
    "tcpdump": lambda: _tcpdump(),
    "zlib_like": lambda: _zlib_like(),
}


def _treeadd() -> str:
    from repro.workloads.olden import treeadd

    return treeadd.source(depth=10, passes=3)


def _bisort() -> str:
    from repro.workloads.olden import bisort

    return bisort.source(count=bisort.DEFAULT_COUNT)


def _dhrystone() -> str:
    from repro.workloads import dhrystone

    return dhrystone.source(runs=dhrystone.DEFAULT_RUNS)


def _tcpdump() -> str:
    from repro.workloads import tcpdump

    return tcpdump.baseline_source(packets=tcpdump.DEFAULT_PACKETS)


def _zlib_like() -> str:
    from repro.workloads import zlib_like

    return zlib_like.source()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("workload", nargs="?", default="treeadd", choices=sorted(WORKLOADS))
    parser.add_argument("model", nargs="?", default="cheri_v3")
    parser.add_argument("--top", type=int, default=25, help="rows to print (default 25)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--blocks", action="store_true",
                        help="report per-superinstruction dispatch residency "
                             "instead of cProfile output")
    args = parser.parse_args(argv)

    source = WORKLOADS[args.workload]()
    module = compile_for_model(source, args.model)
    machine = AbstractMachine(module, get_model(args.model), max_instructions=200_000_000)

    if args.blocks:
        machine.block_profile = {}

    profiler = cProfile.Profile()
    start = time.perf_counter()
    if not args.blocks:
        profiler.enable()
    result = machine.run()
    if not args.blocks:
        profiler.disable()
    elapsed = time.perf_counter() - start

    if result.trapped:
        print(f"workload trapped: {result.trap!r}", file=sys.stderr)
        return 1
    if args.blocks:
        return _report_blocks(args, machine, result, elapsed)
    print(f"{args.workload}/{args.model}: {result.instructions} instructions in "
          f"{elapsed:.3f}s under profiler "
          f"({result.instructions / elapsed:,.0f} insns/s; profiling overhead included)")
    stats = pstats.Stats(profiler)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


def _report_blocks(args, machine, result, elapsed: float) -> int:
    """Print the per-block dispatch-residency table (``--blocks``)."""
    profile = machine.block_profile or {}
    total = result.instructions or 1
    rows = []
    for (function, pc), info in profile.items():
        executions = info["count"][0]
        covered = executions * info["ir"]
        rows.append((covered, function, pc, info["entries"], info["ir"], executions))
    rows.sort(reverse=True)
    covered_total = sum(row[0] for row in rows)
    print(f"{args.workload}/{args.model}: {result.instructions} instructions in "
          f"{elapsed:.3f}s ({result.instructions / elapsed:,.0f} insns/s)")
    print(f"superinstruction residency: {covered_total}/{total} instructions "
          f"({covered_total / total:.1%}) ran inside {len(rows)} compiled blocks\n")
    print(f"{'block':<28}{'entries':>8}{'ir':>5}{'execs':>12}{'insns':>12}{'share':>8}")
    print("-" * 73)
    for covered, function, pc, entries, n_ir, executions in rows[: args.top]:
        print(f"{function + '+' + str(pc):<28}{entries:>8}{n_ir:>5}"
              f"{executions:>12}{covered:>12}{covered / total:>7.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Profile the abstract-machine interpreter over one workload/model pair.

Perf PRs should start from data, not guesses: this helper runs cProfile over
``AbstractMachine.run`` (compilation excluded, like the throughput benchmark)
and prints the top functions by cumulative time, so the next optimization
target is visible immediately.  See PERFORMANCE.md ("Profiling workflow").

Usage::

    PYTHONPATH=src python scripts/profile_interp.py                    # treeadd/cheri_v3
    PYTHONPATH=src python scripts/profile_interp.py dhrystone pdp11
    PYTHONPATH=src python scripts/profile_interp.py tcpdump cheri_v3 --sort tottime
    PYTHONPATH=src python scripts/profile_interp.py treeadd pdp11 --top 40
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time

from repro.core.api import compile_for_model
from repro.interp.machine import AbstractMachine
from repro.interp.models import get_model

#: workload name -> zero-argument callable producing mini-C source.  The sizes
#: match benchmarks/test_perf_interp.py so profiles explain benchmark numbers.
WORKLOADS = {
    "treeadd": lambda: _treeadd(),
    "bisort": lambda: _bisort(),
    "dhrystone": lambda: _dhrystone(),
    "tcpdump": lambda: _tcpdump(),
    "zlib_like": lambda: _zlib_like(),
}


def _treeadd() -> str:
    from repro.workloads.olden import treeadd

    return treeadd.source(depth=10, passes=3)


def _bisort() -> str:
    from repro.workloads.olden import bisort

    return bisort.source(count=bisort.DEFAULT_COUNT)


def _dhrystone() -> str:
    from repro.workloads import dhrystone

    return dhrystone.source(runs=dhrystone.DEFAULT_RUNS)


def _tcpdump() -> str:
    from repro.workloads import tcpdump

    return tcpdump.baseline_source(packets=tcpdump.DEFAULT_PACKETS)


def _zlib_like() -> str:
    from repro.workloads import zlib_like

    return zlib_like.source()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("workload", nargs="?", default="treeadd", choices=sorted(WORKLOADS))
    parser.add_argument("model", nargs="?", default="cheri_v3")
    parser.add_argument("--top", type=int, default=25, help="rows to print (default 25)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default cumulative)")
    args = parser.parse_args(argv)

    source = WORKLOADS[args.workload]()
    module = compile_for_model(source, args.model)
    machine = AbstractMachine(module, get_model(args.model), max_instructions=200_000_000)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = machine.run()
    profiler.disable()
    elapsed = time.perf_counter() - start

    if result.trapped:
        print(f"workload trapped: {result.trap!r}", file=sys.stderr)
        return 1
    print(f"{args.workload}/{args.model}: {result.instructions} instructions in "
          f"{elapsed:.3f}s under profiler "
          f"({result.instructions / elapsed:,.0f} insns/s; profiling overhead included)")
    stats = pstats.Stats(profiler)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Live sweep status: atomic status file + terminal dashboard rendering.

While a sweep runs, the service rewrites ``<journal>.status.json`` every
few seconds with everything an operator watching a multi-hour run needs:
progress, per-worker liveness and current program, a throughput EMA with
an ETA, cache hit rates, stragglers, and every recovery incident so far.
``scripts/sweep_status.py`` renders one or many of these files (one per
host shard) as a terminal dashboard.

Atomicity is the load-bearing property: the file is rewritten via
write-temp-then-``os.replace`` in the same directory, so a reader — or a
SIGKILL mid-write — can never observe a torn document; every read of the
path yields either the previous complete status or the next one
(``tests`` kill a writer child mid-loop to pin this).  The status file is
advisory scratch beside the journal, never an artifact: it is gitignored,
carries wall-clock numbers, and has no influence on sweep records.
"""

from __future__ import annotations

import json
import os
import time

STATUS_KIND = "repro-difftest-status"
STATUS_VERSION = 1


class ThroughputEMA:
    """Exponential moving average of programs/second, fed by completions.

    Updates are windowed: rates are computed over at least
    ``min_window`` seconds of elapsed time so a burst of queue drains does
    not spike the estimate, then folded in with weight ``alpha``.
    """

    def __init__(self, alpha: float = 0.3, min_window: float = 0.5,
                 clock=time.monotonic) -> None:
        self.alpha = alpha
        self.min_window = min_window
        self._clock = clock
        self._last_time = None
        self._last_completed = 0
        self.rate = None

    def update(self, completed: int, now: float | None = None) -> None:
        if now is None:
            now = self._clock()
        if self._last_time is None:
            self._last_time = now
            self._last_completed = completed
            return
        elapsed = now - self._last_time
        if elapsed < self.min_window:
            return
        instantaneous = (completed - self._last_completed) / elapsed
        self.rate = (instantaneous if self.rate is None
                     else self.alpha * instantaneous
                     + (1.0 - self.alpha) * self.rate)
        self._last_time = now
        self._last_completed = completed

    def eta_seconds(self, remaining: int) -> float | None:
        if not self.rate or remaining <= 0:
            return 0.0 if remaining <= 0 else None
        return remaining / self.rate


def write_status(path: str, payload: dict) -> None:
    """Atomically replace ``path`` with ``payload`` as JSON."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    tmp = os.path.join(directory,
                       f".{os.path.basename(path)}.{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def read_status(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class StatusWriter:
    """Interval-throttled atomic status publisher.

    ``maybe_write(build)`` calls ``build()`` (which assembles the payload)
    only when the interval has elapsed — the service calls it from its
    poll loop, so payload assembly must stay off the fast path.
    """

    def __init__(self, path: str, *, interval: float = 2.0,
                 clock=time.monotonic) -> None:
        self.path = path
        self.interval = interval
        self._clock = clock
        self._last_write = None

    def maybe_write(self, build, *, force: bool = False) -> bool:
        now = self._clock()
        if (not force and self._last_write is not None
                and now - self._last_write < self.interval):
            return False
        payload = dict(build())
        payload.setdefault("kind", STATUS_KIND)
        payload.setdefault("version", STATUS_VERSION)
        write_status(self.path, payload)
        self._last_write = now
        return True


# ---------------------------------------------------------------------------
# Dashboard rendering (scripts/sweep_status.py and the merge runbook)
# ---------------------------------------------------------------------------

_BAR_WIDTH = 24


def _bar(fraction: float) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * _BAR_WIDTH))
    return "[" + "#" * filled + "." * (_BAR_WIDTH - filled) + "]"


def _format_eta(seconds) -> str:
    if seconds is None:
        return "ETA ?"
    if seconds <= 0:
        return "done"
    if seconds < 90:
        return f"ETA {seconds:.0f}s"
    if seconds < 5400:
        return f"ETA {seconds / 60:.0f}m"
    return f"ETA {seconds / 3600:.1f}h"


def _shard_label(status: dict) -> str:
    shard = status.get("host_shard")
    if shard:
        return f"shard {shard[0]}/{shard[1]}"
    return "sweep"


def _cache_rate(status: dict) -> str | None:
    cache = status.get("cache") or {}
    hits = cache.get("artifact.hits", 0)
    misses = cache.get("artifact.misses", 0)
    if hits + misses:
        return f"lru {100.0 * hits / (hits + misses):.0f}%"
    return None


def render_status_line(status: dict) -> str:
    """One dashboard row for one shard's status document."""
    target = status.get("target") or 0
    completed = status.get("completed", 0)
    fraction = completed / target if target else 0.0
    parts = [
        f"{_shard_label(status):<11}",
        _bar(fraction),
        f"{completed}/{target}",
        f"{100.0 * fraction:5.1f}%",
    ]
    rate = status.get("throughput_programs_per_s")
    parts.append(f"{rate:.1f} prog/s" if rate is not None else "- prog/s")
    parts.append("done" if status.get("done")
                 else _format_eta(status.get("eta_seconds")))
    workers = status.get("workers") or {}
    if workers:
        alive = sum(1 for w in workers.values() if w.get("alive"))
        parts.append(f"workers {alive}/{len(workers)}")
    cache = _cache_rate(status)
    if cache:
        parts.append(cache)
    recoveries = status.get("recoveries") or []
    if recoveries:
        parts.append(f"recoveries {len(recoveries)}")
    return "  ".join(parts)


def render_dashboard(statuses: list[dict], *, detail: bool = True) -> str:
    """Render one or many shard status documents as a terminal dashboard."""
    lines = []
    for status in statuses:
        lines.append(render_status_line(status))
        if not detail:
            continue
        for worker_id in sorted((status.get("workers") or {}),
                                key=lambda w: int(w)):
            worker = status["workers"][worker_id]
            if not worker.get("alive"):
                state = "dead"
            elif worker.get("current_index") is None:
                state = "idle"
            else:
                state = (f"program {worker['current_index']} "
                         f"({worker.get('busy_seconds', 0.0):.1f}s)")
            flags = []
            if worker.get("respawns"):
                flags.append(f"respawns {worker['respawns']}")
            if worker.get("straggler"):
                flags.append("STRAGGLER")
            lines.append(f"    worker {worker_id}: {state}"
                         + ("  [" + ", ".join(flags) + "]" if flags else ""))
        for incident in (status.get("recoveries") or []):
            lines.append(f"    recovery: {incident.get('type', 'unknown')} "
                         f"(torn index {incident.get('torn_index')}, "
                         f"dropped {incident.get('dropped_bytes', 0)} bytes)")
    if len(statuses) > 1:
        target = sum(s.get("target") or 0 for s in statuses)
        completed = sum(s.get("completed", 0) for s in statuses)
        rates = [s.get("throughput_programs_per_s") for s in statuses]
        known = [r for r in rates if r is not None]
        total = {
            "host_shard": None,
            "target": target,
            "completed": completed,
            "throughput_programs_per_s": sum(known) if known else None,
            "done": all(s.get("done") for s in statuses),
        }
        if known and not total["done"]:
            remaining = target - completed
            total["eta_seconds"] = (remaining / total["throughput_programs_per_s"]
                                    if total["throughput_programs_per_s"] else None)
        lines.append("-" * len(render_status_line(total)))
        lines.append(render_status_line(total).replace("sweep      ",
                                                       "total      "))
    return "\n".join(lines)

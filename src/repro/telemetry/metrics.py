"""Process-local metrics: counters, gauges and fixed-bucket histograms.

Design constraints, in priority order:

1. **Free when off.**  The sweep's bit-determinism tests run with telemetry
   disabled; the instrumented seams must cost nothing measurable there.
   When the module registry is disabled, :func:`counter` / :func:`gauge` /
   :func:`histogram` return shared no-op singletons whose mutators are
   empty methods — the per-call cost is one dict miss away from zero, and
   ``scripts/check_telemetry_overhead.py`` guards the bound in CI.
2. **JSON-safe snapshots.**  Worker subprocesses cannot share a registry
   with the supervisor (fork gives each child a private copy whose counts
   the parent never sees).  Instead everything aggregates through plain
   dicts: :func:`snapshot` serializes a registry, :func:`merge_snapshots`
   adds two snapshots, and the service ships per-program deltas through
   its result queue — which is also what lets the journal stats trailer
   and ``merge_journals`` recombine per-shard stats.
3. **Deterministic rendering.**  :func:`format_summary` sorts every
   section so two identical sweeps print identical reports.

Histogram buckets are fixed at registration (`le` semantics: an
observation equal to a bound lands in that bound's bucket, like
Prometheus), plus an overflow bucket; sum/count/min/max ride along so the
report can print a mean and exact extremes next to the quantile estimates.
"""

from __future__ import annotations

from bisect import bisect_left

#: default latency bucket bounds, in seconds: half-millisecond resolution
#: at the fast end (parse/predecode of small programs), decade coverage up
#: to the per-program timeout regime at the slow end.
LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: lane-occupancy buckets for the lockstep batch engine
#: (``lockstep.occupancy``): how many lanes stepped together in a round.
#: The paper sweep runs at most 7 lanes (one per memory model), so unit
#: buckets up to 7 plus the overflow bucket cover every configuration.
LANE_BUCKETS = (1, 2, 3, 4, 5, 6, 7)


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket distribution with ``le`` bucket semantics."""

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str, bounds=LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(bounds))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        self.name = name
        self.bounds = bounds
        #: counts[i] observes bounds[i-1] < v <= bounds[i]; the final slot
        #: is the overflow bucket (v > bounds[-1]).
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def quantile_bound(self, q: float):
        """The smallest bucket upper bound covering quantile ``q``.

        Returns None for an empty histogram and ``float('inf')`` when the
        quantile lands in the overflow bucket — an estimate, not an exact
        order statistic, which is all fixed buckets can give.
        """
        if not self.count:
            return None
        threshold = q * self.count
        cumulative = 0
        for i, bucket in enumerate(self.counts):
            cumulative += bucket
            if cumulative >= threshold and bucket:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")


class _NullCounter:
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: shared no-op instruments handed out by a disabled registry; callers
#: keep whatever handle they fetched, so fetch *after* configure().
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Name -> instrument map with a disabled fast path."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds=LATENCY_BUCKETS) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument (deterministic key order)."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.total,
                    "min": h.minimum,
                    "max": h.maximum,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def absorb(self, delta: dict) -> None:
        """Add a flat ``{counter_name: int}`` delta (worker cache stats)."""
        for name, value in delta.items():
            if value:
                self.counter(name).inc(value)

    def counter_values(self, prefix: str = "") -> dict[str, int]:
        """``{name: value}`` for counters under ``prefix`` (sorted)."""
        return {name: c.value for name, c in sorted(self._counters.items())
                if name.startswith(prefix)}


def merge_snapshots(left: dict, right: dict) -> dict:
    """Combine two :meth:`MetricsRegistry.snapshot` dicts.

    Counters and histogram counts add; gauges take the right-hand value
    (last write wins); histograms with mismatched bounds raise — shards of
    one sweep always run the same build, so a mismatch means the inputs do
    not belong together.
    """
    merged = {
        "counters": dict(left.get("counters", {})),
        "gauges": dict(left.get("gauges", {})),
        "histograms": {name: dict(h, bounds=list(h["bounds"]),
                                  counts=list(h["counts"]))
                       for name, h in left.get("histograms", {}).items()},
    }
    for name, value in right.get("counters", {}).items():
        merged["counters"][name] = merged["counters"].get(name, 0) + value
    merged["gauges"].update(right.get("gauges", {}))
    for name, other in right.get("histograms", {}).items():
        mine = merged["histograms"].get(name)
        if mine is None:
            merged["histograms"][name] = dict(other,
                                              bounds=list(other["bounds"]),
                                              counts=list(other["counts"]))
            continue
        if list(mine["bounds"]) != list(other["bounds"]):
            raise ValueError(
                f"histogram {name!r} bucket bounds differ between snapshots; "
                "refusing to merge stats from different builds")
        mine["counts"] = [a + b for a, b in zip(mine["counts"], other["counts"])]
        mine["count"] += other["count"]
        mine["sum"] += other["sum"]
        for key, pick in (("min", min), ("max", max)):
            values = [v for v in (mine[key], other[key]) if v is not None]
            mine[key] = pick(values) if values else None
    merged["counters"] = dict(sorted(merged["counters"].items()))
    merged["gauges"] = dict(sorted(merged["gauges"].items()))
    merged["histograms"] = dict(sorted(merged["histograms"].items()))
    return merged


def merge_trailer_snapshots(trailers: list[dict],
                            base: dict | None = None) -> tuple[dict, int]:
    """Fold journal stats trailers' ``metrics`` snapshots into one.

    ``base`` seeds the fold (e.g. the merge host's own snapshot, so its
    reduce/crossval stages join the shards' numbers).  Returns
    ``(combined, folded)`` where ``folded`` counts the trailers that
    carried a snapshot — 0 means the shards swept without ``--stats``.
    """
    combined = base if base is not None else {}
    folded = 0
    for trailer in trailers:
        snap = trailer.get("metrics")
        if snap:
            combined = merge_snapshots(combined, snap)
            folded += 1
    return combined, folded


def _format_seconds(value) -> str:
    if value is None:
        return "-"
    if value == float("inf"):
        return ">max"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000:.2f}ms"


def _snapshot_quantile(hist: dict, q: float):
    count = hist["count"]
    if not count:
        return None
    threshold = q * count
    cumulative = 0
    bounds = hist["bounds"]
    for i, bucket in enumerate(hist["counts"]):
        cumulative += bucket
        if cumulative >= threshold and bucket:
            return bounds[i] if i < len(bounds) else float("inf")
    return float("inf")


def format_summary(snap: dict, *, title: str = "sweep telemetry") -> str:
    """Render a snapshot as the ``--stats`` end-of-sweep report.

    Deterministic for a given snapshot: sections and rows sort by name, and
    no wall-clock values beyond the snapshot's own appear.
    """
    lines = [title, "=" * len(title)]
    counters = snap.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    cache_lines = _cache_effectiveness(counters)
    if cache_lines:
        lines.append("")
        lines.append("cache effectiveness")
        lines.extend(cache_lines)
    histograms = snap.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("stage latency")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            hist = histograms[name]
            if not hist["count"]:
                continue
            mean = hist["sum"] / hist["count"]
            lines.append(
                f"  {name:<{width}}  n={hist['count']:<7} "
                f"mean={_format_seconds(mean):<9} "
                f"p50<={_format_seconds(_snapshot_quantile(hist, 0.5)):<9} "
                f"p90<={_format_seconds(_snapshot_quantile(hist, 0.9)):<9} "
                f"max={_format_seconds(hist['max'])}")
    gauges = snap.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]:g}")
    return "\n".join(lines)


def _cache_effectiveness(counters: dict) -> list[str]:
    """Hit-rate lines for every ``<tier>.hits``/``<tier>.misses`` pair."""
    lines = []
    for prefix in sorted({name.rsplit(".", 1)[0] for name in counters
                          if name.endswith((".hits", ".misses"))}):
        hits = counters.get(prefix + ".hits", 0)
        misses = counters.get(prefix + ".misses", 0)
        total = hits + misses
        if not total:
            continue
        lines.append(f"  {prefix}: {hits}/{total} hits "
                     f"({100.0 * hits / total:.1f}%)")
    return lines


# ---------------------------------------------------------------------------
# Module-level registry (what the sweep pipeline instruments against)
# ---------------------------------------------------------------------------

_REGISTRY = MetricsRegistry(enabled=False)


def configure(enabled: bool) -> MetricsRegistry:
    """Swap in a fresh registry (clearing old instruments) and return it.

    Instrument handles are bound at fetch time, so configure *before* the
    instrumented code fetches them — the service does this at the top of
    ``run()``, before any worker forks.
    """
    global _REGISTRY
    _REGISTRY = MetricsRegistry(enabled=enabled)
    return _REGISTRY


def registry() -> MetricsRegistry:
    return _REGISTRY


def enabled() -> bool:
    return _REGISTRY.enabled


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str, bounds=LATENCY_BUCKETS) -> Histogram:
    return _REGISTRY.histogram(name, bounds)


def snapshot() -> dict:
    return _REGISTRY.snapshot()

"""Zero-dependency observability for the differential sweep pipeline.

A 100k-program multi-host sweep through the service tier (workers,
journals, disk cache) is a multi-hour run; without telemetry a stalled
worker, a cold cache or a straggler shard is invisible until the final
table prints.  This package is the cross-cutting layer that makes those
runs operable, in three pieces that share one design rule — **telemetry
never touches the artifacts**: trace timestamps, status files and stats
trailers live beside the journal, and the Table-5 matrix + corpus JSON
stay byte-identical telemetry-on vs telemetry-off.

* :mod:`repro.telemetry.metrics` — a process-local registry of counters,
  gauges and fixed-bucket latency histograms with a no-op fast path when
  disabled (the instrumented seams cost a dict hit + branch only when a
  sweep opts in via ``--trace``/``--stats``/the status file).
* :mod:`repro.telemetry.trace` — span-based tracing emitting Chrome
  trace-event JSON loadable in Perfetto (``run_difftest --trace FILE``),
  with per-worker tracks and per-program/per-stage spans, clocked off the
  monotonic clock so tracing can never perturb record content.
* :mod:`repro.telemetry.status` — the live sweep status file: the service
  atomically rewrites ``<journal>.status.json`` every few seconds
  (progress, per-worker liveness, throughput EMA, cache hit rates,
  stragglers, ETA) and ``scripts/sweep_status.py`` renders one or many
  shard status files as a terminal dashboard.

Instrumented seams: the difftest service (completions, retries,
quarantines, respawns, journal fsync batches + flush latency, torn-tail
recoveries), the runner (generate/parse/lower/predecode/per-model
execute/classify/reduce stage spans), the artifact LRU and disk cache
(hits, misses, quarantines, lock contention — aggregated from worker
subprocesses through the result queue, so fork can't zero them), and the
staticcheck cross-validation.  See ``docs/observability.md`` for the full
metric catalogue and span taxonomy.
"""

from repro.telemetry.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    configure,
    counter,
    enabled,
    format_summary,
    gauge,
    histogram,
    merge_snapshots,
    registry,
    snapshot,
)
from repro.telemetry.status import (
    StatusWriter,
    ThroughputEMA,
    read_status,
    render_dashboard,
    write_status,
)
from repro.telemetry.trace import (
    NULL_TRACER,
    TraceBuffer,
    TraceWriter,
    timed_span,
)

__all__ = [
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "configure",
    "counter",
    "enabled",
    "format_summary",
    "gauge",
    "histogram",
    "merge_snapshots",
    "registry",
    "snapshot",
    "StatusWriter",
    "ThroughputEMA",
    "read_status",
    "render_dashboard",
    "write_status",
    "NULL_TRACER",
    "TraceBuffer",
    "TraceWriter",
    "timed_span",
]

"""Span tracing in Chrome trace-event JSON, loadable in Perfetto.

``run_difftest --trace FILE`` writes one JSON object::

    {"traceEvents": [...], "displayTimeUnit": "ms"}

whose events follow the Chrome trace-event format: complete spans
(``ph: "X"`` with microsecond ``ts``/``dur``), instants (``ph: "i"``) for
incidents like torn-tail recoveries, and metadata (``ph: "M"``) naming the
tracks.  Load the file at https://ui.perfetto.dev (or chrome://tracing).

Track layout: the supervisor is pid 0; worker ``i`` is pid ``i + 1`` (its
real OS pid is recorded as a track argument — worker slots survive
respawns, so the slot id is the stable identity).  Every program becomes a
``program`` span on its worker's track with the per-stage spans
(``stage.parse``, ``stage.execute`` ...) nested inside.

Clock and determinism: spans are stamped from ``time.monotonic_ns`` —
comparable across processes on the same host (CLOCK_MONOTONIC is
system-wide on Linux), immune to wall-clock steps, and **never written
anywhere near the sweep records**: events travel supervisor-ward in their
own channel and land only in the trace file, which is why artifacts are
bit-identical trace-on vs trace-off.

:func:`timed_span` is the one instrumentation primitive the pipeline uses:
it feeds the same measured duration to a trace buffer (for Perfetto) and a
sink callable (for the stage-latency histograms), and collapses to a
shared no-op context manager when both are off — the disabled cost is one
identity check, guarded by ``scripts/check_telemetry_overhead.py``.
"""

from __future__ import annotations

import json
import os
import time


class _Span:
    """Context manager emitting one complete event and/or one sink sample."""

    __slots__ = ("buffer", "sink", "name", "cat", "args", "start")

    def __init__(self, buffer, sink, name: str, cat: str, args) -> None:
        self.buffer = buffer
        self.sink = sink
        self.name = name
        self.cat = cat
        self.args = args
        self.start = 0

    def __enter__(self) -> "_Span":
        self.start = time.monotonic_ns()
        return self

    def __exit__(self, *_exc) -> None:
        end = time.monotonic_ns()
        buffer = self.buffer
        if buffer is not None:
            event = {
                "name": self.name,
                "cat": self.cat,
                "ph": "X",
                "ts": self.start // 1000,
                "dur": (end - self.start) // 1000,
                "pid": buffer.pid,
                "tid": buffer.tid,
            }
            if self.args:
                event["args"] = self.args
            buffer.events.append(event)
        if self.sink is not None:
            self.sink(self.name, (end - self.start) / 1e9)


class _NoopSpan:
    """Shared do-nothing context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class TraceBuffer:
    """Per-process span collector bound to one (pid, tid) track."""

    __slots__ = ("pid", "tid", "events")

    def __init__(self, pid: int = 0, tid: int = 0) -> None:
        self.pid = pid
        self.tid = tid
        self.events: list[dict] = []

    def span(self, name: str, cat: str = "sweep", **args) -> _Span:
        return _Span(self, None, name, cat, args or None)

    def instant(self, name: str, cat: str = "sweep", **args) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": time.monotonic_ns() // 1000,
            "pid": self.pid,
            "tid": self.tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def drain(self) -> list[dict]:
        """Hand off (and forget) everything collected so far."""
        events, self.events = self.events, []
        return events


class _NullTracer:
    """Trace-off stand-in: same surface as :class:`TraceBuffer`, all no-op."""

    __slots__ = ()
    pid = 0
    tid = 0

    def span(self, name: str, cat: str = "sweep", **args) -> _NoopSpan:
        return _NOOP_SPAN

    def instant(self, name: str, cat: str = "sweep", **args) -> None:
        pass

    def drain(self) -> list:
        return []


NULL_TRACER = _NullTracer()


def timed_span(tracer, sink, name: str, cat: str = "sweep", **args):
    """Span + histogram sample in one: the pipeline's instrumentation seam.

    ``tracer`` is a :class:`TraceBuffer` or :data:`NULL_TRACER`; ``sink``
    is ``None`` or a callable ``(name, seconds)``.  With both off this
    returns a shared no-op context manager — no allocation, no clock read.
    """
    if sink is None and tracer is NULL_TRACER:
        return _NOOP_SPAN
    return _Span(tracer if tracer is not NULL_TRACER else None,
                 sink, name, cat, args or None)


class TraceWriter:
    """Supervisor-side accumulator that writes the final trace file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.events: list[dict] = []

    def add_events(self, events) -> None:
        self.events.extend(events)

    def set_process_name(self, pid: int, name: str, **args) -> None:
        """Metadata event labeling a track in the Perfetto UI."""
        self.events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": dict(args, name=name),
        })

    def close(self) -> str:
        """Write the trace file (atomic rename) and return its path."""
        document = {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
        }
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        os.makedirs(directory, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.write("\n")
        os.replace(tmp, self.path)
        return self.path

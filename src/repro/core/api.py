"""Public facade: compile and run C under a memory-safe abstract machine.

This is the API a downstream user starts from::

    from repro.core import MemorySafeMachine

    machine = MemorySafeMachine(model="cheri_v3")
    result = machine.run(source_code)
    assert result.ok

The facade takes care of the one coupling that is easy to get wrong: the
front end must lay out pointers at the width the memory model uses (8-byte
integers for the PDP-11-style models, 32-byte capabilities for CHERI), or
struct offsets and cache behaviour would be meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.detector import AnalysisResult, analyze_module
from repro.common.config import MachineConfig
from repro.interp.machine import AbstractMachine, ExecutionResult
from repro.interp.models import get_model
from repro.interp.models.base import MemoryModel
from repro.minic.ir import Module
from repro.minic.irgen import compile_source
from repro.minic.optimizer import optimize_module


def compile_for_model(source: str, model: MemoryModel | str, *, optimize: bool = True,
                      source_name: str = "<memory>") -> Module:
    """Compile mini-C source with the pointer layout the model requires."""
    resolved = get_model(model) if isinstance(model, str) else model
    module = compile_source(
        source,
        pointer_bytes=resolved.pointer_bytes,
        pointer_align=resolved.pointer_align,
        source_name=source_name,
    )
    if optimize:
        optimize_module(module)
    return module


def run_under_model(source: str, model: MemoryModel | str, *, entry: str = "main",
                    max_instructions: int = 50_000_000,
                    config: MachineConfig | None = None) -> ExecutionResult:
    """Compile and execute ``source`` under the given memory model."""
    resolved = get_model(model) if isinstance(model, str) else model
    module = compile_for_model(source, resolved)
    machine = AbstractMachine(module, resolved, config=config, max_instructions=max_instructions)
    return machine.run(entry)


@dataclass
class ProgramReport:
    """Execution plus static analysis of one program under one model."""

    result: ExecutionResult
    analysis: AnalysisResult
    model_name: str


class MemorySafeMachine:
    """A reusable compile-and-run pipeline bound to one memory model."""

    def __init__(self, model: MemoryModel | str = "cheri_v3", *,
                 config: MachineConfig | None = None,
                 max_instructions: int = 50_000_000) -> None:
        self.model_name = model if isinstance(model, str) else model.name
        self._model_template = get_model(model) if isinstance(model, str) else model
        self.config = config
        self.max_instructions = max_instructions

    # ------------------------------------------------------------------

    def fresh_model(self) -> MemoryModel:
        """A new model instance (models carry per-run trap counters)."""
        return get_model(self.model_name,
                         **({"capability_bytes": self._model_template.pointer_bytes}
                            if self.model_name.startswith("cheri") else {}))

    def compile(self, source: str, *, optimize: bool = True) -> Module:
        return compile_for_model(source, self._model_template, optimize=optimize)

    def run(self, source: str, *, entry: str = "main") -> ExecutionResult:
        """Compile and run a program, returning its :class:`ExecutionResult`."""
        module = self.compile(source)
        machine = AbstractMachine(module, self.fresh_model(), config=self.config,
                                  max_instructions=self.max_instructions)
        return machine.run(entry)

    def run_module(self, module: Module, *, entry: str = "main") -> ExecutionResult:
        """Run an already-compiled module (must match this model's layout)."""
        machine = AbstractMachine(module, self.fresh_model(), config=self.config,
                                  max_instructions=self.max_instructions)
        return machine.run(entry)

    def analyze(self, source: str) -> AnalysisResult:
        """Static idiom analysis of a program (independent of execution)."""
        return analyze_module(self.compile(source))

    def report(self, source: str, *, entry: str = "main") -> ProgramReport:
        """Run and analyze in one step."""
        module = self.compile(source)
        machine = AbstractMachine(module, self.fresh_model(), config=self.config,
                                  max_instructions=self.max_instructions)
        return ProgramReport(result=machine.run(entry), analysis=analyze_module(module),
                             model_name=self.model_name)

"""Extracted idiom test cases (paper §2 / §5.1).

The paper's methodology: categorise the problematic idioms found in the
corpus, extract a small self-contained test case for each, and run the test
cases under every candidate interpretation of the C abstract machine.  Each
:class:`IdiomTestCase` here is such a program — it returns 0 from ``main``
when the idiom behaved the way PDP-11-model code expects, a non-zero exit
status when it silently misbehaved, and traps when the model rejects it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.idioms import Idiom


@dataclass(frozen=True)
class IdiomTestCase:
    """One extracted test case: a program plus a description."""

    idiom: Idiom
    name: str
    description: str
    source: str


DECONST_CASE = IdiomTestCase(
    idiom=Idiom.DECONST,
    name="deconst",
    description="Cast away const and write through the resulting pointer",
    source=r"""
int set_first(char *p) { p[0] = 'x'; return 0; }

int main(void) {
    char buf[4];
    buf[0] = 'a';
    const char *cp = buf;          /* implicit const qualification */
    set_first((char *)cp);         /* const removed again */
    return buf[0] == 'x' ? 0 : 1;
}
""",
)

CONTAINER_CASE = IdiomTestCase(
    idiom=Idiom.CONTAINER,
    name="container",
    description="container_of: recover the enclosing struct from a member pointer",
    source=r"""
struct outer { long head; int tail; };

int main(void) {
    struct outer o;
    o.head = 5;
    o.tail = 7;
    int *tp = &o.tail;
    struct outer *op = (struct outer *)((char *)tp - offsetof(struct outer, tail));
    return op->head == 5 ? 0 : 1;
}
""",
)

SUB_CASE = IdiomTestCase(
    idiom=Idiom.SUB,
    name="sub",
    description="Arbitrary pointer subtraction (pointer-minus-int and pointer difference)",
    source=r"""
int main(void) {
    char buf[16];
    char *end = buf + 16;
    char *p = end - 16;            /* pointer minus integer */
    long n = end - buf;            /* pointer difference */
    p[0] = 1;
    return (n == 16 && buf[0] == 1) ? 0 : 1;
}
""",
)

II_CASE = IdiomTestCase(
    idiom=Idiom.II,
    name="ii",
    description="Out-of-bounds intermediate value that returns in bounds before dereference",
    source=r"""
int main(void) {
    int arr[8];
    int *p = arr;
    p = p + 12;                    /* 16 bytes past the end */
    p = p - 8;                     /* back inside */
    *p = 3;
    return arr[4] == 3 ? 0 : 1;
}
""",
)

INT_CASE = IdiomTestCase(
    idiom=Idiom.INT,
    name="int",
    description="Store a pointer in an integer variable in memory and recover it",
    source=r"""
int main(void) {
    int x = 42;
    int *p = &x;
    intptr_t ip = (intptr_t)p;     /* stored in an integer object */
    int *q = (int *)ip;
    return *q == 42 ? 0 : 1;
}
""",
)

IA_CASE = IdiomTestCase(
    idiom=Idiom.IA,
    name="ia",
    description="Integer arithmetic on a pointer value, then dereference",
    source=r"""
int main(void) {
    int arr[4];
    arr[2] = 9;
    intptr_t base = (intptr_t)arr;
    intptr_t addr = base + 2 * sizeof(int);
    int *p = (int *)addr;
    return *p == 9 ? 0 : 1;
}
""",
)

MASK_CASE = IdiomTestCase(
    idiom=Idiom.MASK,
    name="mask",
    description="Stash flags in the low bits of a pointer, mask them off, dereference",
    source=r"""
int main(void) {
    long x[2];
    x[0] = 7;
    intptr_t p = (intptr_t)x;
    p = p | 1;                      /* tag bit in the low bit */
    intptr_t q = p & ~(intptr_t)1;  /* strip the tag */
    long *lp = (long *)q;
    return (*lp == 7 && (p & 1) == 1) ? 0 : 1;
}
""",
)

WIDE_CASE = IdiomTestCase(
    idiom=Idiom.WIDE,
    name="wide",
    description="Store a pointer in a 32-bit integer (assumes sizeof(int) == sizeof(void *))",
    source=r"""
int main(void) {
    int x = 5;
    unsigned int small = (unsigned int)(intptr_t)&x;
    int *p = (int *)(intptr_t)small;
    return *p == 5 ? 0 : 1;
}
""",
)


#: The eight extracted test cases in Table 3 column order.
IDIOM_TEST_CASES: tuple[IdiomTestCase, ...] = (
    DECONST_CASE,
    CONTAINER_CASE,
    SUB_CASE,
    II_CASE,
    INT_CASE,
    IA_CASE,
    MASK_CASE,
    WIDE_CASE,
)


def case_for(idiom: Idiom) -> IdiomTestCase:
    for case in IDIOM_TEST_CASES:
        if case.idiom == idiom:
            return case
    raise KeyError(f"no extracted test case for idiom {idiom}")

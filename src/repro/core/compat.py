"""The idiom-support matrix (Table 3).

``evaluate_matrix`` runs every extracted idiom test case under every memory
model and classifies the outcome:

* **yes**   — the program ran to completion and produced the answer the
  PDP-11-model programmer expected;
* **no (trap)**  — the model rejected the idiom with a protection trap;
* **no (wrong)** — the program ran but silently produced a different answer
  (the idiom is unsupported *and* undetected — the worst cell to be in).

``PAPER_TABLE3`` records the published matrix; entries in parentheses in the
paper (supported with caveats, e.g. only through ``intcap_t``) are treated as
"yes" for comparison, with the caveat carried in the model's
``int_roundtrip_note``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.idioms import Idiom
from repro.core.api import run_under_model
from repro.core.idiom_cases import IDIOM_TEST_CASES
from repro.interp.models import PAPER_MODEL_ORDER, get_model


class Outcome(enum.Enum):
    """Result of running one idiom test case under one model."""

    SUPPORTED = "yes"
    TRAPPED = "no (trap)"
    WRONG = "no (wrong)"

    @property
    def supported(self) -> bool:
        return self is Outcome.SUPPORTED


#: Table 3 of the paper: does each model support each idiom?  ``True`` covers
#: both "yes" and "(yes)" entries; WIDE is unsupported everywhere.
PAPER_TABLE3: dict[str, dict[Idiom, bool]] = {
    "pdp11": {
        Idiom.DECONST: True, Idiom.CONTAINER: True, Idiom.SUB: True, Idiom.II: True,
        Idiom.INT: True, Idiom.IA: True, Idiom.MASK: True, Idiom.WIDE: False,
    },
    "hardbound": {
        Idiom.DECONST: True, Idiom.CONTAINER: True, Idiom.SUB: True, Idiom.II: True,
        Idiom.INT: True, Idiom.IA: False, Idiom.MASK: False, Idiom.WIDE: False,
    },
    "mpx": {
        Idiom.DECONST: True, Idiom.CONTAINER: False, Idiom.SUB: True, Idiom.II: True,
        Idiom.INT: True, Idiom.IA: True, Idiom.MASK: True, Idiom.WIDE: False,
    },
    "relaxed": {
        Idiom.DECONST: True, Idiom.CONTAINER: True, Idiom.SUB: True, Idiom.II: True,
        Idiom.INT: True, Idiom.IA: True, Idiom.MASK: True, Idiom.WIDE: False,
    },
    "strict": {
        Idiom.DECONST: True, Idiom.CONTAINER: True, Idiom.SUB: True, Idiom.II: True,
        Idiom.INT: True, Idiom.IA: False, Idiom.MASK: False, Idiom.WIDE: False,
    },
    "cheri_v2": {
        Idiom.DECONST: False, Idiom.CONTAINER: False, Idiom.SUB: False, Idiom.II: False,
        Idiom.INT: True, Idiom.IA: False, Idiom.MASK: False, Idiom.WIDE: False,
    },
    "cheri_v3": {
        Idiom.DECONST: True, Idiom.CONTAINER: True, Idiom.SUB: True, Idiom.II: True,
        Idiom.INT: True, Idiom.IA: True, Idiom.MASK: True, Idiom.WIDE: False,
    },
}

#: display names used when printing Table 3.
MODEL_DISPLAY_NAMES = {
    "pdp11": "x86/MIPS/PDP-11",
    "hardbound": "HardBound",
    "mpx": "Intel MPX",
    "relaxed": "Relaxed",
    "strict": "Strict",
    "cheri_v2": "CHERIv2",
    "cheri_v3": "CHERIv3",
}


@dataclass
class CompatibilityMatrix:
    """Measured outcomes: ``outcomes[model][idiom]``."""

    outcomes: dict[str, dict[Idiom, Outcome]] = field(default_factory=dict)

    def supported(self, model: str, idiom: Idiom) -> bool:
        return self.outcomes[model][idiom].supported

    def matches_paper(self) -> bool:
        """True when every cell agrees with the paper's Table 3."""
        return not self.differences()

    def differences(self) -> list[tuple[str, Idiom, bool, bool]]:
        """Cells where measured support disagrees with the paper."""
        out = []
        for model, expected_row in PAPER_TABLE3.items():
            for idiom, expected in expected_row.items():
                measured = self.supported(model, idiom)
                if measured != expected:
                    out.append((model, idiom, expected, measured))
        return out


def evaluate_case(model_name: str, source: str) -> Outcome:
    """Run one test case under one model and classify the result."""
    result = run_under_model(source, model_name)
    if result.trapped:
        return Outcome.TRAPPED
    if result.exit_code == 0:
        return Outcome.SUPPORTED
    return Outcome.WRONG


def evaluate_matrix(models: tuple[str, ...] | None = None) -> CompatibilityMatrix:
    """Run every idiom test case under every model (the Table 3 experiment)."""
    matrix = CompatibilityMatrix()
    for model_name in models or PAPER_MODEL_ORDER:
        row: dict[Idiom, Outcome] = {}
        for case in IDIOM_TEST_CASES:
            row[case.idiom] = evaluate_case(model_name, case.source)
        matrix.outcomes[model_name] = row
    return matrix


def format_table3(matrix: CompatibilityMatrix, *, include_paper: bool = True) -> str:
    """Render the matrix in the layout of the paper's Table 3."""
    idioms = [case.idiom for case in IDIOM_TEST_CASES]
    header = f"{'MODEL':<18}" + "".join(f"{idiom.name:>11}" for idiom in idioms)
    lines = [header, "-" * len(header)]
    for model_name in matrix.outcomes:
        display = MODEL_DISPLAY_NAMES.get(model_name, model_name)
        cells = []
        for idiom in idioms:
            outcome = matrix.outcomes[model_name][idiom]
            note = get_model(model_name).int_roundtrip_note if idiom is Idiom.INT else ""
            text = "(yes)" if (outcome.supported and note) else outcome.value
            cells.append(f"{text:>11}")
        lines.append(f"{display:<18}" + "".join(cells))
        if include_paper and model_name in PAPER_TABLE3:
            expected = ["yes" if PAPER_TABLE3[model_name][idiom] else "no" for idiom in idioms]
            lines.append(f"{'  (paper)':<18}" + "".join(f"{text:>11}" for text in expected))
    return "\n".join(lines)

"""Porting-effort analysis (Table 4).

The paper ports Olden, Dhrystone and tcpdump to CHERIv2 and CHERIv3 and
counts the lines of code that change, split into two categories:

* **annotation** lines — pointers marked ``__capability`` so the hybrid ABI
  represents them as capabilities ("The first column shows the lines whose
  only changes are to mark pointers as capabilities");
* **semantic** changes — lines that must be rewritten because the target
  model cannot express what the code does (pointer subtraction, container-of
  and out-of-bounds intermediates for CHERIv2; essentially nothing for
  CHERIv3 apart from optional hardening such as the two tcpdump lines that
  gain read-only packet access).

The analyzer reproduces that accounting mechanically: annotations are counted
from pointer-typed declarations in the AST, and semantic changes are the
distinct source lines on which the idiom detector finds constructs the target
model rejects (per the measured compatibility matrix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.detector import analyze_module
from repro.analysis.idioms import Idiom
from repro.core.api import compile_for_model
from repro.minic import astnodes as ast
from repro.minic.parser import parse
from repro.minic.typesys import ArrayType, PointerType

#: idioms each CHERI variant cannot express (drives the semantic-change count).
UNSUPPORTED_IDIOMS = {
    "cheri_v2": (Idiom.SUB, Idiom.CONTAINER, Idiom.II, Idiom.DECONST, Idiom.IA, Idiom.MASK),
    "cheri_v3": (Idiom.WIDE,),
}


@dataclass
class PortingReport:
    """Table 4 row for one program and one target model."""

    program: str
    target: str
    baseline_loc: int
    annotation_lines: int
    semantic_lines: int
    hardening_lines: int = 0

    @property
    def total_lines(self) -> int:
        return self.annotation_lines + self.semantic_lines + self.hardening_lines

    def percentage(self, count: int) -> float:
        return 100.0 * count / self.baseline_loc if self.baseline_loc else 0.0

    def summary(self) -> str:
        return (
            f"{self.program} -> {self.target}: "
            f"{self.annotation_lines} annotation ({self.percentage(self.annotation_lines):.1f}%), "
            f"{self.semantic_lines + self.hardening_lines} semantic "
            f"({self.percentage(self.semantic_lines + self.hardening_lines):.1f}%), "
            f"{self.total_lines} total ({self.percentage(self.total_lines):.1f}%)"
        )


@dataclass
class PortingAnalyzer:
    """Computes porting effort for a mini-C program."""

    program: str
    source: str
    #: optional hardening lines the CHERIv3 port adds voluntarily (e.g. the
    #: two tcpdump lines switching the packet buffer to ``__input`` access).
    hardening_lines_v3: int = 0
    _annotation_cache: int | None = field(default=None, repr=False)

    # ------------------------------------------------------------------

    def baseline_loc(self) -> int:
        return self.source.count("\n") + 1

    def annotation_lines(self) -> int:
        """Count declarations that introduce pointer-typed storage.

        In the hybrid ABI each of these needs a ``__capability`` annotation;
        in the pure-capability ABI none do (the compiler makes every pointer
        a capability), which is the paper's observation that "in a pure
        capability environment, no annotation would be required".
        """
        if self._annotation_cache is not None:
            return self._annotation_cache
        unit, ctx = parse(self.source)
        count = 0
        for struct in ctx.structs.values():
            for struct_field in struct.fields:
                if self._is_pointer_like(struct_field.ctype):
                    count += 1
        for declaration in unit.declarations:
            if self._is_pointer_like(declaration.ctype):
                count += 1
        for function in unit.functions:
            if function.return_type is not None and self._is_pointer_like(function.return_type):
                count += 1
            for parameter in function.params:
                if self._is_pointer_like(parameter.ctype):
                    count += 1
            if function.body is not None:
                count += self._count_local_pointer_decls(function.body)
        self._annotation_cache = count
        return count

    @staticmethod
    def _is_pointer_like(ctype) -> bool:
        if isinstance(ctype, PointerType):
            return True
        if isinstance(ctype, ArrayType):
            return isinstance(ctype.element, PointerType)
        return False

    def _count_local_pointer_decls(self, node) -> int:
        count = 0
        if isinstance(node, ast.Declaration) and self._is_pointer_like(node.ctype):
            count += 1
        for value in vars(node).values():
            if isinstance(value, ast.Node):
                count += self._count_local_pointer_decls(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.Node):
                        count += self._count_local_pointer_decls(item)
        return count

    def semantic_lines(self, target: str) -> int:
        """Distinct source lines using idioms the target model rejects."""
        module = compile_for_model(self.source, "pdp11", optimize=True)
        analysis = analyze_module(module)
        unsupported = set(UNSUPPORTED_IDIOMS.get(target, ()))
        lines = {finding.line for finding in analysis.findings if finding.idiom in unsupported}
        return len(lines)

    def report(self, target: str) -> PortingReport:
        hardening = self.hardening_lines_v3 if target == "cheri_v3" else 0
        return PortingReport(
            program=self.program,
            target=target,
            baseline_loc=self.baseline_loc(),
            annotation_lines=self.annotation_lines(),
            semantic_lines=self.semantic_lines(target),
            hardening_lines=hardening,
        )


def format_table4(reports: list[PortingReport]) -> str:
    """Render porting reports in the layout of the paper's Table 4."""
    header = (f"{'PROGRAM':<14}{'TARGET':<10}{'Baseline LoC':>13}{'Annotation':>12}"
              f"{'Semantic':>10}{'Total':>8}{'Total %':>9}")
    lines = [header, "-" * len(header)]
    for report in reports:
        lines.append(
            f"{report.program:<14}{report.target:<10}{report.baseline_loc:>13}"
            f"{report.annotation_lines:>12}{report.semantic_lines + report.hardening_lines:>10}"
            f"{report.total_lines:>8}{report.percentage(report.total_lines):>8.1f}%"
        )
    return "\n".join(lines)

"""The paper's primary contribution as a library.

:mod:`repro.core` ties the front end, the memory models, the interpreter and
the analyses together behind a small public API:

* :class:`~repro.core.api.MemorySafeMachine` — compile and run mini-C under a
  chosen interpretation of the C abstract machine, with timing;
* :mod:`repro.core.idiom_cases` — the extracted idiom test cases of §2;
* :mod:`repro.core.compat` — the idiom-support matrix (Table 3);
* :mod:`repro.core.porting` — the porting-effort analysis (Table 4).
"""

from repro.core.api import MemorySafeMachine, run_under_model, compile_for_model
from repro.core.idiom_cases import IDIOM_TEST_CASES, IdiomTestCase
from repro.core.compat import (
    CompatibilityMatrix,
    Outcome,
    PAPER_TABLE3,
    evaluate_matrix,
    format_table3,
)
from repro.core.porting import PortingAnalyzer, PortingReport, format_table4

__all__ = [
    "MemorySafeMachine",
    "run_under_model",
    "compile_for_model",
    "IDIOM_TEST_CASES",
    "IdiomTestCase",
    "CompatibilityMatrix",
    "Outcome",
    "PAPER_TABLE3",
    "evaluate_matrix",
    "format_table3",
    "PortingAnalyzer",
    "PortingReport",
    "format_table4",
]

"""CHERI-MIPS instruction-set architecture model.

This package defines the architectural state and instruction set of the
reproduction's CHERI softcore:

* :mod:`repro.isa.capability` — the 256-bit memory capability, in both the
  CHERIv2 form ``(base, length, permissions)`` and the CHERIv3 refinement
  ``(base, length, offset, permissions)`` that the paper introduces.
* :mod:`repro.isa.registers` — the general-purpose and capability register
  files, including the special registers (PCC, default data capability, stack
  capability).
* :mod:`repro.isa.instructions` — instruction classes for the MIPS-III subset
  and the CHERI extensions, including the six new CHERIv3 instructions of
  Table 2 (CIncOffset, CSetOffset, CGetOffset, CPtrCmp, CFromPtr, CToPtr).
* :mod:`repro.isa.assembler` — a text assembler producing instruction lists
  for the simulator in :mod:`repro.sim`.
"""

from repro.isa.capability import (
    Permission,
    Capability,
    CapabilityFormat,
    NULL_CAPABILITY,
    make_default_capability,
)
from repro.isa.registers import GPR_NAMES, CAP_REG_NAMES, RegisterFile, CapabilityRegisterFile
from repro.isa.assembler import Assembler, Program

__all__ = [
    "Permission",
    "Capability",
    "CapabilityFormat",
    "NULL_CAPABILITY",
    "make_default_capability",
    "GPR_NAMES",
    "CAP_REG_NAMES",
    "RegisterFile",
    "CapabilityRegisterFile",
    "Assembler",
    "Program",
]

"""Register files of the CHERI-MIPS machine.

The machine has:

* 32 general-purpose 64-bit registers with the usual MIPS names.  ``$zero``
  is hard-wired to 0.
* 32 capability registers, plus the special capability registers the paper
  relies on: the program-counter capability (PCC), the default data
  capability (DDC, ``$c0``) through which legacy MIPS loads and stores are
  indirected, and the stack capability.
"""

from __future__ import annotations

from repro.common.bitops import to_unsigned
from repro.common.errors import SimulationError
from repro.isa.capability import Capability, NULL_CAPABILITY

#: Canonical MIPS register names, index 0..31.
GPR_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

#: Capability register names: $c0 is the default data capability (DDC),
#: $c11 is conventionally the stack capability, $c31 holds the return PCC.
CAP_REG_NAMES = tuple(f"c{i}" for i in range(32))

_GPR_INDEX = {name: i for i, name in enumerate(GPR_NAMES)}
_CAP_INDEX = {name: i for i, name in enumerate(CAP_REG_NAMES)}

#: Conventional capability register roles used by the assembler and tests.
DDC_REG = 0
STACK_CAP_REG = 11
RETURN_CAP_REG = 17
LINK_CAP_REG = 31


def gpr_index(name: str) -> int:
    """Resolve a register name (``"t0"`` or ``"$t0"`` or ``"r8"``) to an index."""
    name = name.lstrip("$").lower()
    if name in _GPR_INDEX:
        return _GPR_INDEX[name]
    if name.startswith("r") and name[1:].isdigit():
        idx = int(name[1:])
        if 0 <= idx < 32:
            return idx
    raise SimulationError(f"unknown general-purpose register {name!r}")


def cap_index(name: str) -> int:
    """Resolve a capability register name (``"c3"`` or ``"$c3"``) to an index."""
    name = name.lstrip("$").lower()
    if name in _CAP_INDEX:
        return _CAP_INDEX[name]
    raise SimulationError(f"unknown capability register {name!r}")


class RegisterFile:
    """The 32-entry general-purpose register file."""

    def __init__(self) -> None:
        self._regs = [0] * 32

    def read(self, index: int) -> int:
        if not 0 <= index < 32:
            raise SimulationError(f"GPR index out of range: {index}")
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < 32:
            raise SimulationError(f"GPR index out of range: {index}")
        if index == 0:
            return  # $zero is hard-wired
        self._regs[index] = to_unsigned(value, 64)

    def read_named(self, name: str) -> int:
        return self.read(gpr_index(name))

    def write_named(self, name: str, value: int) -> None:
        self.write(gpr_index(name), value)

    def snapshot(self) -> dict[str, int]:
        """A name → value mapping, handy for trace output and tests."""
        return {GPR_NAMES[i]: self._regs[i] for i in range(32)}


class CapabilityRegisterFile:
    """The 32-entry capability register file plus PCC."""

    def __init__(self, default_capability: Capability | None = None) -> None:
        self._regs = [NULL_CAPABILITY] * 32
        self.pcc = NULL_CAPABILITY
        if default_capability is not None:
            self._regs[DDC_REG] = default_capability
            self._regs[STACK_CAP_REG] = default_capability
            self.pcc = default_capability

    def read(self, index: int) -> Capability:
        if not 0 <= index < 32:
            raise SimulationError(f"capability register index out of range: {index}")
        return self._regs[index]

    def write(self, index: int, value: Capability) -> None:
        if not 0 <= index < 32:
            raise SimulationError(f"capability register index out of range: {index}")
        if not isinstance(value, Capability):
            raise SimulationError("capability registers only hold Capability values")
        self._regs[index] = value

    def read_named(self, name: str) -> Capability:
        return self.read(cap_index(name))

    def write_named(self, name: str, value: Capability) -> None:
        self.write(cap_index(name), value)

    @property
    def ddc(self) -> Capability:
        """The default data capability through which MIPS loads/stores go."""
        return self._regs[DDC_REG]

    @ddc.setter
    def ddc(self, value: Capability) -> None:
        self._regs[DDC_REG] = value

    def snapshot(self) -> dict[str, Capability]:
        return {CAP_REG_NAMES[i]: self._regs[i] for i in range(32)}

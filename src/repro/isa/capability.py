"""The CHERI memory capability.

A capability is a hardware-enforced, unforgeable reference to a region of
virtual memory.  Following §4 of the paper it is modelled as the tuple

    CHERIv2:  (base, length, permissions)            -- 256 bits in memory
    CHERIv3:  (base, length, offset, permissions)    -- 256 bits in memory

plus a single out-of-band *tag* bit that records whether the value is a valid
capability.  The tag lives in tagged memory (one tag per 256-bit line) when a
capability is stored, and alongside the register value when it is held in a
capability register.

Two invariants from the paper are enforced here:

* **Monotonicity** — no operation on a capability may increase its rights.
  Deriving operations (``with_base_increment``, ``with_length``,
  ``with_permissions_masked``, ``with_bounds``) can only shrink the region or
  remove permissions; anything else raises or clears the tag.
* **Unforgeability** — a capability cannot be conjured from integer data.  The
  only way to obtain a tagged capability is to derive it from another tagged
  capability (ultimately from the default data capability installed at
  process start).

The CHERIv3 *offset* is the refinement the paper contributes: the capability's
bounds stay fixed while an offset (the C pointer value relative to ``base``)
moves freely, so arbitrary pointer arithmetic — including out-of-bounds
intermediate values (idiom II) and pointer subtraction (idiom SUB) — is
representable; bounds are enforced only at dereference time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.common.bitops import to_unsigned
from repro.common.errors import BoundsViolation, PermissionViolation, TagViolation

#: Size of an in-memory capability in bytes (256 bits, as in CHERIv2/v3).
CAPABILITY_SIZE = 32

#: Natural alignment required for capability loads and stores.
CAPABILITY_ALIGNMENT = 32

_ADDRESS_MASK = (1 << 64) - 1


class Permission(enum.IntFlag):
    """Permission bits carried by a capability.

    This is the subset of the CHERI permission vector the paper's evaluation
    exercises: data load/store, capability load/store, execute, and the
    ability to seal (reserved for the object-capability extension, unused by
    the C mapping but kept so permission masking behaves like the hardware).
    """

    NONE = 0
    LOAD = 1 << 0
    STORE = 1 << 1
    EXECUTE = 1 << 2
    LOAD_CAP = 1 << 3
    STORE_CAP = 1 << 4
    SEAL = 1 << 5
    GLOBAL = 1 << 6

    @classmethod
    def all_data(cls) -> "Permission":
        """Every permission relevant to data pointers."""
        return cls.LOAD | cls.STORE | cls.LOAD_CAP | cls.STORE_CAP | cls.GLOBAL

    @classmethod
    def all(cls) -> "Permission":
        """The full permission vector of the default data capability."""
        return cls.all_data() | cls.EXECUTE | cls.SEAL

    @classmethod
    def read_only(cls) -> "Permission":
        """Permissions of an ``__input``-qualified pointer (paper §4.1)."""
        return cls.LOAD | cls.LOAD_CAP | cls.GLOBAL

    @classmethod
    def write_only(cls) -> "Permission":
        """Permissions of an ``__output``-qualified pointer (paper §4.1)."""
        return cls.STORE | cls.STORE_CAP | cls.GLOBAL


class CapabilityFormat(enum.Enum):
    """Which ISA revision's capability semantics apply."""

    CHERI_V2 = "cheriv2"
    CHERI_V3 = "cheriv3"


@dataclass(frozen=True)
class Capability:
    """An immutable capability value.

    Attributes
    ----------
    base:
        Lowest virtual address the capability grants access to.
    length:
        Size in bytes of the granted region; ``base + length`` is one past the
        last accessible byte.
    offset:
        CHERIv3 cursor relative to ``base``.  The C pointer value is
        ``base + offset``.  Under CHERIv2 semantics the offset is always zero
        and pointer arithmetic adjusts ``base``/``length`` instead.
    permissions:
        A :class:`Permission` bitmask.
    tag:
        True when the value is a valid, dereferenceable capability.  Untagged
        capabilities carry data (e.g. integers stored in ``intcap_t``) but trap
        on any memory access.
    otype:
        Object type for sealed capabilities; ``-1`` means unsealed.  Present
        for completeness of the register format; the C mapping never seals.
    """

    base: int = 0
    length: int = 0
    offset: int = 0
    permissions: Permission = Permission.NONE
    tag: bool = False
    otype: int = -1

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------

    @property
    def address(self) -> int:
        """The virtual address the capability currently points at."""
        return (self.base + self.offset) & _ADDRESS_MASK

    @property
    def top(self) -> int:
        """One past the highest address the capability grants access to."""
        return self.base + self.length

    @property
    def is_sealed(self) -> bool:
        return self.otype >= 0

    def in_bounds(self, size: int = 1, address: int | None = None) -> bool:
        """True when an access of ``size`` bytes at ``address`` is within bounds."""
        addr = self.address if address is None else address
        return self.base <= addr and addr + size <= self.top

    # ------------------------------------------------------------------
    # Guarded checks (used by the simulator and the interpreters)
    # ------------------------------------------------------------------

    def check_access(self, *, size: int, permission: Permission, address: int | None = None) -> int:
        """Validate a memory access and return the effective virtual address.

        Raises :class:`TagViolation`, :class:`PermissionViolation` or
        :class:`BoundsViolation` exactly as the hardware would trap.
        """
        addr = self.address if address is None else address
        if not self.tag:
            raise TagViolation(
                f"access via untagged capability at address {addr:#x}", address=addr, capability=self
            )
        if self.is_sealed:
            raise PermissionViolation(
                f"access via sealed capability at address {addr:#x}", address=addr, capability=self
            )
        if permission and not (self.permissions & permission):
            raise PermissionViolation(
                f"capability lacks {permission!r} for access at {addr:#x}", address=addr, capability=self
            )
        if not self.in_bounds(size, addr):
            raise BoundsViolation(
                f"access of {size} bytes at {addr:#x} outside capability "
                f"[{self.base:#x}, {self.top:#x})",
                address=addr,
                capability=self,
            )
        return addr

    # ------------------------------------------------------------------
    # Monotonic derivations
    # ------------------------------------------------------------------

    def with_offset(self, offset: int) -> "Capability":
        """CSetOffset: replace the offset.

        The offset may take any 64-bit value, including values outside the
        bounds — this is exactly the CHERIv3 relaxation that makes idioms II
        and SUB representable.  Bounds are checked only at dereference.
        """
        return replace(self, offset=to_unsigned(offset, 64) if offset >= 0 else offset)

    def with_offset_increment(self, increment: int) -> "Capability":
        """CIncOffset: add a (signed) integer to the offset."""
        return replace(self, offset=self.offset + increment)

    def with_base_increment(self, increment: int) -> "Capability":
        """CIncBase (CHERIv2 style): move the base up, shrinking the region.

        A negative increment would *increase* rights, so it clears the tag
        (the hardware raises an exception; clearing the tag plus trapping on
        use gives the same observable result and keeps this function total).
        """
        if increment < 0 or increment > self.length:
            return replace(self, tag=False)
        return replace(self, base=self.base + increment, length=self.length - increment)

    def with_length(self, length: int) -> "Capability":
        """CSetLen: shrink the length.  Growing the region clears the tag."""
        if length < 0 or length > self.length:
            return replace(self, tag=False)
        return replace(self, length=length)

    def with_bounds(self, base: int, length: int) -> "Capability":
        """CSetBounds: narrow to ``[base, base+length)``.

        The requested window must lie inside the existing bounds, otherwise
        the derivation is non-monotonic and the result is untagged.
        """
        if base < self.base or base + length > self.top or length < 0:
            return replace(self, tag=False, base=base, length=max(length, 0), offset=0)
        return replace(self, base=base, length=length, offset=0)

    def with_permissions_masked(self, permissions: Permission) -> "Capability":
        """CAndPerm: intersect the permission vector with ``permissions``."""
        return replace(self, permissions=self.permissions & permissions)

    def without_tag(self) -> "Capability":
        """CClearTag: return the same bit pattern with the tag cleared."""
        return replace(self, tag=False)

    def sealed(self, otype: int) -> "Capability":
        """Seal the capability with an object type (requires SEAL permission)."""
        if not (self.permissions & Permission.SEAL):
            raise PermissionViolation("seal requires the SEAL permission", capability=self)
        return replace(self, otype=otype)

    def unsealed(self) -> "Capability":
        """Return an unsealed copy (used by the CCall/CReturn stand-ins)."""
        return replace(self, otype=-1)

    # ------------------------------------------------------------------
    # Pointer interoperability (CFromPtr / CToPtr / CPtrCmp semantics)
    # ------------------------------------------------------------------

    def compare_key(self) -> tuple[int, int]:
        """Ordering key used by CPtrCmp.

        The instruction orders all tagged capabilities after all untagged
        capabilities (paper §4.1), then by pointer value.
        """
        return (1 if self.tag else 0, self.address)

    def equals_pointer(self, other: "Capability") -> bool:
        """CPtrCmp equality: equal when tag and pointer value agree."""
        return self.tag == other.tag and self.address == other.address

    def to_pointer(self, relative_to: "Capability") -> int:
        """CToPtr: the address expressed as an offset from ``relative_to``.

        Returns 0 when this capability is untagged or does not fall inside the
        base capability — matching the instruction's "0 if out of range" rule.
        """
        if not self.tag or not relative_to.tag:
            return 0
        if not (relative_to.base <= self.address < relative_to.top or self.address == relative_to.top):
            return 0
        return self.address - relative_to.base

    # ------------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        tag = "t" if self.tag else "-"
        return (
            f"cap[{tag}] base={self.base:#x} len={self.length:#x} "
            f"off={self.offset:#x} perms={self.permissions!r}"
        )


#: The canonical null capability: all-zero, untagged.  Arithmetic may move its
#: offset (so e.g. ``(void *)-1`` from ``mmap`` is representable) but it can
#: never become valid because no operation sets a tag.
NULL_CAPABILITY = Capability()


def make_default_capability(memory_bytes: int, *, executable: bool = True) -> Capability:
    """Build the default data capability installed when a process starts.

    It spans the whole user address space with full permissions (§4: "When a
    process starts, it has a default data capability that covers the entire
    user address space").
    """
    perms = Permission.all() if executable else Permission.all_data()
    return Capability(base=0, length=memory_bytes, offset=0, permissions=perms, tag=True)


def capability_from_int(value: int) -> Capability:
    """Materialise an integer as an untagged capability (intcap_t semantics).

    Integer values stored in a capability register are "constructed by setting
    the offset of the canonical null capability and will never compare equal
    to any valid capability" (paper §4.1).
    """
    return replace(NULL_CAPABILITY, offset=value)

"""A small two-pass text assembler for the CHERI-MIPS instruction set.

The assembler exists so that the ISA simulator can be exercised with readable
programs (both in the test suite and in the Table 2 benchmark) without a full
compiler back end.  It supports:

* every mnemonic registered in :data:`repro.isa.instructions.INSTRUCTION_SET`,
* labels (``name:``) on instructions, resolved to instruction indices,
* a ``.data`` section with ``.byte`` / ``.half`` / ``.word`` / ``.dword`` /
  ``.space`` / ``.asciiz`` / ``.align`` directives, placed at a configurable
  base address, with data labels resolved to virtual addresses,
* the ``la`` pseudo-instruction (load address of a data label), and
* ``#`` / ``;`` comments.

Operands follow MIPS conventions: ``$t0`` style registers, ``$c3`` capability
registers, decimal or ``0x`` immediates, and ``offset($base)`` memory
operands.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.isa.instructions import INSTRUCTION_SET, Instruction, Li
from repro.isa.registers import cap_index, gpr_index

_TOKEN_SPLIT = re.compile(r",\s*(?![^()]*\))")
_MEM_OPERAND = re.compile(r"^(-?\w+)?\s*\(\s*(\$?\w+)\s*\)$")


@dataclass
class Program:
    """An assembled program: instructions plus an initialised data image."""

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data: bytes = b""
    data_base: int = 0x0040_0000
    data_labels: dict[str, int] = field(default_factory=dict)

    def label_address(self, name: str) -> int:
        """Instruction index for a code label."""
        if name not in self.labels:
            raise SimulationError(f"unknown code label {name!r}")
        return self.labels[name]

    def data_address(self, name: str) -> int:
        """Virtual address of a data label."""
        if name not in self.data_labels:
            raise SimulationError(f"unknown data label {name!r}")
        return self.data_labels[name]

    def __len__(self) -> int:
        return len(self.instructions)


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, *, data_base: int = 0x0040_0000) -> None:
        self._data_base = data_base

    # ------------------------------------------------------------------

    def assemble(self, source: str) -> Program:
        """Assemble ``source`` text into a :class:`Program`."""
        lines = self._clean_lines(source)
        program = Program(data_base=self._data_base)
        data = bytearray()
        section = "text"
        pending_labels: list[str] = []

        parsed: list[tuple[str, list[str], str | None]] = []
        for line in lines:
            label, rest = self._split_label(line)
            if label is not None:
                if section == "text":
                    pending_labels.append(label)
                else:
                    program.data_labels[label] = self._data_base + len(data)
            if not rest:
                continue
            if rest.startswith("."):
                section = self._directive(rest, section, data)
                continue
            mnemonic, operands = self._split_instruction(rest)
            if section != "text":
                raise SimulationError(f"instruction {mnemonic!r} outside .text section")
            for lbl in pending_labels:
                program.labels[lbl] = len(parsed)
            pending_labels.clear()
            parsed.append((mnemonic, operands, None))

        for lbl in pending_labels:
            program.labels[lbl] = len(parsed)

        program.data = bytes(data)
        for mnemonic, operands, _ in parsed:
            program.instructions.append(self._build(mnemonic, operands, program))
        self._resolve_code_labels(program)
        return program

    # ------------------------------------------------------------------
    # Pass 1 helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _clean_lines(source: str) -> list[str]:
        lines = []
        for raw in source.splitlines():
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            if line:
                lines.append(line)
        return lines

    @staticmethod
    def _split_label(line: str) -> tuple[str | None, str]:
        if ":" in line:
            candidate, rest = line.split(":", 1)
            candidate = candidate.strip()
            if re.fullmatch(r"[A-Za-z_.$][\w.$]*", candidate):
                return candidate, rest.strip()
        return None, line

    def _directive(self, line: str, section: str, data: bytearray) -> str:
        parts = line.split(None, 1)
        name = parts[0]
        arg = parts[1].strip() if len(parts) > 1 else ""
        if name == ".text":
            return "text"
        if name == ".data":
            return "data"
        if section != "data":
            raise SimulationError(f"directive {name!r} only valid in .data section")
        if name == ".byte":
            for value in self._int_list(arg):
                data.append(value & 0xFF)
        elif name == ".half":
            for value in self._int_list(arg):
                data.extend((value & 0xFFFF).to_bytes(2, "little"))
        elif name == ".word":
            for value in self._int_list(arg):
                data.extend((value & 0xFFFFFFFF).to_bytes(4, "little"))
        elif name == ".dword":
            for value in self._int_list(arg):
                data.extend((value & ((1 << 64) - 1)).to_bytes(8, "little"))
        elif name == ".space":
            data.extend(b"\x00" * self._parse_int(arg))
        elif name == ".asciiz":
            text = arg.strip()
            if not (text.startswith('"') and text.endswith('"')):
                raise SimulationError(f".asciiz expects a quoted string, got {arg!r}")
            data.extend(text[1:-1].encode("utf-8").decode("unicode_escape").encode("latin-1"))
            data.append(0)
        elif name == ".align":
            alignment = 1 << self._parse_int(arg)
            while len(data) % alignment:
                data.append(0)
        else:
            raise SimulationError(f"unknown assembler directive {name!r}")
        return section

    @staticmethod
    def _split_instruction(line: str) -> tuple[str, list[str]]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = []
        if len(parts) > 1:
            operands = [op.strip() for op in _TOKEN_SPLIT.split(parts[1]) if op.strip()]
        return mnemonic, operands

    # ------------------------------------------------------------------
    # Pass 2: operand parsing and instruction construction
    # ------------------------------------------------------------------

    def _build(self, mnemonic: str, operands: list[str], program: Program) -> Instruction:
        if mnemonic == "la":
            return self._build_la(operands, program)
        cls = INSTRUCTION_SET.get(mnemonic)
        if cls is None:
            raise SimulationError(f"unknown instruction mnemonic {mnemonic!r}")
        kinds = cls.operand_kinds
        if len(operands) != len(kinds):
            raise SimulationError(
                f"{mnemonic} expects {len(kinds)} operands, got {len(operands)}: {operands}"
            )
        values: list = []
        for kind, text in zip(kinds, operands):
            values.append(self._parse_operand(kind, text, program))
        field_names = [f.name for f in dataclasses.fields(cls) if f.name != "label"]
        kwargs = {}
        index = 0
        for name in field_names:
            if name in kwargs:
                continue  # already filled by a memory-operand expansion
            value = values[index]
            index += 1
            if isinstance(value, tuple) and name == "offset":
                # memory operand expands to (offset, base)
                kwargs["offset"], kwargs["base"] = value
                continue
            kwargs[name] = value
        return cls(**kwargs)

    def _build_la(self, operands: list[str], program: Program) -> Instruction:
        if len(operands) != 2:
            raise SimulationError(f"la expects 2 operands, got {operands}")
        register = gpr_index(operands[0])
        symbol = operands[1]
        if symbol not in program.data_labels:
            raise SimulationError(f"la references unknown data label {symbol!r}")
        return Li(rt=register, imm=program.data_labels[symbol])

    def _parse_operand(self, kind: str, text: str, program: Program):
        if kind == "r":
            return gpr_index(text)
        if kind == "c":
            return cap_index(text)
        if kind == "i":
            if re.fullmatch(r"-?(0x[0-9a-fA-F]+|\d+)", text):
                return self._parse_int(text)
            return text  # symbolic immediates (e.g. CPtrCmp predicates)
        if kind == "l":
            if re.fullmatch(r"-?(0x[0-9a-fA-F]+|\d+)", text):
                return self._parse_int(text)
            return text  # label, resolved later
        if kind == "m":
            match = _MEM_OPERAND.match(text)
            if not match:
                raise SimulationError(f"malformed memory operand {text!r}")
            offset_text, base_text = match.groups()
            offset = self._parse_int(offset_text) if offset_text else 0
            return (offset, gpr_index(base_text))
        raise SimulationError(f"unknown operand kind {kind!r}")

    def _resolve_code_labels(self, program: Program) -> None:
        for instruction in program.instructions:
            target = getattr(instruction, "target", None)
            if isinstance(target, str):
                instruction.target = program.label_address(target)

    # ------------------------------------------------------------------

    def _int_list(self, arg: str) -> list[int]:
        return [self._parse_int(piece.strip()) for piece in arg.split(",") if piece.strip()]

    @staticmethod
    def _parse_int(text: str) -> int:
        try:
            return int(text, 0)
        except ValueError as exc:
            raise SimulationError(f"invalid integer literal {text!r}") from exc

"""Instruction set of the CHERI-MIPS machine.

The instruction set has two halves:

* a MIPS-III style 64-bit RISC subset (arithmetic, logic, shifts, loads,
  stores, branches, jumps) whose loads and stores are indirected through the
  default data capability exactly as described in §4 of the paper ("Legacy
  MIPS loads and stores are relative to the default data capability"), and
* the CHERI capability extensions, including the six instructions the paper
  adds to better support C (Table 2): ``CIncOffset``, ``CSetOffset``,
  ``CGetOffset``, ``CPtrCmp``, ``CFromPtr`` and ``CToPtr``.

Instructions are small dataclasses with an :meth:`Instruction.execute` method
that manipulates a CPU object.  The CPU (:class:`repro.sim.cpu.CheriCpu`)
provides the guarded memory-access helpers, so the capability checks live in
one place and are shared by every memory instruction.

Program counters are *instruction indices* into the assembled program rather
than byte addresses: the simulator is a functional model, and keeping the code
space abstract keeps the assembler and the loader simple without affecting any
behaviour the paper evaluates (the data address space is fully modelled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar

from repro.common.bitops import to_signed, to_unsigned
from repro.common.errors import SimulationError, TrapError
from repro.isa.capability import Capability, NULL_CAPABILITY, Permission, capability_from_int

_MASK64 = (1 << 64) - 1

#: mnemonic -> instruction class, populated by the :func:`register` decorator.
INSTRUCTION_SET: dict[str, type["Instruction"]] = {}


def register(cls: type["Instruction"]) -> type["Instruction"]:
    """Class decorator adding an instruction to :data:`INSTRUCTION_SET`."""
    mnemonic = cls.mnemonic
    if mnemonic in INSTRUCTION_SET:
        raise SimulationError(f"duplicate instruction mnemonic {mnemonic!r}")
    INSTRUCTION_SET[mnemonic] = cls
    return cls


@dataclass
class Instruction:
    """Base class of every instruction.

    ``label`` is the optional label attached to the instruction by the
    assembler (used for traces and error messages only).
    """

    mnemonic: ClassVar[str] = "<abstract>"
    #: operand categories, used by the assembler for parsing and validation:
    #: 'r' GPR, 'c' capability register, 'i' immediate, 'm' memory operand
    #: (offset(base-register)), 'l' label.
    operand_kinds: ClassVar[tuple[str, ...]] = ()
    #: latency class used by the timing model: 'alu', 'branch', 'memory',
    #: 'jump', 'cap' (capability manipulation executes in the ALU stage).
    latency_class: ClassVar[str] = "alu"

    label: str | None = field(default=None, kw_only=True)

    def execute(self, cpu) -> None:  # pragma: no cover - abstract
        raise NotImplementedError(f"{type(self).__name__} does not implement execute")

    def __str__(self) -> str:
        import dataclasses

        operand_fields = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in dataclasses.fields(self)
            if f.name != "label"
        ]
        return f"{self.mnemonic} {', '.join(operand_fields)}"


# ---------------------------------------------------------------------------
# Integer arithmetic and logic
# ---------------------------------------------------------------------------


@dataclass
class _ThreeReg(Instruction):
    rd: int = 0
    rs: int = 0
    rt: int = 0
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "r", "r")

    def _operands(self, cpu) -> tuple[int, int]:
        return cpu.gpr.read(self.rs), cpu.gpr.read(self.rt)


@dataclass
class _TwoRegImm(Instruction):
    rt: int = 0
    rs: int = 0
    imm: int = 0
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "r", "i")


@register
@dataclass
class Daddu(_ThreeReg):
    """Unsigned 64-bit addition (wraps, never traps)."""

    mnemonic: ClassVar[str] = "daddu"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        cpu.gpr.write(self.rd, (a + b) & _MASK64)


@register
@dataclass
class Dadd(_ThreeReg):
    """Signed 64-bit addition that traps on overflow.

    This models the "cheap trapping on overflow in hardware" implementation
    sketched in §3.1.1 of the paper: the MIPS heritage already distinguishes
    trapping and non-trapping adds.
    """

    mnemonic: ClassVar[str] = "dadd"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        result = to_signed(a) + to_signed(b)
        if not (-(1 << 63) <= result < (1 << 63)):
            raise TrapError("signed integer overflow in dadd", cause="overflow", pc=cpu.pc)
        cpu.gpr.write(self.rd, to_unsigned(result, 64))


@register
@dataclass
class Dsubu(_ThreeReg):
    mnemonic: ClassVar[str] = "dsubu"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        cpu.gpr.write(self.rd, (a - b) & _MASK64)


@register
@dataclass
class Dsub(_ThreeReg):
    """Signed subtraction trapping on overflow (companion to :class:`Dadd`)."""

    mnemonic: ClassVar[str] = "dsub"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        result = to_signed(a) - to_signed(b)
        if not (-(1 << 63) <= result < (1 << 63)):
            raise TrapError("signed integer overflow in dsub", cause="overflow", pc=cpu.pc)
        cpu.gpr.write(self.rd, to_unsigned(result, 64))


@register
@dataclass
class Dmulu(_ThreeReg):
    mnemonic: ClassVar[str] = "dmulu"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        cpu.gpr.write(self.rd, (a * b) & _MASK64)


@register
@dataclass
class Ddivu(_ThreeReg):
    mnemonic: ClassVar[str] = "ddivu"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        if b == 0:
            raise TrapError("division by zero", cause="divide", pc=cpu.pc)
        cpu.gpr.write(self.rd, a // b)


@register
@dataclass
class Dremu(_ThreeReg):
    mnemonic: ClassVar[str] = "dremu"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        if b == 0:
            raise TrapError("division by zero", cause="divide", pc=cpu.pc)
        cpu.gpr.write(self.rd, a % b)


@register
@dataclass
class And(_ThreeReg):
    mnemonic: ClassVar[str] = "and"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        cpu.gpr.write(self.rd, a & b)


@register
@dataclass
class Or(_ThreeReg):
    mnemonic: ClassVar[str] = "or"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        cpu.gpr.write(self.rd, a | b)


@register
@dataclass
class Xor(_ThreeReg):
    mnemonic: ClassVar[str] = "xor"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        cpu.gpr.write(self.rd, a ^ b)


@register
@dataclass
class Nor(_ThreeReg):
    mnemonic: ClassVar[str] = "nor"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        cpu.gpr.write(self.rd, ~(a | b) & _MASK64)


@register
@dataclass
class Slt(_ThreeReg):
    mnemonic: ClassVar[str] = "slt"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        cpu.gpr.write(self.rd, 1 if to_signed(a) < to_signed(b) else 0)


@register
@dataclass
class Sltu(_ThreeReg):
    mnemonic: ClassVar[str] = "sltu"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        cpu.gpr.write(self.rd, 1 if a < b else 0)


@register
@dataclass
class Dsllv(_ThreeReg):
    mnemonic: ClassVar[str] = "dsllv"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        cpu.gpr.write(self.rd, (a << (b & 63)) & _MASK64)


@register
@dataclass
class Dsrlv(_ThreeReg):
    mnemonic: ClassVar[str] = "dsrlv"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        cpu.gpr.write(self.rd, a >> (b & 63))


@register
@dataclass
class Dsrav(_ThreeReg):
    mnemonic: ClassVar[str] = "dsrav"

    def execute(self, cpu) -> None:
        a, b = self._operands(cpu)
        cpu.gpr.write(self.rd, to_unsigned(to_signed(a) >> (b & 63), 64))


@register
@dataclass
class Daddiu(_TwoRegImm):
    mnemonic: ClassVar[str] = "daddiu"

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rt, (cpu.gpr.read(self.rs) + self.imm) & _MASK64)


@register
@dataclass
class Andi(_TwoRegImm):
    mnemonic: ClassVar[str] = "andi"

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rt, cpu.gpr.read(self.rs) & to_unsigned(self.imm, 64))


@register
@dataclass
class Ori(_TwoRegImm):
    mnemonic: ClassVar[str] = "ori"

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rt, cpu.gpr.read(self.rs) | to_unsigned(self.imm, 64))


@register
@dataclass
class Xori(_TwoRegImm):
    mnemonic: ClassVar[str] = "xori"

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rt, cpu.gpr.read(self.rs) ^ to_unsigned(self.imm, 64))


@register
@dataclass
class Slti(_TwoRegImm):
    mnemonic: ClassVar[str] = "slti"

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rt, 1 if to_signed(cpu.gpr.read(self.rs)) < self.imm else 0)


@register
@dataclass
class Sltiu(_TwoRegImm):
    mnemonic: ClassVar[str] = "sltiu"

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rt, 1 if cpu.gpr.read(self.rs) < to_unsigned(self.imm, 64) else 0)


@register
@dataclass
class Dsll(_TwoRegImm):
    mnemonic: ClassVar[str] = "dsll"

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rt, (cpu.gpr.read(self.rs) << (self.imm & 63)) & _MASK64)


@register
@dataclass
class Dsrl(_TwoRegImm):
    mnemonic: ClassVar[str] = "dsrl"

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rt, cpu.gpr.read(self.rs) >> (self.imm & 63))


@register
@dataclass
class Dsra(_TwoRegImm):
    mnemonic: ClassVar[str] = "dsra"

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rt, to_unsigned(to_signed(cpu.gpr.read(self.rs)) >> (self.imm & 63), 64))


@register
@dataclass
class Li(Instruction):
    """Load-immediate pseudo-instruction (expands lui/ori sequences away)."""

    mnemonic: ClassVar[str] = "li"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "i")
    rt: int = 0
    imm: int = 0

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rt, to_unsigned(self.imm, 64))


@register
@dataclass
class Move(Instruction):
    mnemonic: ClassVar[str] = "move"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "r")
    rd: int = 0
    rs: int = 0

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rd, cpu.gpr.read(self.rs))


@register
@dataclass
class Nop(Instruction):
    mnemonic: ClassVar[str] = "nop"
    operand_kinds: ClassVar[tuple[str, ...]] = ()

    def execute(self, cpu) -> None:
        return None


# ---------------------------------------------------------------------------
# Legacy MIPS loads and stores (indirected through the default data capability)
# ---------------------------------------------------------------------------


@dataclass
class _MemoryInstruction(Instruction):
    rt: int = 0
    offset: int = 0
    base: int = 0
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "m")
    latency_class: ClassVar[str] = "memory"

    def _address(self, cpu) -> int:
        return (cpu.gpr.read(self.base) + self.offset) & _MASK64


def _make_load(name: str, size: int, signed: bool) -> type[Instruction]:
    @register
    @dataclass
    class _Load(_MemoryInstruction):
        mnemonic: ClassVar[str] = name

        def execute(self, cpu) -> None:
            value = cpu.load_via_ddc(self._address(cpu), size, signed=signed)
            cpu.gpr.write(self.rt, to_unsigned(value, 64))

    _Load.__name__ = name.capitalize()
    _Load.__qualname__ = name.capitalize()
    return _Load


def _make_store(name: str, size: int) -> type[Instruction]:
    @register
    @dataclass
    class _Store(_MemoryInstruction):
        mnemonic: ClassVar[str] = name

        def execute(self, cpu) -> None:
            cpu.store_via_ddc(self._address(cpu), size, cpu.gpr.read(self.rt))

    _Store.__name__ = name.capitalize()
    _Store.__qualname__ = name.capitalize()
    return _Store


Lb = _make_load("lb", 1, True)
Lbu = _make_load("lbu", 1, False)
Lh = _make_load("lh", 2, True)
Lhu = _make_load("lhu", 2, False)
Lw = _make_load("lw", 4, True)
Lwu = _make_load("lwu", 4, False)
Ld = _make_load("ld", 8, False)
Sb = _make_store("sb", 1)
Sh = _make_store("sh", 2)
Sw = _make_store("sw", 4)
Sd = _make_store("sd", 8)


# ---------------------------------------------------------------------------
# Branches and jumps
# ---------------------------------------------------------------------------


@dataclass
class _Branch(Instruction):
    latency_class: ClassVar[str] = "branch"


@register
@dataclass
class Beq(_Branch):
    mnemonic: ClassVar[str] = "beq"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "r", "l")
    rs: int = 0
    rt: int = 0
    target: int | str = 0

    def execute(self, cpu) -> None:
        if cpu.gpr.read(self.rs) == cpu.gpr.read(self.rt):
            cpu.branch_to(self.target)


@register
@dataclass
class Bne(_Branch):
    mnemonic: ClassVar[str] = "bne"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "r", "l")
    rs: int = 0
    rt: int = 0
    target: int | str = 0

    def execute(self, cpu) -> None:
        if cpu.gpr.read(self.rs) != cpu.gpr.read(self.rt):
            cpu.branch_to(self.target)


@dataclass
class _CompareZeroBranch(_Branch):
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "l")
    rs: int = 0
    target: int | str = 0


@register
@dataclass
class Blez(_CompareZeroBranch):
    mnemonic: ClassVar[str] = "blez"

    def execute(self, cpu) -> None:
        if to_signed(cpu.gpr.read(self.rs)) <= 0:
            cpu.branch_to(self.target)


@register
@dataclass
class Bgtz(_CompareZeroBranch):
    mnemonic: ClassVar[str] = "bgtz"

    def execute(self, cpu) -> None:
        if to_signed(cpu.gpr.read(self.rs)) > 0:
            cpu.branch_to(self.target)


@register
@dataclass
class Bltz(_CompareZeroBranch):
    mnemonic: ClassVar[str] = "bltz"

    def execute(self, cpu) -> None:
        if to_signed(cpu.gpr.read(self.rs)) < 0:
            cpu.branch_to(self.target)


@register
@dataclass
class Bgez(_CompareZeroBranch):
    mnemonic: ClassVar[str] = "bgez"

    def execute(self, cpu) -> None:
        if to_signed(cpu.gpr.read(self.rs)) >= 0:
            cpu.branch_to(self.target)


@register
@dataclass
class J(Instruction):
    mnemonic: ClassVar[str] = "j"
    operand_kinds: ClassVar[tuple[str, ...]] = ("l",)
    latency_class: ClassVar[str] = "jump"
    target: int | str = 0

    def execute(self, cpu) -> None:
        cpu.branch_to(self.target)


@register
@dataclass
class Jal(Instruction):
    mnemonic: ClassVar[str] = "jal"
    operand_kinds: ClassVar[tuple[str, ...]] = ("l",)
    latency_class: ClassVar[str] = "jump"
    target: int | str = 0

    def execute(self, cpu) -> None:
        cpu.gpr.write_named("ra", cpu.pc + 1)
        cpu.branch_to(self.target)


@register
@dataclass
class Jr(Instruction):
    mnemonic: ClassVar[str] = "jr"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r",)
    latency_class: ClassVar[str] = "jump"
    rs: int = 0

    def execute(self, cpu) -> None:
        cpu.branch_to(cpu.gpr.read(self.rs))


@register
@dataclass
class Jalr(Instruction):
    mnemonic: ClassVar[str] = "jalr"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r",)
    latency_class: ClassVar[str] = "jump"
    rs: int = 0

    def execute(self, cpu) -> None:
        cpu.gpr.write_named("ra", cpu.pc + 1)
        cpu.branch_to(cpu.gpr.read(self.rs))


@register
@dataclass
class Syscall(Instruction):
    mnemonic: ClassVar[str] = "syscall"
    operand_kinds: ClassVar[tuple[str, ...]] = ()

    def execute(self, cpu) -> None:
        cpu.syscall()


@register
@dataclass
class Break(Instruction):
    mnemonic: ClassVar[str] = "break"
    operand_kinds: ClassVar[tuple[str, ...]] = ()

    def execute(self, cpu) -> None:
        raise TrapError("break instruction executed", cause="break", pc=cpu.pc)


# ---------------------------------------------------------------------------
# CHERI capability instructions
# ---------------------------------------------------------------------------


@dataclass
class _CapInstruction(Instruction):
    latency_class: ClassVar[str] = "cap"


@register
@dataclass
class CGetBase(_CapInstruction):
    mnemonic: ClassVar[str] = "cgetbase"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "c")
    rd: int = 0
    cb: int = 0

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rd, cpu.cap.read(self.cb).base)


@register
@dataclass
class CGetLen(_CapInstruction):
    mnemonic: ClassVar[str] = "cgetlen"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "c")
    rd: int = 0
    cb: int = 0

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rd, cpu.cap.read(self.cb).length)


@register
@dataclass
class CGetOffset(_CapInstruction):
    """Table 2: returns the current offset of a capability."""

    mnemonic: ClassVar[str] = "cgetoffset"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "c")
    rd: int = 0
    cb: int = 0

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rd, to_unsigned(cpu.cap.read(self.cb).offset, 64))


@register
@dataclass
class CGetPerm(_CapInstruction):
    mnemonic: ClassVar[str] = "cgetperm"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "c")
    rd: int = 0
    cb: int = 0

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rd, int(cpu.cap.read(self.cb).permissions))


@register
@dataclass
class CGetTag(_CapInstruction):
    mnemonic: ClassVar[str] = "cgettag"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "c")
    rd: int = 0
    cb: int = 0

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rd, 1 if cpu.cap.read(self.cb).tag else 0)


@register
@dataclass
class CGetAddr(_CapInstruction):
    mnemonic: ClassVar[str] = "cgetaddr"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "c")
    rd: int = 0
    cb: int = 0

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rd, cpu.cap.read(self.cb).address)


@register
@dataclass
class CSetOffset(_CapInstruction):
    """Table 2: sets the offset (may leave the cursor out of bounds)."""

    mnemonic: ClassVar[str] = "csetoffset"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "c", "r")
    cd: int = 0
    cb: int = 0
    rt: int = 0

    def execute(self, cpu) -> None:
        value = to_signed(cpu.gpr.read(self.rt))
        cpu.cap.write(self.cd, cpu.cap.read(self.cb).with_offset(value))


@register
@dataclass
class CIncOffset(_CapInstruction):
    """Table 2: adds an integer to the offset."""

    mnemonic: ClassVar[str] = "cincoffset"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "c", "r")
    cd: int = 0
    cb: int = 0
    rt: int = 0

    def execute(self, cpu) -> None:
        value = to_signed(cpu.gpr.read(self.rt))
        cpu.cap.write(self.cd, cpu.cap.read(self.cb).with_offset_increment(value))


@register
@dataclass
class CIncBase(_CapInstruction):
    """CHERIv2-style base increment (shrinks the region, keeps the cursor).

    The paper's refinement modified CIncBase "to update the pointer such that
    the offset remained constant": the pointed-to address stays the same while
    the accessible window shrinks from below.
    """

    mnemonic: ClassVar[str] = "cincbase"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "c", "r")
    cd: int = 0
    cb: int = 0
    rt: int = 0

    def execute(self, cpu) -> None:
        increment = to_signed(cpu.gpr.read(self.rt))
        source = cpu.cap.read(self.cb)
        address = source.address
        derived = source.with_base_increment(increment)
        if derived.tag:
            derived = derived.with_offset(address - derived.base)
        cpu.cap.write(self.cd, derived)


@register
@dataclass
class CSetLen(_CapInstruction):
    mnemonic: ClassVar[str] = "csetlen"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "c", "r")
    cd: int = 0
    cb: int = 0
    rt: int = 0

    def execute(self, cpu) -> None:
        cpu.cap.write(self.cd, cpu.cap.read(self.cb).with_length(cpu.gpr.read(self.rt)))


@register
@dataclass
class CSetBounds(_CapInstruction):
    """Narrow a capability to [cursor, cursor + rt) — the allocator primitive."""

    mnemonic: ClassVar[str] = "csetbounds"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "c", "r")
    cd: int = 0
    cb: int = 0
    rt: int = 0

    def execute(self, cpu) -> None:
        source = cpu.cap.read(self.cb)
        length = cpu.gpr.read(self.rt)
        cpu.cap.write(self.cd, source.with_bounds(source.address, length))


@register
@dataclass
class CAndPerm(_CapInstruction):
    mnemonic: ClassVar[str] = "candperm"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "c", "r")
    cd: int = 0
    cb: int = 0
    rt: int = 0

    def execute(self, cpu) -> None:
        mask = Permission(cpu.gpr.read(self.rt) & int(Permission.all()))
        cpu.cap.write(self.cd, cpu.cap.read(self.cb).with_permissions_masked(mask))


@register
@dataclass
class CClearTag(_CapInstruction):
    mnemonic: ClassVar[str] = "ccleartag"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "c")
    cd: int = 0
    cb: int = 0

    def execute(self, cpu) -> None:
        cpu.cap.write(self.cd, cpu.cap.read(self.cb).without_tag())


@register
@dataclass
class CMove(_CapInstruction):
    mnemonic: ClassVar[str] = "cmove"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "c")
    cd: int = 0
    cb: int = 0

    def execute(self, cpu) -> None:
        cpu.cap.write(self.cd, cpu.cap.read(self.cb))


@register
@dataclass
class CGetPcc(_CapInstruction):
    mnemonic: ClassVar[str] = "cgetpcc"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c",)
    cd: int = 0

    def execute(self, cpu) -> None:
        cpu.cap.write(self.cd, cpu.cap.pcc)


@register
@dataclass
class CPtrCmp(_CapInstruction):
    """Table 2: compares two capabilities as if they were pointers.

    ``op`` selects the predicate (eq, ne, lt, le, ltu, leu).  Tagged
    capabilities order after untagged capabilities so that integers stored in
    capability registers (offsets of NULL) never compare equal to a valid
    pointer (paper §4.1).
    """

    mnemonic: ClassVar[str] = "cptrcmp"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "c", "c", "i")
    rd: int = 0
    cb: int = 0
    ct: int = 0
    op: int | str = "eq"

    _PREDICATES: ClassVar[dict[str, Callable[[tuple[int, int], tuple[int, int]], bool]]] = {
        "eq": lambda a, b: a == b,
        "ne": lambda a, b: a != b,
        "lt": lambda a, b: a < b,
        "le": lambda a, b: a <= b,
        "ltu": lambda a, b: a < b,
        "leu": lambda a, b: a <= b,
    }

    def execute(self, cpu) -> None:
        predicate = str(self.op)
        if predicate not in self._PREDICATES:
            raise SimulationError(f"unknown CPtrCmp predicate {predicate!r}")
        a = cpu.cap.read(self.cb).compare_key()
        b = cpu.cap.read(self.ct).compare_key()
        cpu.gpr.write(self.rd, 1 if self._PREDICATES[predicate](a, b) else 0)


@register
@dataclass
class CFromPtr(_CapInstruction):
    """Table 2: converts a MIPS pointer into a capability.

    The result is derived from the base capability ``cb`` with its offset set
    to the integer pointer.  A zero pointer produces the canonical NULL
    capability, preserving C's null-pointer semantics (paper §4.2).
    """

    mnemonic: ClassVar[str] = "cfromptr"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "c", "r")
    cd: int = 0
    cb: int = 0
    rt: int = 0

    def execute(self, cpu) -> None:
        pointer = cpu.gpr.read(self.rt)
        if pointer == 0:
            cpu.cap.write(self.cd, NULL_CAPABILITY)
        else:
            cpu.cap.write(self.cd, cpu.cap.read(self.cb).with_offset(pointer))


@register
@dataclass
class CToPtr(_CapInstruction):
    """Table 2: converts a capability into a MIPS pointer relative to ``ct``.

    Produces 0 when the capability is untagged or falls outside the base
    capability, so capability-oblivious code sees NULL rather than a forged
    address.
    """

    mnemonic: ClassVar[str] = "ctoptr"
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "c", "c")
    rd: int = 0
    cb: int = 0
    ct: int = 0

    def execute(self, cpu) -> None:
        cpu.gpr.write(self.rd, cpu.cap.read(self.cb).to_pointer(cpu.cap.read(self.ct)))


@register
@dataclass
class CSetFromInt(_CapInstruction):
    """Materialise an integer in a capability register (intcap_t support).

    Models the compiler idiom of building ``intcap_t`` values as offsets of
    the canonical NULL capability; not a hardware instruction but a pseudo-op
    the assembler accepts for writing tests and intrinsics.
    """

    mnemonic: ClassVar[str] = "cfromint"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "r")
    cd: int = 0
    rt: int = 0

    def execute(self, cpu) -> None:
        cpu.cap.write(self.cd, capability_from_int(cpu.gpr.read(self.rt)))


# -- capability-relative loads and stores -----------------------------------


@dataclass
class _CapMemory(_CapInstruction):
    rt: int = 0
    offset: int = 0
    cb: int = 0
    operand_kinds: ClassVar[tuple[str, ...]] = ("r", "i", "c")
    latency_class: ClassVar[str] = "memory"


def _make_cap_load(name: str, size: int, signed: bool) -> type[Instruction]:
    @register
    @dataclass
    class _CapLoad(_CapMemory):
        mnemonic: ClassVar[str] = name

        def execute(self, cpu) -> None:
            value = cpu.load_via_capability(self.cb, self.offset, size, signed=signed)
            cpu.gpr.write(self.rt, to_unsigned(value, 64))

    _CapLoad.__name__ = name.upper()
    _CapLoad.__qualname__ = name.upper()
    return _CapLoad


def _make_cap_store(name: str, size: int) -> type[Instruction]:
    @register
    @dataclass
    class _CapStore(_CapMemory):
        mnemonic: ClassVar[str] = name

        def execute(self, cpu) -> None:
            cpu.store_via_capability(self.cb, self.offset, size, cpu.gpr.read(self.rt))

    _CapStore.__name__ = name.upper()
    _CapStore.__qualname__ = name.upper()
    return _CapStore


Clb = _make_cap_load("clb", 1, True)
Clbu = _make_cap_load("clbu", 1, False)
Clh = _make_cap_load("clh", 2, True)
Clhu = _make_cap_load("clhu", 2, False)
Clw = _make_cap_load("clw", 4, True)
Clwu = _make_cap_load("clwu", 4, False)
Cld = _make_cap_load("cld", 8, False)
Csb = _make_cap_store("csb", 1)
Csh = _make_cap_store("csh", 2)
Csw = _make_cap_store("csw", 4)
Csd = _make_cap_store("csd", 8)


@register
@dataclass
class Clc(_CapInstruction):
    """Load a capability (with its tag) from memory."""

    mnemonic: ClassVar[str] = "clc"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "i", "c")
    latency_class: ClassVar[str] = "memory"
    cd: int = 0
    offset: int = 0
    cb: int = 0

    def execute(self, cpu) -> None:
        cpu.cap.write(self.cd, cpu.load_capability(self.cb, self.offset))


@register
@dataclass
class Csc(_CapInstruction):
    """Store a capability (with its tag) to memory."""

    mnemonic: ClassVar[str] = "csc"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "i", "c")
    latency_class: ClassVar[str] = "memory"
    cs: int = 0
    offset: int = 0
    cb: int = 0

    def execute(self, cpu) -> None:
        cpu.store_capability(self.cb, self.offset, cpu.cap.read(self.cs))


@register
@dataclass
class Cjr(_CapInstruction):
    """Capability jump: install the target capability as PCC."""

    mnemonic: ClassVar[str] = "cjr"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c",)
    latency_class: ClassVar[str] = "jump"
    cb: int = 0

    def execute(self, cpu) -> None:
        cpu.capability_jump(self.cb, link=False)


@register
@dataclass
class Cjalr(_CapInstruction):
    """Capability jump-and-link (paper §4.2): replaces PCC and saves the old
    one in a link capability register, so control cannot leave the callee's
    code capability without an explicit call or return."""

    mnemonic: ClassVar[str] = "cjalr"
    operand_kinds: ClassVar[tuple[str, ...]] = ("c", "c")
    latency_class: ClassVar[str] = "jump"
    cb: int = 0
    cd: int = 0

    def execute(self, cpu) -> None:
        cpu.capability_jump(self.cb, link=True, link_register=self.cd)

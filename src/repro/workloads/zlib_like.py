"""A zlib-style compression library (paper Figure 4).

The paper compiles zlib with a pure-capability ABI and links it against gzip
in two flavours:

* an **annotated** build whose only change is a pragma so pointers crossing
  the library interface are capabilities — "no measurable overhead for large
  files and a small overhead for small files";
* a **copying** build that preserves binary compatibility by copying
  structures whose layout changed whenever they cross the library boundary —
  "around a 21% overhead, independent of file size".

The mini-C reproduction implements an LZ77 greedy compressor/decompressor
behind a ``z_stream``-like interface with an internal ``deflate_state``
buffer, driven by a gzip-style program that streams a deterministic
synthetic "file" through the library in fixed-size chunks (one library call
per chunk, as gzip does), decompresses it and verifies the round trip.

The copying variant re-implements only the library entry points: every call
marshals the stream structure, its internal state and the data buffers into
library-private copies and marshals the results back.  Because the marshal
cost is paid per call and the number of calls grows linearly with the file,
the overhead is flat across file sizes — the mechanism behind the paper's
~21% line.  The internal-state size is scaled down together with the rest of
the workload (real zlib's deflate state is hundreds of kilobytes); the scale
is chosen so the copy-to-compress ratio matches the paper's regime, and is
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.workloads.harness import WorkloadRun, run_workload

DEFAULT_FILE_BYTES = 1024
_CHUNK = 128
_STATE_BYTES = 128
_WINDOW = 12
_MIN_MATCH = 3
_MAX_MATCH = 10

_COMMON = r"""
struct z_stream {
    unsigned char *next_in;
    unsigned char *next_out;
    long avail_in;
    long avail_out;
    long total_in;
    long total_out;
    unsigned char state[%(state_bytes)d];
};

/* ------------------------------------------------------------------ */
/* Core LZ77 compressor (the "library" internals)                      */
/* ------------------------------------------------------------------ */

long deflate_core(const unsigned char *input, long length,
                  unsigned char *output, long capacity,
                  unsigned char *state) {
    long in_pos = 0;
    long out_pos = 0;
    state[0] = state[0] + 1;       /* the state participates, minimally */
    while (in_pos < length) {
        long best_length = 0;
        long best_distance = 0;
        long window_start = in_pos - %(window)d;
        long candidate;
        if (window_start < 0) {
            window_start = 0;
        }
        for (candidate = window_start; candidate < in_pos; candidate++) {
            long match = 0;
            while (match < %(max_match)d
                   && in_pos + match < length
                   && input[candidate + match] == input[in_pos + match]) {
                match++;
            }
            if (match > best_length) {
                best_length = match;
                best_distance = in_pos - candidate;
            }
        }
        if (out_pos + 3 > capacity) {
            return -1;
        }
        if (best_length >= %(min_match)d) {
            output[out_pos] = 1;
            output[out_pos + 1] = (unsigned char)best_distance;
            output[out_pos + 2] = (unsigned char)best_length;
            out_pos += 3;
            in_pos += best_length;
        } else {
            output[out_pos] = 0;
            output[out_pos + 1] = input[in_pos];
            out_pos += 2;
            in_pos += 1;
        }
    }
    return out_pos;
}

long inflate_core(const unsigned char *input, long length,
                  unsigned char *output, long capacity,
                  unsigned char *state) {
    long in_pos = 0;
    long out_pos = 0;
    state[1] = state[1] + 1;
    while (in_pos < length) {
        int token = input[in_pos];
        if (token == 0) {
            if (out_pos + 1 > capacity) {
                return -1;
            }
            output[out_pos] = input[in_pos + 1];
            out_pos += 1;
            in_pos += 2;
        } else {
            long distance = input[in_pos + 1];
            long run = input[in_pos + 2];
            long i;
            if (out_pos + run > capacity) {
                return -1;
            }
            for (i = 0; i < run; i++) {
                output[out_pos + i] = output[out_pos - distance + i];
            }
            out_pos += run;
            in_pos += 3;
        }
    }
    return out_pos;
}
"""

_ANNOTATED_LIBRARY = r"""
/* ------------------------------------------------------------------ */
/* Library interface, annotated ABI: pointers cross the boundary as-is */
/* ------------------------------------------------------------------ */

long lib_deflate(struct z_stream *stream) {
    long produced = deflate_core(stream->next_in, stream->avail_in,
                                 stream->next_out, stream->avail_out,
                                 stream->state);
    if (produced < 0) {
        return -1;
    }
    stream->total_in += stream->avail_in;
    stream->total_out += produced;
    return produced;
}

long lib_inflate(struct z_stream *stream) {
    long produced = inflate_core(stream->next_in, stream->avail_in,
                                 stream->next_out, stream->avail_out,
                                 stream->state);
    if (produced < 0) {
        return -1;
    }
    stream->total_in += stream->avail_in;
    stream->total_out += produced;
    return produced;
}
"""

_COPYING_LIBRARY = r"""
/* ------------------------------------------------------------------ */
/* Library interface, copying ABI: the stream structure (including its */
/* internal state) and both data buffers are copied across the library */
/* boundary on every call, preserving binary compatibility.            */
/* ------------------------------------------------------------------ */

unsigned char boundary_in[%(chunk_capacity)d];
unsigned char boundary_out[%(chunk_capacity)d];
unsigned char boundary_state[%(state_bytes)d];

void boundary_copy(unsigned char *dst, const unsigned char *src, long length) {
    long i;
    for (i = 0; i < length; i++) {
        dst[i] = src[i];
    }
}

long lib_deflate(struct z_stream *stream) {
    long produced;
    boundary_copy(boundary_in, stream->next_in, stream->avail_in);
    boundary_copy(boundary_state, stream->state, %(state_bytes)d);
    produced = deflate_core(boundary_in, stream->avail_in,
                            boundary_out, stream->avail_out,
                            boundary_state);
    if (produced < 0) {
        return -1;
    }
    boundary_copy(stream->next_out, boundary_out, produced);
    boundary_copy(stream->state, boundary_state, %(state_bytes)d);
    stream->total_in += stream->avail_in;
    stream->total_out += produced;
    return produced;
}

long lib_inflate(struct z_stream *stream) {
    long produced;
    boundary_copy(boundary_in, stream->next_in, stream->avail_in);
    boundary_copy(boundary_state, stream->state, %(state_bytes)d);
    produced = inflate_core(boundary_in, stream->avail_in,
                            boundary_out, stream->avail_out,
                            boundary_state);
    if (produced < 0) {
        return -1;
    }
    boundary_copy(stream->next_out, boundary_out, produced);
    boundary_copy(stream->state, boundary_state, %(state_bytes)d);
    stream->total_in += stream->avail_in;
    stream->total_out += produced;
    return produced;
}
"""

_MAIN = r"""
/* ------------------------------------------------------------------ */
/* The gzip-style driver: streams the file chunk by chunk              */
/* ------------------------------------------------------------------ */

long fill_file(unsigned char *buffer, long length) {
    long state = 424242;
    long i;
    for (i = 0; i < length; i++) {
        /* compressible mix: runs of repeated text with pseudo-random noise */
        if ((i / 64) %% 3 == 0) {
            buffer[i] = (unsigned char)(65 + (i %% 24));
        } else {
            state = state * 279470273 %% 4294967291;
            buffer[i] = (unsigned char)(state %% 17 + 97);
        }
    }
    return length;
}

int main(void) {
    long file_bytes = %(file_bytes)d;
    long chunk = %(chunk)d;
    unsigned char *original = (unsigned char *)malloc(file_bytes);
    unsigned char *compressed = (unsigned char *)malloc(file_bytes * 2 + 64);
    unsigned char *restored = (unsigned char *)malloc(file_bytes + 64);
    long *chunk_sizes = (long *)malloc(sizeof(long) * (file_bytes / chunk + 2));
    struct z_stream stream;
    long compressed_bytes = 0;
    long chunk_count = 0;
    long consumed = 0;
    long produced;
    long restored_bytes = 0;
    long i;

    fill_file(original, file_bytes);
    memset(stream.state, 0, %(state_bytes)d);

    while (consumed < file_bytes) {
        long this_chunk = file_bytes - consumed;
        if (this_chunk > chunk) {
            this_chunk = chunk;
        }
        stream.next_in = original + consumed;
        stream.avail_in = this_chunk;
        stream.next_out = compressed + compressed_bytes;
        stream.avail_out = file_bytes * 2 + 64 - compressed_bytes;
        produced = lib_deflate(&stream);
        if (produced < 0) {
            return 2;
        }
        chunk_sizes[chunk_count] = produced;
        chunk_count++;
        compressed_bytes += produced;
        consumed += this_chunk;
    }
    mini_checkpoint(compressed_bytes);

    consumed = 0;
    for (i = 0; i < chunk_count; i++) {
        stream.next_in = compressed + consumed;
        stream.avail_in = chunk_sizes[i];
        stream.next_out = restored + restored_bytes;
        stream.avail_out = file_bytes + 64 - restored_bytes;
        produced = lib_inflate(&stream);
        if (produced < 0) {
            return 3;
        }
        consumed += chunk_sizes[i];
        restored_bytes += produced;
    }
    if (restored_bytes != file_bytes) {
        return 4;
    }
    for (i = 0; i < file_bytes; i++) {
        if (original[i] != restored[i]) {
            return 5;
        }
    }
    printf("compressed %%d -> %%d bytes in %%d chunks\n",
           (int)file_bytes, (int)compressed_bytes, (int)chunk_count);
    return 0;
}
"""


def source(*, file_bytes: int = DEFAULT_FILE_BYTES, copying: bool = False,
           chunk: int = _CHUNK) -> str:
    """The gzip-style driver plus one of the two library ABI variants."""
    params = {
        "file_bytes": file_bytes,
        "chunk": chunk,
        "window": _WINDOW,
        "min_match": _MIN_MATCH,
        "max_match": _MAX_MATCH,
        "state_bytes": _STATE_BYTES,
        "chunk_capacity": chunk * 2 + 64,
    }
    library = _COPYING_LIBRARY if copying else _ANNOTATED_LIBRARY
    return (_COMMON % params) + (library % params) + (_MAIN % params)


def run(model: str, *, file_bytes: int = DEFAULT_FILE_BYTES, copying: bool = False) -> WorkloadRun:
    """Run the compression round trip under a memory model."""
    name = "zlib-copying" if copying else "zlib"
    return run_workload(name, source(file_bytes=file_bytes, copying=copying), model)


def run_figure4(file_sizes: tuple[int, ...] = (256, 512, 1024), *, baseline_model: str = "pdp11",
                cheri_model: str = "cheri_v3") -> list[dict]:
    """Figure 4 series: overhead of the two CHERI builds vs. MIPS per file size."""
    rows = []
    for file_bytes in file_sizes:
        baseline = run(baseline_model, file_bytes=file_bytes)
        annotated = run(cheri_model, file_bytes=file_bytes)
        copying = run(cheri_model, file_bytes=file_bytes, copying=True)
        rows.append({
            "file_bytes": file_bytes,
            "baseline_cycles": baseline.cycles,
            "annotated_cycles": annotated.cycles,
            "copying_cycles": copying.cycles,
            "annotated_overhead": annotated.overhead_vs(baseline),
            "copying_overhead": copying.overhead_vs(baseline),
        })
    return rows

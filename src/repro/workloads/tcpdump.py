"""A tcpdump-style packet dissector (paper Figure 3 and the Table 4 port).

The paper measures tcpdump processing the first 100,000 packets of the
OSDI'06 wireless trace.  That trace is not available offline, so the workload
generates a deterministic synthetic trace in-memory (Ethernet / IPv4 / TCP or
UDP packets with pseudo-random sizes and fields) and dissects it the way
tcpdump's printers do: walking a cursor through the packet buffer with
pointer arithmetic and **hand-crafted bounds checks** before every field
access — the style the paper calls out as "ironically, frequently in service
of hand-crafted software bounds checking".

Two source variants are provided:

* :data:`BASELINE_SOURCE` checks remaining space with pointer subtraction
  (``end - cursor < n``), which is how the real code is written.  It runs on
  the PDP-11 model and on CHERIv3, and is the input to the porting analysis.
* :data:`CHERI_V2_SOURCE` is the CHERIv2 port: the same dissector with the
  pointer-subtraction checks rewritten to track an integer ``remaining``
  count, mirroring the ~1.6 kLoC of semantic changes the paper reports.

The dissector counts packets per protocol and checks the totals, so a run
that misparses under some model fails instead of being silently timed.
"""

from __future__ import annotations

from repro.workloads.harness import WorkloadRun, compare_models, run_workload

DEFAULT_PACKETS = 150

_COMMON = r"""
/* ------------------------------------------------------------------ */
/* Synthetic trace generation                                          */
/* ------------------------------------------------------------------ */

unsigned char trace[%(buffer_bytes)d];
long trace_length;
long generator_state;

int next_random(int limit) {
    generator_state = generator_state * 6364136223846793005 + 1442695040888963407;
    long value = (generator_state >> 17) %% limit;
    if (value < 0) {
        value = -value;
    }
    return (int)value;
}

void put_byte(long offset, int value) {
    trace[offset] = (unsigned char)(value & 255);
}

void put_be16(long offset, int value) {
    put_byte(offset, (value >> 8) & 255);
    put_byte(offset + 1, value & 255);
}

long build_packet(long offset, int index) {
    int payload = 8 + next_random(48);
    int use_tcp = next_random(100) < 70;
    int transport = use_tcp ? 20 : 8;
    int ip_total = 20 + transport + payload;
    int frame = 14 + ip_total;
    long cursor = offset;
    int i;

    put_be16(cursor, frame);              /* record header: frame length */
    cursor += 2;

    for (i = 0; i < 12; i++) {            /* MAC addresses */
        put_byte(cursor + i, next_random(256));
    }
    put_be16(cursor + 12, 2048);          /* ethertype IPv4 */
    cursor += 14;

    put_byte(cursor, 69);                 /* version 4, header length 5 */
    put_byte(cursor + 1, 0);
    put_be16(cursor + 2, ip_total);
    put_be16(cursor + 4, index);
    put_be16(cursor + 6, 0);
    put_byte(cursor + 8, 64);             /* TTL */
    put_byte(cursor + 9, use_tcp ? 6 : 17);
    put_be16(cursor + 10, 0);
    for (i = 12; i < 20; i++) {
        put_byte(cursor + i, next_random(256));
    }
    cursor += 20;

    if (use_tcp) {
        put_be16(cursor, 1024 + next_random(60000));
        put_be16(cursor + 2, next_random(2) ? 80 : 443);
        for (i = 4; i < 12; i++) {
            put_byte(cursor + i, next_random(256));
        }
        put_byte(cursor + 12, 80);        /* data offset 5 words */
        put_byte(cursor + 13, 16);        /* ACK flag */
        put_be16(cursor + 14, 8192);
        put_be16(cursor + 16, 0);
        put_be16(cursor + 18, 0);
        cursor += 20;
    } else {
        put_be16(cursor, 1024 + next_random(60000));
        put_be16(cursor + 2, 53);
        put_be16(cursor + 4, 8 + payload);
        put_be16(cursor + 6, 0);
        cursor += 8;
    }

    for (i = 0; i < payload; i++) {
        put_byte(cursor + i, next_random(256));
    }
    return cursor + payload;
}

long build_trace(int packets) {
    long offset = 0;
    int i;
    generator_state = 88172645463325252;
    for (i = 0; i < packets; i++) {
        offset = build_packet(offset, i);
    }
    return offset;
}

/* ------------------------------------------------------------------ */
/* Dissector state                                                     */
/* ------------------------------------------------------------------ */

long packets_seen;
long tcp_seen;
long udp_seen;
long other_seen;
long truncated_seen;
long octets_seen;

int read_be16(const unsigned char *p) {
    return ((int)p[0] << 8) | (int)p[1];
}
"""

_BASELINE_DISSECTOR = r"""
/* Bounds checking in the original style: pointer subtraction against the
   end of the capture buffer before every access. */

int dissect_packet(const unsigned char *frame, const unsigned char *end) {
    const unsigned char *cursor = frame;
    int ethertype;
    int header_len;
    int protocol;
    int ip_total;

    if (end - cursor < 14) {
        truncated_seen++;
        return 0;
    }
    ethertype = read_be16(cursor + 12);
    cursor += 14;
    if (ethertype != 2048) {
        other_seen++;
        return 1;
    }
    if (end - cursor < 20) {
        truncated_seen++;
        return 0;
    }
    header_len = (cursor[0] & 15) * 4;
    ip_total = read_be16(cursor + 2);
    protocol = cursor[9];
    if (end - cursor < header_len) {
        truncated_seen++;
        return 0;
    }
    cursor += header_len;
    if (protocol == 6) {
        if (end - cursor < 20) {
            truncated_seen++;
            return 0;
        }
        tcp_seen++;
        octets_seen += read_be16(cursor + 14);
    } else if (protocol == 17) {
        if (end - cursor < 8) {
            truncated_seen++;
            return 0;
        }
        udp_seen++;
        octets_seen += read_be16(cursor + 4);
    } else {
        other_seen++;
    }
    return 1;
}

void dissect_trace(const unsigned char *buffer, long length) {
    const unsigned char *cursor = buffer;
    const unsigned char *end = buffer + length;
    while (end - cursor >= 2) {
        int frame_length = read_be16(cursor);
        cursor += 2;
        if (end - cursor < frame_length) {
            truncated_seen++;
            return;
        }
        packets_seen++;
        dissect_packet(cursor, cursor + frame_length);
        cursor += frame_length;
    }
}
"""

_CHERI_V2_DISSECTOR = r"""
/* The CHERIv2 port: the same dissector with every pointer-subtraction bounds
   check rewritten to track an explicit remaining-byte count, because the
   CHERIv2 capability model cannot express pointer subtraction. */

int dissect_packet(const unsigned char *frame, long available) {
    const unsigned char *cursor = frame;
    long remaining = available;
    int ethertype;
    int header_len;
    int protocol;

    if (remaining < 14) {
        truncated_seen++;
        return 0;
    }
    ethertype = read_be16(cursor + 12);
    cursor += 14;
    remaining -= 14;
    if (ethertype != 2048) {
        other_seen++;
        return 1;
    }
    if (remaining < 20) {
        truncated_seen++;
        return 0;
    }
    header_len = (cursor[0] & 15) * 4;
    protocol = cursor[9];
    if (remaining < header_len) {
        truncated_seen++;
        return 0;
    }
    cursor += header_len;
    remaining -= header_len;
    if (protocol == 6) {
        if (remaining < 20) {
            truncated_seen++;
            return 0;
        }
        tcp_seen++;
        octets_seen += read_be16(cursor + 14);
    } else if (protocol == 17) {
        if (remaining < 8) {
            truncated_seen++;
            return 0;
        }
        udp_seen++;
        octets_seen += read_be16(cursor + 4);
    } else {
        other_seen++;
    }
    return 1;
}

void dissect_trace(const unsigned char *buffer, long length) {
    const unsigned char *cursor = buffer;
    long remaining = length;
    while (remaining >= 2) {
        int frame_length = read_be16(cursor);
        cursor += 2;
        remaining -= 2;
        if (remaining < frame_length) {
            truncated_seen++;
            return;
        }
        packets_seen++;
        dissect_packet(cursor, frame_length);
        cursor += frame_length;
        remaining -= frame_length;
    }
}
"""

_MAIN = r"""
int main(void) {
    int packets = %(packets)d;
    trace_length = build_trace(packets);
    packets_seen = 0;
    tcp_seen = 0;
    udp_seen = 0;
    other_seen = 0;
    truncated_seen = 0;
    octets_seen = 0;
    dissect_trace(trace, trace_length);
    mini_checkpoint(packets_seen);
    mini_checkpoint(tcp_seen);
    mini_checkpoint(udp_seen);
    printf("%%d packets (%%d tcp, %%d udp, %%d other, %%d truncated)\n",
           (int)packets_seen, (int)tcp_seen, (int)udp_seen,
           (int)other_seen, (int)truncated_seen);
    if (packets_seen != packets) {
        return 1;
    }
    if (tcp_seen + udp_seen + other_seen != packets) {
        return 2;
    }
    if (truncated_seen != 0) {
        return 3;
    }
    return 0;
}
"""


def _buffer_bytes(packets: int) -> int:
    # worst-case frame: 2 + 14 + 20 + 20 + 56 payload = 112 bytes
    return packets * 120 + 64


def baseline_source(*, packets: int = DEFAULT_PACKETS) -> str:
    """The original-style dissector (pointer-subtraction bounds checks)."""
    params = {"packets": packets, "buffer_bytes": _buffer_bytes(packets)}
    return (_COMMON % params) + _BASELINE_DISSECTOR + (_MAIN % params)


def cheri_v2_source(*, packets: int = DEFAULT_PACKETS) -> str:
    """The CHERIv2 port (integer remaining-length bounds checks)."""
    params = {"packets": packets, "buffer_bytes": _buffer_bytes(packets)}
    return (_COMMON % params) + _CHERI_V2_DISSECTOR + (_MAIN % params)


#: default-size sources, importable as module constants.
BASELINE_SOURCE = baseline_source()
CHERI_V2_SOURCE = cheri_v2_source()

#: the paper's CHERIv3 port adds two lines so tcpdump only has read-only
#: access to the packet being parsed (the ``__input`` qualifier).
HARDENING_LINES_V3 = 2


def run(model: str, *, packets: int = DEFAULT_PACKETS) -> WorkloadRun:
    """Run the dissector under one model, using the CHERIv2 port when needed."""
    source = cheri_v2_source(packets=packets) if model == "cheri_v2" \
        else baseline_source(packets=packets)
    return run_workload("tcpdump", source, model)


def run_figure3(models: tuple[str, ...] = ("pdp11", "cheri_v2", "cheri_v3"),
                *, packets: int = DEFAULT_PACKETS) -> dict[str, WorkloadRun]:
    """All Figure 3 bars: MIPS, CHERIv2 (ported source) and CHERIv3."""
    sources = {"default": baseline_source(packets=packets),
               "cheri_v2": cheri_v2_source(packets=packets)}
    return compare_models("tcpdump", sources, models)

"""Workloads used by the paper's whole-program evaluation (§5.2).

Each module provides mini-C sources and a ``run`` helper:

* :mod:`repro.workloads.olden` — the four Olden kernels the paper reports in
  Figure 1 (bisort, mst, treeadd, perimeter): pointer-based data structures,
  the worst case for 256-bit capabilities;
* :mod:`repro.workloads.dhrystone` — the integer/string benchmark of
  Figure 2;
* :mod:`repro.workloads.tcpdump` — a packet dissector over a synthetic
  trace, standing in for tcpdump processing the OSDI'06 trace (Figure 3 and
  the porting study in Table 4);
* :mod:`repro.workloads.zlib_like` — an LZ77-style compressor with both the
  annotated and the structure-copying library ABI of Figure 4.
"""

from repro.workloads.harness import WorkloadRun, run_workload, compare_models
from repro.workloads import olden, dhrystone, tcpdump, zlib_like

__all__ = [
    "WorkloadRun",
    "run_workload",
    "compare_models",
    "olden",
    "dhrystone",
    "tcpdump",
    "zlib_like",
]

"""Dhrystone (paper Figure 2).

Dhrystone is the classic integer benchmark: a fixed mix of assignments,
control flow, procedure calls, string copies/comparisons and one small
record structure.  Pointer-dense data structures are absent, so the paper
finds CHERI runs "around 2% faster ... well within the margin of error" —
the expected shape is *no meaningful difference* between the MIPS ABI and
either capability ABI.

The mini-C version is a condensation of the reference benchmark: the global
record, the character/string globals, and procedures modelled on Proc1-Proc8
and Func1-Func3, iterated ``runs`` times.  The paper runs 500,000 iterations
on the FPGA; the simulated default is smaller and configurable.
"""

from __future__ import annotations

from repro.workloads.harness import WorkloadRun, run_workload

DEFAULT_RUNS = 400

_TEMPLATE = r"""
struct record {
    struct record *next;
    int discriminant;
    int enum_component;
    int int_component;
    char string_component[32];
};

struct record *record_glob;
struct record *next_record_glob;
int int_glob;
int bool_glob;
char char1_glob;
char char2_glob;
int array1_glob[64];
int array2_glob[64];

int func1(int ch1, int ch2) {
    int local = ch1;
    if (local != ch2) {
        return 1;
    }
    char1_glob = local;
    return 0;
}

int func2(char *str1, char *str2) {
    int index = 1;
    int captured = 0;
    while (index <= 1) {
        if (func1(str1[index], str2[index + 1]) == 0) {
            captured = 'A';
            index++;
        } else {
            index++;
        }
    }
    if (captured >= 'W' && captured <= 'Z') {
        index = 7;
    }
    if (captured == 'R') {
        return 1;
    }
    if (strcmp(str1, str2) > 0) {
        index += 7;
        int_glob = index;
        return 1;
    }
    return 0;
}

int func3(int value) {
    return value == 2 ? 1 : 0;
}

void proc7(int in1, int in2, int *out) {
    int local = in1 + 2;
    *out = in2 + local;
}

void proc8(int *arr1, int *arr2, int index, int value) {
    int local = index + 5;
    arr1[local] = value;
    arr1[local + 1] = arr1[local];
    arr1[local + 30] = local;
    arr2[local] = local;
    arr2[local + 1] = arr2[local] + 1;
    int_glob = 5;
}

void proc6(int enum_in, int *enum_out) {
    *enum_out = enum_in;
    if (!func3(enum_in)) {
        *enum_out = 3;
    }
    if (enum_in == 0) {
        *enum_out = 0;
    } else if (enum_in == 2) {
        *enum_out = bool_glob ? 0 : 3;
    } else {
        *enum_out = 2;
    }
}

void proc5(void) {
    char1_glob = 'A';
    bool_glob = 0;
}

void proc4(void) {
    int local = char1_glob == 'A';
    local = local | bool_glob;
    char2_glob = 'B';
}

void proc3(struct record **target) {
    if (record_glob != 0) {
        *target = record_glob->next;
    }
    proc7(10, int_glob, &record_glob->int_component);
}

void proc2(int *value) {
    int local = *value + 10;
    int done = 0;
    while (!done) {
        if (char1_glob == 'A') {
            local -= 1;
            *value = local - int_glob;
            done = 1;
        } else {
            done = 1;
        }
    }
}

void proc1(struct record *ptr) {
    struct record *next = ptr->next;
    next->int_component = ptr->int_component;
    next->discriminant = ptr->discriminant;
    next->next = ptr->next;
    proc3(&next->next);
    if (next->discriminant == 0) {
        next->int_component = 6;
        proc6(ptr->enum_component, &next->enum_component);
        proc7(next->int_component, 10, &next->int_component);
    } else {
        memcpy(ptr, next, sizeof(struct record));
    }
}

int main(void) {
    int runs = %(runs)d;
    int run_index;
    int int1;
    int int2;
    int int3;
    char string1[32];
    char string2[32];

    record_glob = (struct record *)malloc(sizeof(struct record));
    next_record_glob = (struct record *)malloc(sizeof(struct record));
    record_glob->next = next_record_glob;
    next_record_glob->next = record_glob;
    record_glob->discriminant = 0;
    record_glob->enum_component = 2;
    record_glob->int_component = 40;
    next_record_glob->discriminant = 0;
    next_record_glob->enum_component = 1;
    next_record_glob->int_component = 7;
    strcpy(record_glob->string_component, "DHRYSTONE PROGRAM SOME STRING");
    strcpy(string1, "DHRYSTONE PROGRAM 1ST STRING");

    int_glob = 0;
    bool_glob = 0;
    char1_glob = 'A';
    char2_glob = 'B';

    for (run_index = 0; run_index < runs; run_index++) {
        proc5();
        proc4();
        int1 = 2;
        int2 = 3;
        strcpy(string2, "DHRYSTONE PROGRAM 2ND STRING");
        bool_glob = !func2(string1, string2);
        while (int1 < int2) {
            int3 = 5 * int1 - int2;
            proc7(int1, int2, &int3);
            int1 += 1;
        }
        proc8(array1_glob, array2_glob, int1, int3);
        proc1(record_glob);
        if (char2_glob >= 'A') {
            int2 = func3(2) ? 7 : 3;
        }
        int2 = int2 * int1;
        int1 = int2 / int3;
        int2 = 7 * (int2 - int3) - int1;
        proc2(&int1);
    }

    mini_checkpoint(int_glob);
    mini_checkpoint(int1);
    /* The reference benchmark's self-check values. */
    if (int_glob != 5) {
        return 1;
    }
    if (char1_glob != 'A' || char2_glob != 'B') {
        return 2;
    }
    return 0;
}
"""


def source(*, runs: int = DEFAULT_RUNS) -> str:
    """The Dhrystone program with the given iteration count."""
    return _TEMPLATE % {"runs": runs}


def run(model: str, *, runs: int = DEFAULT_RUNS) -> WorkloadRun:
    """Run Dhrystone under a memory model and return the timed result."""
    return run_workload("dhrystone", source(runs=runs), model)


def dhrystones_per_second(workload_run: WorkloadRun, *, runs: int = DEFAULT_RUNS,
                          clock_hz: int = 100_000_000) -> float:
    """Convert a run into the Dhrystones-per-second metric Figure 2 plots."""
    if workload_run.cycles == 0:
        return 0.0
    seconds = workload_run.cycles / clock_hz
    return runs / seconds

"""Olden ``treeadd``: build a balanced binary tree and sum it repeatedly.

This is the most faithful of the four kernels: the original treeadd also
builds a perfect binary tree of heap nodes and adds up the node values with a
recursive walk.  Every node holds two child pointers, so the node size goes
from 24 bytes under the MIPS ABI to 80 bytes under the capability ABI — the
cache-footprint blow-up the paper measures.
"""

from __future__ import annotations

from repro.workloads.harness import WorkloadRun, run_workload

#: tree depth / number of summation passes used by the Figure 1 benchmark.
DEFAULT_DEPTH = 10
DEFAULT_PASSES = 3

#: the closer-to-paper problem size enabled by the interpreter perf work
#: (PR 2): 4095 heap nodes instead of 1023.  Golden metrics for this size are
#: pinned in tests/test_scaled_workloads.py; scale via
#: ``treeadd.source(depth=treeadd.DEEP_DEPTH, passes=treeadd.DEEP_PASSES)``.
DEEP_DEPTH = 12
DEEP_PASSES = 2

_TEMPLATE = r"""
struct tree {
    struct tree *left;
    struct tree *right;
    long value;
};

struct tree *build(int depth) {
    struct tree *node = (struct tree *)malloc(sizeof(struct tree));
    node->value = 1;
    node->left = 0;
    node->right = 0;
    if (depth > 1) {
        node->left = build(depth - 1);
        node->right = build(depth - 1);
    }
    return node;
}

long sum_tree(struct tree *node) {
    if (node == 0) {
        return 0;
    }
    return node->value + sum_tree(node->left) + sum_tree(node->right);
}

int main(void) {
    int depth = %(depth)d;
    int passes = %(passes)d;
    long expected_nodes = (1L << depth) - 1;
    struct tree *root = build(depth);
    long total = 0;
    int pass;
    for (pass = 0; pass < passes; pass++) {
        total += sum_tree(root);
    }
    mini_checkpoint(total);
    return total == passes * expected_nodes ? 0 : 1;
}
"""


def source(*, depth: int = DEFAULT_DEPTH, passes: int = DEFAULT_PASSES) -> str:
    """The treeadd program with the given tree depth and pass count."""
    return _TEMPLATE % {"depth": depth, "passes": passes}


def run(model: str, *, depth: int = DEFAULT_DEPTH, passes: int = DEFAULT_PASSES) -> WorkloadRun:
    """Run treeadd under a memory model and return the timed result."""
    return run_workload("treeadd", source(depth=depth, passes=passes), model)

"""Olden ``perimeter``: quadtree construction and traversal.

The original perimeter builds a quadtree representation of a raster image and
computes the perimeter of the black region by visiting neighbouring leaves.
The mini-C version builds the same four-children-per-node quadtree over a
deterministic synthetic image and computes the perimeter contribution of each
black leaf against its immediate siblings — the full Olden neighbour-finding
machinery (parent pointers plus direction tables) is simplified to a
recursive accumulation, which keeps the structure (a deep tree of 5-pointer
nodes) and the traversal pattern (every node visited twice) intact.

Verification: the black-area count is also computed and checked against a
closed-form value for the synthetic image.
"""

from __future__ import annotations

from repro.workloads.harness import WorkloadRun, run_workload

DEFAULT_DEPTH = 5

_TEMPLATE = r"""
struct quad {
    struct quad *nw;
    struct quad *ne;
    struct quad *sw;
    struct quad *se;
    int color;          /* 0 white, 1 black, 2 grey (internal) */
    int size;
};

/* Deterministic image: a diagonal band of black pixels. */
int pixel_black(int x, int y, int extent) {
    int band = extent / 4 + 1;
    int delta = x - y;
    if (delta < 0) {
        delta = -delta;
    }
    return delta < band ? 1 : 0;
}

struct quad *build(int x, int y, int extent, int depth) {
    struct quad *node = (struct quad *)malloc(sizeof(struct quad));
    node->size = extent;
    node->nw = 0;
    node->ne = 0;
    node->sw = 0;
    node->se = 0;
    if (depth == 0) {
        node->color = pixel_black(x, y, extent);
        return node;
    }
    node->color = 2;
    node->nw = build(x, y, extent / 2, depth - 1);
    node->ne = build(x + extent / 2, y, extent / 2, depth - 1);
    node->sw = build(x, y + extent / 2, extent / 2, depth - 1);
    node->se = build(x + extent / 2, y + extent / 2, extent / 2, depth - 1);
    return node;
}

long black_area(struct quad *node) {
    if (node == 0) {
        return 0;
    }
    if (node->color == 1) {
        return (long)node->size * node->size;
    }
    if (node->color == 0) {
        return 0;
    }
    return black_area(node->nw) + black_area(node->ne)
         + black_area(node->sw) + black_area(node->se);
}

/* Perimeter contribution: each black leaf contributes its four sides minus
   shared sides with black siblings inside the same quadrant. */
long perimeter(struct quad *node) {
    long total;
    if (node == 0) {
        return 0;
    }
    if (node->color == 1) {
        return 4L * node->size;
    }
    if (node->color == 0) {
        return 0;
    }
    total = perimeter(node->nw) + perimeter(node->ne)
          + perimeter(node->sw) + perimeter(node->se);
    if (node->nw != 0 && node->ne != 0 && node->nw->color == 1 && node->ne->color == 1) {
        total -= 2L * node->nw->size;
    }
    if (node->sw != 0 && node->se != 0 && node->sw->color == 1 && node->se->color == 1) {
        total -= 2L * node->sw->size;
    }
    if (node->nw != 0 && node->sw != 0 && node->nw->color == 1 && node->sw->color == 1) {
        total -= 2L * node->nw->size;
    }
    if (node->ne != 0 && node->se != 0 && node->ne->color == 1 && node->se->color == 1) {
        total -= 2L * node->ne->size;
    }
    return total;
}

long reference_area(int extent, int leaf) {
    long area = 0;
    int x;
    int y;
    for (x = 0; x < extent; x += leaf) {
        for (y = 0; y < extent; y += leaf) {
            if (pixel_black(x, y, leaf)) {
                area += (long)leaf * leaf;
            }
        }
    }
    return area;
}

int main(void) {
    int depth = %(depth)d;
    int extent = 1 << depth;
    struct quad *root = build(0, 0, extent, depth);
    long area = black_area(root);
    long edge = perimeter(root);
    long expected = reference_area(extent, 1);
    mini_checkpoint(edge);
    mini_checkpoint(area);
    if (edge <= 0) {
        return 2;
    }
    return area == expected ? 0 : 1;
}
"""


def source(*, depth: int = DEFAULT_DEPTH) -> str:
    """The perimeter program over a quadtree of the given depth."""
    return _TEMPLATE % {"depth": depth}


def run(model: str, *, depth: int = DEFAULT_DEPTH) -> WorkloadRun:
    """Run perimeter under a memory model and return the timed result."""
    return run_workload("perimeter", source(depth=depth), model)

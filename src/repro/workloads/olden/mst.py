"""Olden ``mst``: minimum spanning tree over a pointer-linked graph.

The original mst builds a graph whose adjacency structure lives in per-vertex
hash tables and runs a Prim-style algorithm.  The mini-C version keeps the
pointer-linked adjacency lists (one heap allocation per vertex and per edge)
and computes the MST with Prim's algorithm over the vertex array, which
preserves the workload's character: the inner loop chases vertex and edge
pointers with little locality.

Simplification vs. Olden: adjacency lists replace the per-vertex hash tables
and the vertex set is scanned linearly instead of through the blocked
structure Olden uses.  The MST weight is checked against a value computed by
a second, independent pass (Prim restarted from a different vertex must give
the same total weight for a connected graph with distinct edge weights).
"""

from __future__ import annotations

from repro.workloads.harness import WorkloadRun, run_workload

DEFAULT_VERTICES = 72

_TEMPLATE = r"""
struct edge {
    struct edge *next;
    int target;
    long weight;
};

struct vertex {
    struct edge *adjacency;
    long best;
    int in_tree;
};

struct vertex *graph;
int vertex_count;

long edge_weight(int a, int b) {
    long mixed = (long)a * 1021 + (long)b * 2039;
    long hashed = (mixed * 2654435761) %% 16384;
    if (hashed < 0) {
        hashed = -hashed;
    }
    return 1 + hashed;
}

void add_edge(int from, int to, long weight) {
    struct edge *fresh = (struct edge *)malloc(sizeof(struct edge));
    fresh->target = to;
    fresh->weight = weight;
    fresh->next = graph[from].adjacency;
    graph[from].adjacency = fresh;
}

void build_graph(int count) {
    int i;
    int j;
    graph = (struct vertex *)malloc(sizeof(struct vertex) * count);
    vertex_count = count;
    for (i = 0; i < count; i++) {
        graph[i].adjacency = 0;
        graph[i].best = 0;
        graph[i].in_tree = 0;
    }
    for (i = 0; i < count; i++) {
        /* ring edges keep the graph connected; chords add pointer chasing */
        long ring = edge_weight(i, (i + 1) %% count);
        add_edge(i, (i + 1) %% count, ring);
        add_edge((i + 1) %% count, i, ring);
        for (j = 2; j < 5; j++) {
            int other = (i * j + 7) %% count;
            if (other != i) {
                long weight = edge_weight(i, other);
                add_edge(i, other, weight);
                add_edge(other, i, weight);
            }
        }
    }
}

long prim(int start) {
    long total = 0;
    long infinity = 1073741824;
    int i;
    int added;
    for (i = 0; i < vertex_count; i++) {
        graph[i].best = infinity;
        graph[i].in_tree = 0;
    }
    graph[start].best = 0;
    for (added = 0; added < vertex_count; added++) {
        int chosen = -1;
        long chosen_cost = infinity;
        struct edge *cursor;
        for (i = 0; i < vertex_count; i++) {
            if (!graph[i].in_tree && graph[i].best < chosen_cost) {
                chosen = i;
                chosen_cost = graph[i].best;
            }
        }
        if (chosen < 0) {
            return -1;          /* disconnected graph */
        }
        graph[chosen].in_tree = 1;
        total += chosen_cost;
        for (cursor = graph[chosen].adjacency; cursor != 0; cursor = cursor->next) {
            if (!graph[cursor->target].in_tree && cursor->weight < graph[cursor->target].best) {
                graph[cursor->target].best = cursor->weight;
            }
        }
    }
    return total;
}

int main(void) {
    int count = %(vertices)d;
    long weight_a;
    long weight_b;
    build_graph(count);
    weight_a = prim(0);
    weight_b = prim(count / 2);
    mini_checkpoint(weight_a);
    if (weight_a <= 0) {
        return 2;
    }
    return weight_a == weight_b ? 0 : 1;
}
"""


def source(*, vertices: int = DEFAULT_VERTICES) -> str:
    """The mst program over a graph of ``vertices`` vertices."""
    return _TEMPLATE % {"vertices": vertices}


def run(model: str, *, vertices: int = DEFAULT_VERTICES) -> WorkloadRun:
    """Run mst under a memory model and return the timed result."""
    return run_workload("mst", source(vertices=vertices), model)

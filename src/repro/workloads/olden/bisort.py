"""Olden ``bisort``: sort a pointer-based structure by relinking nodes.

The original bisort builds a random binary tree and bitonic-sorts it by
recursively swapping subtree pointers.  mini-C reproduces the same workload
character — allocate N heap nodes, then sort them purely by rewriting ``next``
pointers with a recursive merge sort — which preserves the properties the
paper's Figure 1 depends on: one pointer per node dominating the node size,
and data-dependent pointer chasing with no spatial locality.

Simplification vs. Olden: the structure is a singly linked list rather than a
bitonic tree; the allocation count, pointer density and access pattern are
comparable, and the result is verified (the list must come out sorted and be
a permutation of the input).
"""

from __future__ import annotations

from repro.workloads.harness import WorkloadRun, run_workload

DEFAULT_COUNT = 384

_TEMPLATE = r"""
struct node {
    struct node *next;
    long key;
};

/* Deterministic pseudo-random keys (xorshift-style LCG). */
long next_key(long seed) {
    return (seed * 6364136223846793005 + 1442695040888963407) %% 1000003;
}

struct node *make_list(int count) {
    struct node *head = 0;
    long seed = 12345;
    int i;
    for (i = 0; i < count; i++) {
        struct node *fresh = (struct node *)malloc(sizeof(struct node));
        seed = next_key(seed);
        fresh->key = seed;
        fresh->next = head;
        head = fresh;
    }
    return head;
}

/* Split the list into two halves by alternating nodes. */
struct node *split_alternate(struct node *head, struct node **other) {
    struct node *left = 0;
    struct node *right = 0;
    int toggle = 0;
    while (head != 0) {
        struct node *rest = head->next;
        if (toggle == 0) {
            head->next = left;
            left = head;
        } else {
            head->next = right;
            right = head;
        }
        toggle = 1 - toggle;
        head = rest;
    }
    *other = right;
    return left;
}

struct node *merge(struct node *a, struct node *b) {
    struct node *head = 0;
    struct node *tail = 0;
    while (a != 0 && b != 0) {
        struct node *pick;
        if (a->key <= b->key) {
            pick = a;
            a = a->next;
        } else {
            pick = b;
            b = b->next;
        }
        if (tail == 0) {
            head = pick;
        } else {
            tail->next = pick;
        }
        tail = pick;
    }
    if (tail == 0) {
        return a != 0 ? a : b;
    }
    tail->next = a != 0 ? a : b;
    return head;
}

struct node *sort_list(struct node *head) {
    struct node *right;
    struct node *left;
    if (head == 0 || head->next == 0) {
        return head;
    }
    left = split_alternate(head, &right);
    return merge(sort_list(left), sort_list(right));
}

int main(void) {
    int count = %(count)d;
    struct node *head = make_list(count);
    long checksum_before = 0;
    long checksum_after = 0;
    long previous = -4611686018427387904;   /* below any generated key */
    int seen = 0;
    struct node *cursor;
    for (cursor = head; cursor != 0; cursor = cursor->next) {
        checksum_before += cursor->key;
    }
    head = sort_list(head);
    for (cursor = head; cursor != 0; cursor = cursor->next) {
        if (cursor->key < previous) {
            return 2;           /* not sorted */
        }
        previous = cursor->key;
        checksum_after += cursor->key;
        seen++;
    }
    mini_checkpoint(checksum_after);
    if (seen != count) {
        return 3;               /* lost or duplicated nodes */
    }
    return checksum_before == checksum_after ? 0 : 1;
}
"""


def source(*, count: int = DEFAULT_COUNT) -> str:
    """The bisort program sorting ``count`` heap nodes."""
    return _TEMPLATE % {"count": count}


def run(model: str, *, count: int = DEFAULT_COUNT) -> WorkloadRun:
    """Run bisort under a memory model and return the timed result."""
    return run_workload("bisort", source(count=count), model)

"""Olden pointer-kernel benchmarks (paper Figure 1).

The Olden suite "is heavy in pointer use and so demonstrates a worst case for
CHERI" (§5.2): its kernels build and walk linked data structures, so the
4× larger capability pointers inflate every node and the extra cache misses
dominate.  The four kernels the paper reports are reproduced here as mini-C
programs with the same data-structure shape (binary trees, linked lists, an
adjacency-list graph, a quadtree); where the original Olden code relies on
features outside mini-C the kernel is simplified while keeping its pointer
behaviour (each module's docstring records the simplification).

Every kernel verifies its own result and returns 0 from ``main`` on success,
so a run that silently computes the wrong answer under some memory model is
detected rather than timed.
"""

from repro.workloads.olden import bisort, mst, perimeter, treeadd

#: kernels in the order Figure 1 plots them.
KERNELS = {
    "bisort": bisort,
    "mst": mst,
    "treeadd": treeadd,
    "perimeter": perimeter,
}

__all__ = ["bisort", "mst", "perimeter", "treeadd", "KERNELS"]

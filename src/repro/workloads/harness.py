"""Common harness for running workloads under different memory models.

The harness mirrors the paper's measurement setup: the same program is built
for the MIPS ABI (8-byte pointers, no checks) and the two capability ABIs
(256-bit capabilities, checks on every access), run on the same simulated
memory hierarchy, and compared in simulated cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import InterpreterError
from repro.core.api import compile_for_model
from repro.interp.machine import AbstractMachine, ExecutionResult
from repro.interp.models import get_model


@dataclass
class WorkloadRun:
    """One workload execution under one memory model."""

    workload: str
    model: str
    result: ExecutionResult

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def instructions(self) -> int:
        return self.result.instructions

    @property
    def ok(self) -> bool:
        return not self.result.trapped

    def overhead_vs(self, baseline: "WorkloadRun") -> float:
        """Relative cycle overhead against a baseline run (0.04 == +4%)."""
        if baseline.cycles == 0:
            return 0.0
        return (self.cycles - baseline.cycles) / baseline.cycles


def run_workload(name: str, source: str, model: str, *, entry: str = "main",
                 max_instructions: int = 80_000_000) -> WorkloadRun:
    """Compile ``source`` for ``model`` and execute it, failing on traps."""
    module = compile_for_model(source, model)
    machine = AbstractMachine(module, get_model(model), max_instructions=max_instructions)
    result = machine.run(entry)
    if result.trapped:
        raise InterpreterError(
            f"workload {name!r} trapped under model {model!r}: {result.trap}"
        )
    return WorkloadRun(workload=name, model=model, result=result)


def compare_models(name: str, sources: dict[str, str], models: tuple[str, ...],
                   *, entry: str = "main") -> dict[str, WorkloadRun]:
    """Run a workload under several models.

    ``sources`` maps a model name to the source variant to use for it, with
    ``"default"`` as the fallback — this is how the CHERIv2 port of tcpdump
    (which needs its pointer-subtraction bounds checks rewritten) is swapped
    in only for the CHERIv2 run.
    """
    runs: dict[str, WorkloadRun] = {}
    for model in models:
        source = sources.get(model, sources["default"])
        runs[model] = run_workload(name, source, model, entry=entry)
    return runs

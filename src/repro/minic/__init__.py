"""mini-C: the reproduction's C front end.

The paper's analysis and evaluation both need a C implementation whose
internals are visible: the idiom survey (Table 1) inspects a typed IR for
pointer/integer round trips, and the abstract-machine comparison (Table 3)
needs to execute C programs under different interpretations of the C abstract
machine.  mini-C is a C subset large enough to express the paper's idiom test
cases and its workloads (Olden kernels, Dhrystone, a tcpdump-style packet
dissector, a zlib-style compressor):

* types: ``void``, ``char``, ``short``, ``int``, ``long``, ``long long``,
  signed/unsigned, pointers, 1-D arrays, ``struct``, ``union``, and the
  qualifiers ``const`` plus the CHERI extensions ``__capability``,
  ``__input`` and ``__output``;
* statements: blocks, declarations, ``if``/``else``, ``while``, ``for``,
  ``return``, ``break``, ``continue``;
* expressions: the usual arithmetic/logical/bitwise operators, assignment and
  compound assignment, pre/post increment, casts, ``sizeof``, calls, array
  subscripts, member access, address-of and dereference, and the conditional
  operator;
* a small intrinsic library (``malloc``, ``free``, ``memcpy``, ``memset``,
  ``strlen``, ``strcmp``, ``printf``-style output, ...) provided by the
  interpreter runtime.

The front end lowers programs to a typed IR (:mod:`repro.minic.ir`) in which
type-safe pointer arithmetic is explicit (``gep``/``field``/``ptrdiff``) and
escapes from the pointer type system are visible as ``ptrtoint``/``inttoptr``
pairs — exactly the property of LLVM IR the paper's modified Clang relies on.
"""

from repro.minic.typesys import (
    CType,
    IntType,
    VoidType,
    PointerType,
    ArrayType,
    StructType,
    FunctionType,
    TypeContext,
    Qualifiers,
)
from repro.minic.lexer import Lexer, Token, TokenKind
from repro.minic.parser import Parser, parse
from repro.minic.ir import Module, Function, Instr, Opcode, Temp, Const, GlobalRef
from repro.minic.irgen import IrGenerator, compile_source
from repro.minic.optimizer import optimize_module
from repro.minic.unparse import unparse

__all__ = [
    "CType",
    "IntType",
    "VoidType",
    "PointerType",
    "ArrayType",
    "StructType",
    "FunctionType",
    "TypeContext",
    "Qualifiers",
    "Lexer",
    "Token",
    "TokenKind",
    "Parser",
    "parse",
    "Module",
    "Function",
    "Instr",
    "Opcode",
    "Temp",
    "Const",
    "GlobalRef",
    "IrGenerator",
    "compile_source",
    "optimize_module",
    "unparse",
]

"""Lowering from the mini-C AST to the typed IR.

The generator performs semantic analysis (symbol resolution, type checking,
the usual conversions) while emitting IR, so every type error surfaces as a
:class:`~repro.common.errors.TypeCheckError` with a source line.

The properties the rest of the system relies on:

* all *type-safe* pointer arithmetic is emitted as ``gep`` / ``field`` /
  ``ptrdiff`` instructions carrying the element/struct types involved;
* every escape from the pointer type system — casting a pointer to an
  integer, reconstructing a pointer from an integer, removing ``const`` —
  is emitted as an explicit ``ptrtoint`` / ``inttoptr`` / ``bitcast`` whose
  attributes record what happened.  The idiom detector (Table 1) and the
  memory models (Table 3) both key off these instructions;
* locals live in ``alloca`` slots and globals are initialised by a synthetic
  ``__global_init`` function, so the interpreter needs no special cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import TypeCheckError
from repro.minic import astnodes as ast
from repro.minic.ir import Const, Function, GlobalRef, GlobalVar, Instr, Module, Opcode, Temp
from repro.minic.parser import parse
from repro.minic.typesys import (
    ArrayType,
    CType,
    FunctionType,
    IntType,
    PointerType,
    Qualifiers,
    StructType,
    TypeContext,
    VoidType,
)

#: functions provided by the interpreter runtime; calls to them are legal
#: without a prototype (mini-C has no headers).
INTRINSIC_FUNCTIONS = frozenset(
    {
        "malloc", "calloc", "free", "realloc",
        "memcpy", "memmove", "memset", "memcmp", "memchr",
        "strlen", "strcmp", "strncmp", "strcpy", "strncpy", "strchr", "strcat",
        "printf", "sprintf", "snprintf", "putchar", "puts",
        "abs", "labs", "exit", "assert", "abort", "rand", "srand",
        "mini_output_int", "mini_checkpoint",
    }
)


@dataclass
class Symbol:
    """A name bound in some scope."""

    name: str
    ctype: CType
    storage: str  # 'local' | 'param' | 'global' | 'function'
    address: Temp | GlobalRef | None = None


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.symbols: dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> None:
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


def compile_source(
    source: str,
    *,
    pointer_bytes: int = 8,
    pointer_align: int | None = None,
    source_name: str = "<memory>",
) -> Module:
    """Parse and lower a mini-C source string to an IR module."""
    ctx = TypeContext(pointer_bytes=pointer_bytes, pointer_align=pointer_align)
    unit, ctx = parse(source, context=ctx)
    return compile_unit(unit, context=ctx, source_name=source_name,
                        source_line_count=source.count("\n") + 1)


def compile_unit(
    unit: ast.TranslationUnit,
    *,
    context: TypeContext | None = None,
    pointer_bytes: int = 8,
    pointer_align: int | None = None,
    source_name: str = "<memory>",
    source_line_count: int = 0,
) -> Module:
    """Lower an already-parsed translation unit to an IR module.

    Lexing and parsing are pointer-layout-independent (the parser consults
    its context only for typedef names and struct identity; struct layouts
    are computed lazily per ``TypeContext``), so callers that lower one
    program for several ABIs — the differential runner compiles every
    program once per pointer layout — can parse once and call this per
    layout instead of paying the front end per layout.
    """
    ctx = context or TypeContext(pointer_bytes=pointer_bytes, pointer_align=pointer_align)
    module = IrGenerator(ctx).compile(unit)
    module.source_name = source_name
    module.source_line_count = source_line_count
    return module


class IrGenerator:
    """Lowers a :class:`~repro.minic.astnodes.TranslationUnit` to IR."""

    def __init__(self, context: TypeContext) -> None:
        self.ctx = context
        self.module = Module(context=context)
        self._globals_scope = _Scope()
        self._scope = self._globals_scope
        self._function: Function | None = None
        self._temp_counter = 0
        self._label_counter = 0
        self._string_counter = 0
        self._break_labels: list[str] = []
        self._continue_labels: list[str] = []
        self._init_instrs: list[Instr] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def compile(self, unit: ast.TranslationUnit) -> Module:
        for function in unit.functions:
            return_type = function.return_type or self.ctx.void
            ftype = FunctionType(
                return_type=return_type,
                params=[p.ctype for p in function.params],
                variadic=function.variadic,
            )
            self._globals_scope.define(Symbol(function.name, ftype, "function"))
        for declaration in unit.declarations:
            self._declare_global(declaration)
        for function in unit.functions:
            if function.body is not None:
                self._compile_function(function)
        if self._init_instrs:
            init = Function(name="__global_init", return_type=self.ctx.void)
            init.instrs = self._init_instrs + [Instr(Opcode.RET)]
            self.module.functions["__global_init"] = init
        return self.module

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _new_temp(self) -> Temp:
        self._temp_counter += 1
        return Temp(self._temp_counter)

    def _new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}.{self._label_counter}"

    def _emit(self, instr: Instr) -> Instr:
        if self._function is None:
            self._init_instrs.append(instr)
        else:
            self._function.instrs.append(instr)
        return instr

    def _emit_op(self, op: Opcode, args, ctype: CType | None, *, line: int = 0, **attrs) -> Temp:
        dest = self._new_temp()
        self._emit(Instr(op, dest=dest, args=list(args), ctype=ctype, attrs=attrs, line=line))
        return dest

    def _error(self, message: str, node: ast.Node) -> TypeCheckError:
        return TypeCheckError(message, line=node.line)

    # ------------------------------------------------------------------
    # Globals
    # ------------------------------------------------------------------

    def _declare_global(self, declaration: ast.Declaration) -> None:
        ctype = declaration.ctype
        if ctype is None:
            raise self._error("global declaration without a type", declaration)
        name = declaration.name
        var = GlobalVar(
            name=name,
            ctype=ctype,
            is_const=ctype.is_const,
            line=declaration.line,
        )
        self.module.globals[name] = var
        self._globals_scope.define(Symbol(name, ctype, "global", GlobalRef(name)))
        if declaration.initializer is None and declaration.array_initializer is None:
            return
        # Initialisation is emitted into __global_init so that pointer-typed
        # and string initialisers work uniformly under every memory model.
        previous_function = self._function
        self._function = None
        if declaration.array_initializer is not None:
            if not isinstance(ctype, ArrayType):
                raise self._error("brace initializer on a non-array global", declaration)
            element = ctype.element
            for index, value_expr in enumerate(declaration.array_initializer):
                value, value_type = self._gen_expr(value_expr)
                value = self._convert(value, value_type, element, node=declaration)
                base = self._emit_op(
                    Opcode.GEP,
                    [GlobalRef(name), Const(index, self.ctx.long)],
                    PointerType(pointee=element),
                    line=declaration.line,
                    element_size=element.size(self.ctx),
                    element_type=element,
                )
                self._emit(Instr(Opcode.STORE, args=[base, value], ctype=element, line=declaration.line))
        else:
            value, value_type = self._gen_expr(declaration.initializer)
            target_type = ctype.element if isinstance(ctype, ArrayType) else ctype
            value = self._convert(value, value_type, target_type, node=declaration)
            self._emit(Instr(Opcode.STORE, args=[GlobalRef(name), value], ctype=target_type,
                             line=declaration.line))
        self._function = previous_function

    def _intern_string(self, text: str) -> GlobalRef:
        name = f".str.{self._string_counter}"
        self._string_counter += 1
        data = text.encode("latin-1") + b"\x00"
        ctype = ArrayType(element=self.ctx.char, count=len(data))
        self.module.globals[name] = GlobalVar(
            name=name, ctype=ctype, init_bytes=data, is_string=True, is_const=True
        )
        return GlobalRef(name)

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def _compile_function(self, node: ast.FunctionDef) -> None:
        return_type = node.return_type or self.ctx.void
        function = Function(
            name=node.name,
            params=[(p.name, p.ctype) for p in node.params],
            return_type=return_type,
            variadic=node.variadic,
            line=node.line,
        )
        last_line = _last_line(node.body) if node.body else node.line
        function.source_lines = max(1, last_line - node.line + 1)
        self.module.functions[node.name] = function
        self._function = function
        self._scope = _Scope(self._globals_scope)
        try:
            # Parameters are copied into stack slots so their address can be taken.
            for index, parameter in enumerate(node.params):
                slot = self._emit_op(
                    Opcode.ALLOCA,
                    [],
                    PointerType(pointee=parameter.ctype),
                    line=node.line,
                    size=parameter.ctype.size(self.ctx),
                    alloc_type=parameter.ctype,
                    name=parameter.name,
                )
                self._emit(Instr(Opcode.STORE, args=[slot, Temp(-(index + 1))],
                                 ctype=parameter.ctype, line=node.line,
                                 attrs={"param_index": index}))
                self._scope.define(Symbol(parameter.name, parameter.ctype, "param", slot))
            self._gen_block(node.body)
            self._emit(Instr(Opcode.RET, args=[Const(0, return_type)] if not return_type.is_void else [],
                             ctype=return_type, line=node.line))
        finally:
            self._function = None
            self._scope = self._globals_scope

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _gen_block(self, block: ast.Block) -> None:
        if block.transparent:
            # declarator groups like ``int a = 1, b;`` share the enclosing scope
            for statement in block.statements:
                self._gen_stmt(statement)
            return
        outer = self._scope
        self._scope = _Scope(outer)
        for statement in block.statements:
            self._gen_stmt(statement)
        self._scope = outer

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.Declaration):
            self._gen_local_declaration(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._gen_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._break_labels:
                raise self._error("break outside a loop", stmt)
            self._emit(Instr(Opcode.JUMP, attrs={"target": self._break_labels[-1]}, line=stmt.line))
        elif isinstance(stmt, ast.Continue):
            if not self._continue_labels:
                raise self._error("continue outside a loop", stmt)
            self._emit(Instr(Opcode.JUMP, attrs={"target": self._continue_labels[-1]}, line=stmt.line))
        else:  # pragma: no cover - parser produces only the above
            raise self._error(f"unsupported statement {type(stmt).__name__}", stmt)

    def _gen_local_declaration(self, declaration: ast.Declaration) -> None:
        ctype = declaration.ctype
        if ctype is None or isinstance(ctype, FunctionType):
            raise self._error("invalid local declaration", declaration)
        slot = self._emit_op(
            Opcode.ALLOCA,
            [],
            PointerType(pointee=ctype),
            line=declaration.line,
            size=ctype.size(self.ctx),
            alloc_type=ctype,
            name=declaration.name,
        )
        self._scope.define(Symbol(declaration.name, ctype, "local", slot))
        if declaration.array_initializer is not None:
            if not isinstance(ctype, ArrayType):
                raise self._error("brace initializer on a non-array variable", declaration)
            element = ctype.element
            for index, value_expr in enumerate(declaration.array_initializer):
                value, value_type = self._gen_expr(value_expr)
                value = self._convert(value, value_type, element, node=declaration)
                address = self._emit_op(
                    Opcode.GEP,
                    [slot, Const(index, self.ctx.long)],
                    PointerType(pointee=element),
                    line=declaration.line,
                    element_size=element.size(self.ctx),
                    element_type=element,
                )
                self._emit(Instr(Opcode.STORE, args=[address, value], ctype=element, line=declaration.line))
        elif declaration.initializer is not None:
            value, value_type = self._gen_expr(declaration.initializer)
            value = self._convert(value, value_type, ctype, node=declaration)
            self._emit(Instr(Opcode.STORE, args=[slot, value], ctype=ctype, line=declaration.line))

    def _gen_if(self, stmt: ast.If) -> None:
        then_label = self._new_label("if.then")
        else_label = self._new_label("if.else")
        end_label = self._new_label("if.end")
        condition, _ = self._gen_expr(stmt.condition)
        self._emit(Instr(Opcode.CJUMP, args=[condition],
                         attrs={"then": then_label, "else": else_label if stmt.else_branch else end_label},
                         line=stmt.line))
        self._emit(Instr(Opcode.LABEL, attrs={"name": then_label}, line=stmt.line))
        self._gen_stmt(stmt.then_branch)
        self._emit(Instr(Opcode.JUMP, attrs={"target": end_label}, line=stmt.line))
        if stmt.else_branch is not None:
            self._emit(Instr(Opcode.LABEL, attrs={"name": else_label}, line=stmt.line))
            self._gen_stmt(stmt.else_branch)
            self._emit(Instr(Opcode.JUMP, attrs={"target": end_label}, line=stmt.line))
        self._emit(Instr(Opcode.LABEL, attrs={"name": end_label}, line=stmt.line))

    def _gen_while(self, stmt: ast.While) -> None:
        head = self._new_label("while.head")
        body = self._new_label("while.body")
        end = self._new_label("while.end")
        self._emit(Instr(Opcode.LABEL, attrs={"name": head}, line=stmt.line))
        condition, _ = self._gen_expr(stmt.condition)
        self._emit(Instr(Opcode.CJUMP, args=[condition], attrs={"then": body, "else": end}, line=stmt.line))
        self._emit(Instr(Opcode.LABEL, attrs={"name": body}, line=stmt.line))
        self._break_labels.append(end)
        self._continue_labels.append(head)
        self._gen_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self._emit(Instr(Opcode.JUMP, attrs={"target": head}, line=stmt.line))
        self._emit(Instr(Opcode.LABEL, attrs={"name": end}, line=stmt.line))

    def _gen_for(self, stmt: ast.For) -> None:
        outer = self._scope
        self._scope = _Scope(outer)
        head = self._new_label("for.head")
        body = self._new_label("for.body")
        step = self._new_label("for.step")
        end = self._new_label("for.end")
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        self._emit(Instr(Opcode.LABEL, attrs={"name": head}, line=stmt.line))
        if stmt.condition is not None:
            condition, _ = self._gen_expr(stmt.condition)
            self._emit(Instr(Opcode.CJUMP, args=[condition], attrs={"then": body, "else": end},
                             line=stmt.line))
        else:
            self._emit(Instr(Opcode.JUMP, attrs={"target": body}, line=stmt.line))
        self._emit(Instr(Opcode.LABEL, attrs={"name": body}, line=stmt.line))
        self._break_labels.append(end)
        self._continue_labels.append(step)
        self._gen_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self._emit(Instr(Opcode.LABEL, attrs={"name": step}, line=stmt.line))
        if stmt.step is not None:
            self._gen_expr(stmt.step)
        self._emit(Instr(Opcode.JUMP, attrs={"target": head}, line=stmt.line))
        self._emit(Instr(Opcode.LABEL, attrs={"name": end}, line=stmt.line))
        self._scope = outer

    def _gen_return(self, stmt: ast.Return) -> None:
        return_type = self._function.return_type
        if stmt.value is None:
            self._emit(Instr(Opcode.RET, ctype=return_type, line=stmt.line))
            return
        value, value_type = self._gen_expr(stmt.value)
        if not return_type.is_void:
            value = self._convert(value, value_type, return_type, node=stmt)
        self._emit(Instr(Opcode.RET, args=[value], ctype=return_type, line=stmt.line))

    # ------------------------------------------------------------------
    # Expressions: rvalues
    # ------------------------------------------------------------------

    def _gen_expr(self, expr: ast.Expr) -> tuple:
        """Generate an rvalue; returns (operand, ctype)."""
        if isinstance(expr, ast.IntLiteral):
            ctype = self.ctx.long if expr.value > 0x7FFFFFFF or expr.value < -0x80000000 else self.ctx.int_
            return Const(expr.value, ctype), ctype
        if isinstance(expr, ast.CharLiteral):
            return Const(expr.value, self.ctx.char), self.ctx.int_
        if isinstance(expr, ast.StringLiteral):
            ref = self._intern_string(expr.value)
            ctype = PointerType(pointee=self.ctx.char.with_qualifiers(Qualifiers.CONST))
            value = self._emit_op(Opcode.GEP, [ref, Const(0, self.ctx.long)], ctype,
                                  line=expr.line, element_size=1, element_type=self.ctx.char,
                                  decay=True)
            return value, ctype
        if isinstance(expr, ast.Identifier):
            return self._gen_identifier_value(expr)
        if isinstance(expr, ast.SizeofType):
            return Const(expr.target_type.size(self.ctx), self.ctx.typedefs["size_t"]), \
                self.ctx.typedefs["size_t"]
        if isinstance(expr, ast.SizeofExpr):
            _, ctype = self._analyze_type(expr.operand)
            return Const(ctype.size(self.ctx), self.ctx.typedefs["size_t"]), self.ctx.typedefs["size_t"]
        if isinstance(expr, ast.OffsetOf):
            struct = expr.target_type
            if not isinstance(struct, StructType):
                raise self._error("offsetof requires a struct type", expr)
            field = struct.field_named(expr.member, self.ctx)
            return Const(field.offset, self.ctx.typedefs["size_t"]), self.ctx.typedefs["size_t"]
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.IncDec):
            return self._gen_incdec(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._gen_conditional(expr)
        if isinstance(expr, ast.Cast):
            return self._gen_cast(expr)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr)
        if isinstance(expr, (ast.Index, ast.Member)):
            address, ctype = self._gen_addr(expr)
            return self._load_value(address, ctype, expr)
        raise self._error(f"unsupported expression {type(expr).__name__}", expr)

    def _gen_identifier_value(self, expr: ast.Identifier) -> tuple:
        symbol = self._scope.lookup(expr.name)
        if symbol is None:
            raise self._error(f"use of undeclared identifier {expr.name!r}", expr)
        if symbol.storage == "function":
            raise self._error("function names may only be called (no function pointers in mini-C)", expr)
        return self._load_value(symbol.address, symbol.ctype, expr)

    def _load_value(self, address, ctype: CType, node: ast.Node) -> tuple:
        if isinstance(ctype, ArrayType):
            # Array lvalues decay to a pointer to their first element.
            pointer_type = PointerType(pointee=ctype.element)
            value = self._emit_op(Opcode.GEP, [address, Const(0, self.ctx.long)], pointer_type,
                                  line=node.line, element_size=ctype.element.size(self.ctx),
                                  element_type=ctype.element, decay=True)
            return value, pointer_type
        if isinstance(ctype, StructType):
            # Struct rvalues are represented by their address (mini-C only
            # supports struct copies via assignment, handled in _gen_assign).
            return address, ctype
        value = self._emit_op(Opcode.LOAD, [address], ctype, line=node.line)
        return value, ctype

    # ------------------------------------------------------------------
    # Expressions: lvalue addresses
    # ------------------------------------------------------------------

    def _gen_addr(self, expr: ast.Expr) -> tuple:
        """Generate the address of an lvalue; returns (operand, object ctype)."""
        if isinstance(expr, ast.Identifier):
            symbol = self._scope.lookup(expr.name)
            if symbol is None:
                raise self._error(f"use of undeclared identifier {expr.name!r}", expr)
            if symbol.storage == "function":
                raise self._error("cannot take the address of a function in mini-C", expr)
            return symbol.address, symbol.ctype
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer, pointer_type = self._gen_expr(expr.operand)
            pointer_type = self._decay(pointer_type)
            if not isinstance(pointer_type, PointerType):
                raise self._error("cannot dereference a non-pointer", expr)
            return pointer, pointer_type.pointee
        if isinstance(expr, ast.Index):
            base, base_type = self._gen_expr(expr.base)
            base_type = self._decay(base_type)
            if not isinstance(base_type, PointerType):
                raise self._error("subscripted value is not a pointer or array", expr)
            index, index_type = self._gen_expr(expr.index)
            if not index_type.is_integer:
                raise self._error("array subscript is not an integer", expr)
            element = base_type.pointee
            address = self._emit_op(Opcode.GEP, [base, index], PointerType(pointee=element),
                                    line=expr.line, element_size=element.size(self.ctx),
                                    element_type=element)
            return address, element
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base, base_type = self._gen_expr(expr.base)
                base_type = self._decay(base_type)
                if not isinstance(base_type, PointerType) or not isinstance(base_type.pointee, StructType):
                    raise self._error("'->' applied to a non-struct-pointer", expr)
                struct = base_type.pointee
            else:
                base, struct = self._gen_addr(expr.base)
                if not isinstance(struct, StructType):
                    raise self._error("'.' applied to a non-struct value", expr)
            field = struct.field_named(expr.member, self.ctx)
            address = self._emit_op(Opcode.FIELD, [base], PointerType(pointee=field.ctype),
                                    line=expr.line, offset=field.offset, field=field.name,
                                    struct=str(struct))
            return address, field.ctype
        if isinstance(expr, ast.Cast):
            # (T *)expr used as an lvalue: take the operand's address-ness away;
            # only pointer dereference of casts is supported via Unary('*').
            raise self._error("a cast expression is not an lvalue", expr)
        raise self._error(f"expression is not an lvalue ({type(expr).__name__})", expr)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _gen_unary(self, expr: ast.Unary) -> tuple:
        if expr.op == "&":
            address, ctype = self._gen_addr(expr.operand)
            return address, PointerType(pointee=ctype)
        if expr.op == "*":
            address, ctype = self._gen_addr(expr)
            return self._load_value(address, ctype, expr)
        value, ctype = self._gen_expr(expr.operand)
        if expr.op == "+":
            return value, ctype
        if expr.op == "-":
            result = self._emit_op(Opcode.UNOP, [value], ctype, line=expr.line, operator="neg")
            return result, ctype
        if expr.op == "~":
            result = self._emit_op(Opcode.UNOP, [value], ctype, line=expr.line, operator="not")
            return result, ctype
        if expr.op == "!":
            result = self._emit_op(Opcode.CMP, [value, Const(0, ctype)], self.ctx.int_,
                                   line=expr.line, operator="==")
            return result, self.ctx.int_
        raise self._error(f"unsupported unary operator {expr.op!r}", expr)

    def _gen_incdec(self, expr: ast.IncDec) -> tuple:
        address, ctype = self._gen_addr(expr.operand)
        old_value = self._emit_op(Opcode.LOAD, [address], ctype, line=expr.line)
        delta = Const(1, self.ctx.int_)
        if isinstance(ctype, PointerType):
            element = ctype.pointee
            step = 1 if expr.op == "++" else -1
            new_value = self._emit_op(Opcode.GEP, [old_value, Const(step, self.ctx.long)], ctype,
                                      line=expr.line, element_size=element.size(self.ctx),
                                      element_type=element)
        else:
            operator = "+" if expr.op == "++" else "-"
            new_value = self._emit_op(Opcode.BINOP, [old_value, delta], ctype, line=expr.line,
                                      operator=operator)
        self._emit(Instr(Opcode.STORE, args=[address, new_value], ctype=ctype, line=expr.line))
        return (new_value if expr.is_prefix else old_value), ctype

    def _gen_binary(self, expr: ast.Binary) -> tuple:
        if expr.op in ("&&", "||"):
            return self._gen_logical(expr)
        left, left_type = self._gen_expr(expr.left)
        right, right_type = self._gen_expr(expr.right)
        left_type = self._decay(left_type)
        right_type = self._decay(right_type)

        if expr.op in ("==", "!=", "<", ">", "<=", ">="):
            result = self._emit_op(Opcode.CMP, [left, right], self.ctx.int_, line=expr.line,
                                   operator=expr.op,
                                   pointer_compare=isinstance(left_type, PointerType)
                                   or isinstance(right_type, PointerType))
            return result, self.ctx.int_

        if expr.op == "+":
            if isinstance(left_type, PointerType) and right_type.is_integer:
                return self._pointer_add(left, left_type, right, expr), left_type
            if isinstance(right_type, PointerType) and left_type.is_integer:
                return self._pointer_add(right, right_type, left, expr), right_type
        if expr.op == "-":
            if isinstance(left_type, PointerType) and isinstance(right_type, PointerType):
                element = left_type.pointee
                result = self._emit_op(Opcode.PTRDIFF, [left, right], self.ctx.typedefs["ptrdiff_t"],
                                       line=expr.line, element_size=max(element.size(self.ctx), 1))
                return result, self.ctx.typedefs["ptrdiff_t"]
            if isinstance(left_type, PointerType) and right_type.is_integer:
                negated = self._emit_op(Opcode.UNOP, [right], right_type, line=expr.line, operator="neg")
                return self._pointer_add(left, left_type, negated, expr), left_type

        if isinstance(left_type, PointerType) or isinstance(right_type, PointerType):
            raise self._error(f"invalid pointer operands to binary {expr.op!r}", expr)

        common = self.ctx.common_type(left_type, right_type)
        left = self._convert(left, left_type, common, node=expr)
        right = self._convert(right, right_type, common, node=expr)
        # Integer arithmetic on values derived from pointers is the IA idiom;
        # the detector finds it by looking at operand provenance attributes.
        result = self._emit_op(Opcode.BINOP, [left, right], common, line=expr.line, operator=expr.op)
        return result, common

    def _pointer_add(self, pointer, pointer_type: PointerType, index, expr: ast.Binary):
        element = pointer_type.pointee
        return self._emit_op(Opcode.GEP, [pointer, index], pointer_type, line=expr.line,
                             element_size=max(element.size(self.ctx), 1), element_type=element)

    def _gen_logical(self, expr: ast.Binary) -> tuple:
        result_slot = self._emit_op(Opcode.ALLOCA, [], PointerType(pointee=self.ctx.int_),
                                    line=expr.line, size=4, alloc_type=self.ctx.int_, name="logical.tmp")
        evaluate_right = self._new_label("logical.rhs")
        short_circuit = self._new_label("logical.short")
        end = self._new_label("logical.end")
        left, _ = self._gen_expr(expr.left)
        if expr.op == "&&":
            attrs = {"then": evaluate_right, "else": short_circuit}
            short_value = 0
        else:
            attrs = {"then": short_circuit, "else": evaluate_right}
            short_value = 1
        self._emit(Instr(Opcode.CJUMP, args=[left], attrs=attrs, line=expr.line))
        self._emit(Instr(Opcode.LABEL, attrs={"name": evaluate_right}, line=expr.line))
        right, right_type = self._gen_expr(expr.right)
        right_bool = self._emit_op(Opcode.CMP, [right, Const(0, right_type)], self.ctx.int_,
                                   line=expr.line, operator="!=")
        self._emit(Instr(Opcode.STORE, args=[result_slot, right_bool], ctype=self.ctx.int_, line=expr.line))
        self._emit(Instr(Opcode.JUMP, attrs={"target": end}, line=expr.line))
        self._emit(Instr(Opcode.LABEL, attrs={"name": short_circuit}, line=expr.line))
        self._emit(Instr(Opcode.STORE, args=[result_slot, Const(short_value, self.ctx.int_)],
                         ctype=self.ctx.int_, line=expr.line))
        self._emit(Instr(Opcode.JUMP, attrs={"target": end}, line=expr.line))
        self._emit(Instr(Opcode.LABEL, attrs={"name": end}, line=expr.line))
        result = self._emit_op(Opcode.LOAD, [result_slot], self.ctx.int_, line=expr.line)
        return result, self.ctx.int_

    def _gen_conditional(self, expr: ast.Conditional) -> tuple:
        then_label = self._new_label("cond.then")
        else_label = self._new_label("cond.else")
        end_label = self._new_label("cond.end")
        condition, _ = self._gen_expr(expr.condition)
        # Result type: computed from a dry-run type analysis of both arms.
        _, then_type = self._analyze_type(expr.then_value)
        _, else_type = self._analyze_type(expr.else_value)
        then_type = self._decay(then_type)
        else_type = self._decay(else_type)
        if isinstance(then_type, PointerType):
            result_type = then_type
        elif isinstance(else_type, PointerType):
            result_type = else_type
        else:
            result_type = self.ctx.common_type(then_type, else_type)
        slot = self._emit_op(Opcode.ALLOCA, [], PointerType(pointee=result_type), line=expr.line,
                             size=result_type.size(self.ctx), alloc_type=result_type, name="cond.tmp")
        self._emit(Instr(Opcode.CJUMP, args=[condition], attrs={"then": then_label, "else": else_label},
                         line=expr.line))
        self._emit(Instr(Opcode.LABEL, attrs={"name": then_label}, line=expr.line))
        then_value, then_actual = self._gen_expr(expr.then_value)
        then_value = self._convert(then_value, then_actual, result_type, node=expr)
        self._emit(Instr(Opcode.STORE, args=[slot, then_value], ctype=result_type, line=expr.line))
        self._emit(Instr(Opcode.JUMP, attrs={"target": end_label}, line=expr.line))
        self._emit(Instr(Opcode.LABEL, attrs={"name": else_label}, line=expr.line))
        else_value, else_actual = self._gen_expr(expr.else_value)
        else_value = self._convert(else_value, else_actual, result_type, node=expr)
        self._emit(Instr(Opcode.STORE, args=[slot, else_value], ctype=result_type, line=expr.line))
        self._emit(Instr(Opcode.JUMP, attrs={"target": end_label}, line=expr.line))
        self._emit(Instr(Opcode.LABEL, attrs={"name": end_label}, line=expr.line))
        result = self._emit_op(Opcode.LOAD, [slot], result_type, line=expr.line)
        return result, result_type

    def _gen_assign(self, expr: ast.Assign) -> tuple:
        address, target_type = self._gen_addr(expr.target)
        if isinstance(target_type, StructType):
            if expr.op != "=":
                raise self._error("compound assignment on a struct", expr)
            source_address, source_type = self._gen_expr(expr.value)
            if not isinstance(source_type, StructType):
                raise self._error("assigning a non-struct value to a struct", expr)
            size = target_type.size(self.ctx)
            self._emit(Instr(Opcode.CALL, dest=self._new_temp(),
                             args=[address, source_address, Const(size, self.ctx.typedefs["size_t"])],
                             ctype=PointerType(pointee=self.ctx.void),
                             attrs={"callee": "memcpy"}, line=expr.line))
            return address, target_type
        if expr.op == "=":
            value, value_type = self._gen_expr(expr.value)
            value = self._convert(value, value_type, target_type, node=expr)
        else:
            operator = expr.op[:-1]
            old_value = self._emit_op(Opcode.LOAD, [address], target_type, line=expr.line)
            rhs, rhs_type = self._gen_expr(expr.value)
            if isinstance(target_type, PointerType):
                if operator == "+":
                    value = self._pointer_add(old_value, target_type, rhs,
                                              ast.Binary(op="+", line=expr.line))
                elif operator == "-":
                    negated = self._emit_op(Opcode.UNOP, [rhs], rhs_type, line=expr.line, operator="neg")
                    value = self._pointer_add(old_value, target_type, negated,
                                              ast.Binary(op="-", line=expr.line))
                else:
                    raise self._error(f"invalid compound operator {expr.op!r} on a pointer", expr)
            else:
                rhs = self._convert(rhs, rhs_type, target_type, node=expr)
                value = self._emit_op(Opcode.BINOP, [old_value, rhs], target_type, line=expr.line,
                                      operator=operator)
        self._emit(Instr(Opcode.STORE, args=[address, value], ctype=target_type, line=expr.line,
                         attrs={"const_target": target_type.is_const}))
        return value, target_type

    def _gen_cast(self, expr: ast.Cast) -> tuple:
        value, source_type = self._gen_expr(expr.operand)
        source_type = self._decay(source_type)
        target_type = expr.target_type
        converted = self._convert(value, source_type, target_type, node=expr, explicit=True)
        return converted, target_type

    def _gen_call(self, expr: ast.Call) -> tuple:
        symbol = self._scope.lookup(expr.callee)
        if symbol is not None and symbol.storage == "function":
            ftype = symbol.ctype
            return_type = ftype.return_type
            param_types = ftype.params
            variadic = ftype.variadic
        elif expr.callee in INTRINSIC_FUNCTIONS:
            return_type, param_types, variadic = self._intrinsic_signature(expr.callee)
        else:
            raise self._error(f"call to undeclared function {expr.callee!r}", expr)
        args = []
        for index, arg in enumerate(expr.args):
            value, value_type = self._gen_expr(arg)
            value_type = self._decay(value_type)
            if index < len(param_types):
                value = self._convert(value, value_type, param_types[index], node=expr)
            args.append(value)
        if not variadic and len(args) != len(param_types) and expr.callee not in INTRINSIC_FUNCTIONS:
            raise self._error(
                f"{expr.callee} expects {len(param_types)} arguments, got {len(args)}", expr
            )
        dest = self._new_temp() if not return_type.is_void else None
        self._emit(Instr(Opcode.CALL, dest=dest, args=args, ctype=return_type,
                         attrs={"callee": expr.callee}, line=expr.line))
        if dest is None:
            return Const(0, self.ctx.int_), self.ctx.void
        return dest, return_type

    def _intrinsic_signature(self, name: str) -> tuple[CType, list[CType], bool]:
        void_ptr = PointerType(pointee=self.ctx.void)
        const_char_ptr = PointerType(pointee=self.ctx.char.with_qualifiers(Qualifiers.CONST))
        size_t = self.ctx.typedefs["size_t"]
        int_ = self.ctx.int_
        table: dict[str, tuple[CType, list[CType], bool]] = {
            "malloc": (void_ptr, [size_t], False),
            "calloc": (void_ptr, [size_t, size_t], False),
            "realloc": (void_ptr, [void_ptr, size_t], False),
            "free": (self.ctx.void, [void_ptr], False),
            "memcpy": (void_ptr, [void_ptr, void_ptr, size_t], False),
            "memmove": (void_ptr, [void_ptr, void_ptr, size_t], False),
            "memset": (void_ptr, [void_ptr, int_, size_t], False),
            "memcmp": (int_, [void_ptr, void_ptr, size_t], False),
            "memchr": (void_ptr, [void_ptr, int_, size_t], False),
            "strlen": (size_t, [const_char_ptr], False),
            "strcmp": (int_, [const_char_ptr, const_char_ptr], False),
            "strncmp": (int_, [const_char_ptr, const_char_ptr, size_t], False),
            "strcpy": (PointerType(pointee=self.ctx.char), [PointerType(pointee=self.ctx.char), const_char_ptr], False),
            "strncpy": (PointerType(pointee=self.ctx.char), [PointerType(pointee=self.ctx.char), const_char_ptr, size_t], False),
            "strchr": (PointerType(pointee=self.ctx.char), [const_char_ptr, int_], False),
            "strcat": (PointerType(pointee=self.ctx.char), [PointerType(pointee=self.ctx.char), const_char_ptr], False),
            "printf": (int_, [const_char_ptr], True),
            "sprintf": (int_, [PointerType(pointee=self.ctx.char), const_char_ptr], True),
            "snprintf": (int_, [PointerType(pointee=self.ctx.char), size_t, const_char_ptr], True),
            "putchar": (int_, [int_], False),
            "puts": (int_, [const_char_ptr], False),
            "abs": (int_, [int_], False),
            "labs": (self.ctx.long, [self.ctx.long], False),
            "exit": (self.ctx.void, [int_], False),
            "abort": (self.ctx.void, [], False),
            "assert": (self.ctx.void, [int_], False),
            "rand": (int_, [], False),
            "srand": (self.ctx.void, [int_], False),
            "mini_output_int": (self.ctx.void, [self.ctx.long], False),
            "mini_checkpoint": (self.ctx.void, [self.ctx.long], False),
        }
        return table[name]

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def _decay(self, ctype: CType) -> CType:
        if isinstance(ctype, ArrayType):
            return PointerType(pointee=ctype.element)
        return ctype

    def _convert(self, value, source: CType, target: CType, *, node: ast.Node, explicit: bool = False):
        """Insert the conversion from ``source`` to ``target`` (if any)."""
        source = self._decay(source)
        target_decayed = self._decay(target)

        if isinstance(target_decayed, PointerType) and isinstance(source, PointerType):
            deconst = source.pointee.is_const and not target_decayed.pointee.is_const
            if deconst or type(source.pointee) is not type(target_decayed.pointee) \
                    or str(source) != str(target_decayed):
                return self._emit_op(Opcode.BITCAST, [value], target_decayed, line=node.line,
                                     deconst=deconst, explicit=explicit)
            return value

        if isinstance(target_decayed, PointerType) and source.is_integer:
            width = source.size(self.ctx)
            return self._emit_op(Opcode.INTTOPTR, [value], target_decayed, line=node.line,
                                 source_bytes=width, explicit=explicit,
                                 from_pointer_sized=getattr(source, "is_pointer_sized", False))

        if target_decayed.is_integer and isinstance(source, PointerType):
            width = target_decayed.size(self.ctx)
            return self._emit_op(Opcode.PTRTOINT, [value], target_decayed, line=node.line,
                                 target_bytes=width, explicit=explicit,
                                 to_pointer_sized=getattr(target_decayed, "is_pointer_sized", False))

        if target_decayed.is_integer and source.is_integer:
            if target_decayed.size(self.ctx) == source.size(self.ctx) \
                    and target_decayed.signed == source.signed \
                    and getattr(target_decayed, "is_pointer_sized", False) == getattr(source, "is_pointer_sized", False):
                return value
            return self._emit_op(Opcode.INTCAST, [value], target_decayed, line=node.line,
                                 source_bytes=source.size(self.ctx),
                                 target_bytes=target_decayed.size(self.ctx),
                                 signed=getattr(target_decayed, "signed", True))

        if target_decayed.is_void:
            return value
        if isinstance(target_decayed, StructType) and isinstance(source, StructType):
            return value
        raise self._error(f"cannot convert {source} to {target_decayed}", node)

    # ------------------------------------------------------------------
    # Dry-run type analysis (no code emitted) for sizeof/conditional typing
    # ------------------------------------------------------------------

    def _analyze_type(self, expr: ast.Expr) -> tuple:
        """Return (None, ctype) for an expression without emitting its code.

        Implemented by generating into a scratch function and discarding the
        instructions; correctness matters more than elegance here, and the
        expressions involved (sizeof operands, conditional arms) are small.
        """
        saved_function = self._function
        saved_counter = self._temp_counter
        scratch = Function(name="__scratch", return_type=self.ctx.void)
        self._function = scratch
        try:
            _, ctype = self._gen_expr(expr)
        finally:
            self._function = saved_function
            self._temp_counter = saved_counter
        return None, ctype


def _last_line(node: ast.Node) -> int:
    """The maximum source line mentioned in a subtree (for LoC accounting)."""
    best = node.line
    for value in vars(node).values():
        if isinstance(value, ast.Node):
            best = max(best, _last_line(value))
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.Node):
                    best = max(best, _last_line(item))
    return best

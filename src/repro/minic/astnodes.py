"""Abstract syntax tree for mini-C.

Nodes are plain dataclasses produced by :class:`repro.minic.parser.Parser` and
consumed by :class:`repro.minic.irgen.IrGenerator`.  Every node carries the
source line it came from so that both compile-time diagnostics and the porting
analyzer (Table 4) can report line-level information.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minic.typesys import CType, Qualifiers


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class CharLiteral(Expr):
    value: int = 0


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    """Unary operators: ``-``, ``+``, ``!``, ``~``, ``*``, ``&``."""

    op: str = ""
    operand: Expr | None = None


@dataclass
class IncDec(Expr):
    """Pre/post increment and decrement."""

    op: str = "++"
    operand: Expr | None = None
    is_prefix: bool = True


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Assign(Expr):
    """Assignment; ``op`` is ``"="`` or a compound operator like ``"+="``."""

    op: str = "="
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class Conditional(Expr):
    condition: Expr | None = None
    then_value: Expr | None = None
    else_value: Expr | None = None


@dataclass
class Cast(Expr):
    target_type: CType | None = None
    operand: Expr | None = None


@dataclass
class SizeofType(Expr):
    target_type: CType | None = None


@dataclass
class SizeofExpr(Expr):
    operand: Expr | None = None


@dataclass
class OffsetOf(Expr):
    """``offsetof(struct tag, member)`` — needed by the CONTAINER idiom."""

    target_type: CType | None = None
    member: str = ""


@dataclass
class Call(Expr):
    callee: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class Member(Expr):
    """``base.member`` when ``arrow`` is False, ``base->member`` otherwise."""

    base: Expr | None = None
    member: str = ""
    arrow: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class Declaration(Stmt):
    """A local or global variable declaration (one declarator)."""

    name: str = ""
    ctype: CType | None = None
    initializer: Expr | None = None
    array_initializer: list[Expr] | None = None
    is_global: bool = False


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)
    #: True for synthetic blocks (e.g. ``int a, b;`` declarator groups) whose
    #: declarations belong to the *enclosing* scope.
    transparent: bool = False


@dataclass
class If(Stmt):
    condition: Expr | None = None
    then_branch: Stmt | None = None
    else_branch: Stmt | None = None


@dataclass
class While(Stmt):
    condition: Expr | None = None
    body: Stmt | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None
    condition: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Parameter(Node):
    name: str = ""
    ctype: CType | None = None


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: CType | None = None
    params: list[Parameter] = field(default_factory=list)
    body: Block | None = None
    variadic: bool = False


@dataclass
class TranslationUnit(Node):
    """A whole source file: globals, struct definitions and functions."""

    declarations: list[Declaration] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)

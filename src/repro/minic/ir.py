"""Typed intermediate representation for mini-C.

The IR plays the role LLVM IR plays in the paper's methodology: pointers and
integers are distinct, type-safe pointer arithmetic is explicit (``gep`` for
element arithmetic, ``field`` for member access, ``ptrdiff`` for pointer
subtraction), and any escape from the pointer type system appears as an
explicit ``ptrtoint`` / ``inttoptr`` instruction pair.  The idiom detector
(:mod:`repro.analysis.detector`) searches these instructions, and the
abstract-machine interpreter (:mod:`repro.interp.machine`) executes them under
different memory models.

Functions are flat lists of instructions; control flow uses ``label`` /
``jump`` / ``cjump``.  Values are virtual registers (:class:`Temp`), constants
(:class:`Const`) and global references (:class:`GlobalRef`).  There is no SSA
form: local variables live in ``alloca`` slots, which keeps both the generator
and the interpreter simple without hiding any pointer behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.minic.typesys import CType, TypeContext


class Opcode(enum.Enum):
    """IR operations."""

    ALLOCA = "alloca"          # dest = address of a new stack slot (attrs: size, alloc_type)
    LOAD = "load"              # dest = *args[0]
    STORE = "store"            # *args[0] = args[1]
    GEP = "gep"                # dest = args[0] + args[1] * element_size   (typed element arithmetic)
    FIELD = "field"            # dest = args[0] + field_offset             (struct member address)
    PTRADD = "ptradd"          # dest = args[0] + args[1] bytes            (untyped pointer arithmetic)
    PTRDIFF = "ptrdiff"        # dest = (args[0] - args[1]) / element_size
    PTRTOINT = "ptrtoint"      # dest = integer value of pointer args[0]
    INTTOPTR = "inttoptr"      # dest = pointer reconstructed from integer args[0]
    BITCAST = "bitcast"        # dest = args[0] reinterpreted as another pointer type
    INTCAST = "intcast"        # dest = args[0] converted to another integer width/signedness
    BINOP = "binop"            # dest = args[0] <op> args[1]   (attrs: operator)
    UNOP = "unop"              # dest = <op> args[0]
    CMP = "cmp"                # dest = args[0] <op> args[1] as 0/1 int
    CALL = "call"              # dest = callee(args...)        (attrs: callee)
    RET = "ret"                # return args[0] (or void)
    JUMP = "jump"              # goto attrs['target']
    CJUMP = "cjump"            # if args[0] goto attrs['then'] else attrs['else']
    LABEL = "label"            # attrs['name']
    NOP = "nop"


@dataclass(frozen=True)
class Temp:
    """A virtual register."""

    index: int

    def __str__(self) -> str:
        return f"%{self.index}"


@dataclass(frozen=True)
class Const:
    """An integer constant with its C type."""

    value: int
    ctype: CType | None = None

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class GlobalRef:
    """A reference to a global variable or string literal by name."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


Operand = Temp | Const | GlobalRef


@dataclass
class Instr:
    """One IR instruction."""

    op: Opcode
    dest: Temp | None = None
    args: list[Operand] = field(default_factory=list)
    ctype: CType | None = None
    attrs: dict = field(default_factory=dict)
    line: int = 0

    def __str__(self) -> str:
        parts = [self.op.value]
        if self.dest is not None:
            parts.insert(0, f"{self.dest} =")
        if self.args:
            parts.append(", ".join(str(a) for a in self.args))
        if self.attrs:
            interesting = {k: v for k, v in self.attrs.items() if k not in ("alloc_type", "element_type")}
            if interesting:
                parts.append(str(interesting))
        return " ".join(parts)


@dataclass
class GlobalVar:
    """A module-level variable (or string literal)."""

    name: str
    ctype: CType
    #: initial bytes; zero-filled when None.
    init_bytes: bytes | None = None
    is_string: bool = False
    is_const: bool = False
    line: int = 0


@dataclass
class Function:
    """An IR function: parameters plus a flat instruction list."""

    name: str
    params: list[tuple[str, CType]] = field(default_factory=list)
    return_type: CType | None = None
    instrs: list[Instr] = field(default_factory=list)
    variadic: bool = False
    line: int = 0
    source_lines: int = 0
    #: cached label map plus the (list identity, length) it was computed for.
    _label_cache: dict[str, int] | None = field(default=None, init=False, repr=False, compare=False)
    _label_cache_key: tuple[int, int] | None = field(default=None, init=False, repr=False, compare=False)
    #: bumped by :meth:`invalidate_label_index` — i.e. whenever a pass
    #: mutates ``instrs`` in place — so downstream caches keyed on this
    #: function (the predecode-artifact cache) can detect mutation even when
    #: the list object and its length are unchanged.
    mutations: int = field(default=0, init=False, repr=False, compare=False)

    def label_index(self) -> dict[str, int]:
        """Map label names to instruction indices (cached).

        The cache is keyed on the identity and length of ``instrs`` so that
        replacing the instruction list (as the optimizer's DCE pass does)
        invalidates it automatically; passes that mutate instructions in place
        should call :meth:`invalidate_label_index`.  Callers must treat the
        returned dict as read-only.
        """
        key = (id(self.instrs), len(self.instrs))
        if self._label_cache is None or self._label_cache_key != key:
            self._label_cache = {
                instr.attrs["name"]: index
                for index, instr in enumerate(self.instrs)
                if instr.op is Opcode.LABEL
            }
            self._label_cache_key = key
        return self._label_cache

    def invalidate_label_index(self) -> None:
        """Drop the cached label map after mutating ``instrs`` in place.

        Also records the mutation for every other cache derived from the
        instruction stream (see :data:`mutations`).
        """
        self._label_cache = None
        self._label_cache_key = None
        self.mutations += 1

    def __str__(self) -> str:
        header = f"function {self.name}({', '.join(name for name, _ in self.params)})"
        body = "\n".join(f"  {instr}" for instr in self.instrs)
        return f"{header}\n{body}"


@dataclass
class Module:
    """A compiled translation unit."""

    functions: dict[str, Function] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    context: TypeContext | None = None
    source_name: str = "<memory>"
    source_line_count: int = 0

    def all_instructions(self):
        """Iterate (function, instruction) pairs across the module."""
        for function in self.functions.values():
            for instr in function.instrs:
                yield function, instr

    def __str__(self) -> str:
        return "\n\n".join(str(fn) for fn in self.functions.values())

"""Tokenizer for mini-C.

Produces a flat list of :class:`Token` objects.  ``//`` and ``/* */`` comments
are stripped; there is no preprocessor (workloads are written as single
translation units), but lines starting with ``#`` are skipped so sources can
keep ``#include`` lines for documentation purposes.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.common.errors import LexError


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    CHAR = "char"
    STRING = "string"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "void", "char", "short", "int", "long", "signed", "unsigned",
        "struct", "union", "const", "volatile", "static", "extern", "register", "inline",
        "if", "else", "while", "for", "do", "return", "break", "continue",
        "sizeof", "typedef",
        # CHERI extensions from the paper (§4.1)
        "__capability", "__input", "__output",
    }
)

#: Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = (
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
)

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_HEX_RE = re.compile(r"0[xX][0-9a-fA-F]+")
_OCT_RE = re.compile(r"0[0-7]+")
_DEC_RE = re.compile(r"[0-9]+")
_INT_SUFFIX_RE = re.compile(r"[uUlL]*")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: int | str | None
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.kind.value}({self.text!r})@{self.line}"


class Lexer:
    """Single-pass tokenizer."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------

    def _error(self, message: str) -> LexError:
        return LexError(message, line=self._line, column=self._column)

    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self._pos < len(self._source) and self._source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        src = self._source
        while self._pos < len(src):
            ch = src[self._pos]
            if ch in " \t\r\n":
                self._advance(1)
            elif src.startswith("//", self._pos):
                while self._pos < len(src) and src[self._pos] != "\n":
                    self._advance(1)
            elif src.startswith("/*", self._pos):
                end = src.find("*/", self._pos + 2)
                if end < 0:
                    raise self._error("unterminated block comment")
                self._advance(end + 2 - self._pos)
            elif ch == "#" and self._column == 1:
                # preprocessor-style line: skipped (no preprocessor in mini-C)
                while self._pos < len(src) and src[self._pos] != "\n":
                    self._advance(1)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        if self._pos >= len(self._source):
            return Token(TokenKind.EOF, "", None, self._line, self._column)
        line, column = self._line, self._column
        src = self._source
        ch = src[self._pos]

        ident = _IDENT_RE.match(src, self._pos)
        if ident:
            text = ident.group(0)
            self._advance(len(text))
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return Token(kind, text, text, line, column)

        if ch.isdigit():
            return self._lex_number(line, column)

        if ch == '"':
            return self._lex_string(line, column)

        if ch == "'":
            return self._lex_char(line, column)

        for punct in _PUNCTUATORS:
            if src.startswith(punct, self._pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, punct, line, column)

        raise self._error(f"unexpected character {ch!r}")

    def _lex_number(self, line: int, column: int) -> Token:
        src = self._source
        if src.startswith(("0x", "0X"), self._pos) and not _HEX_RE.match(src, self._pos):
            # `0x` with no digits would otherwise lex as `0` + identifier `x...`
            raise self._error("malformed hex literal (no digits after 0x)")
        for pattern, base in ((_HEX_RE, 16), (_OCT_RE, 8), (_DEC_RE, 10)):
            match = pattern.match(src, self._pos)
            if match:
                text = match.group(0)
                self._advance(len(text))
                suffix = _INT_SUFFIX_RE.match(src, self._pos)
                if suffix and suffix.group(0):
                    self._advance(len(suffix.group(0)))
                return Token(TokenKind.INT, text, int(text, base), line, column)
        raise self._error("malformed number literal")

    _ESCAPES = {
        "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
        "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
    }

    def _lex_string(self, line: int, column: int) -> Token:
        src = self._source
        pos = self._pos + 1
        out = []
        while pos < len(src) and src[pos] != '"':
            ch = src[pos]
            if ch == "\n":
                # C strings do not span lines; diagnosing here turns the
                # classic forgotten-quote mistake into a precise error
                # instead of swallowing the rest of the file
                raise self._error("unterminated string literal (newline in string)")
            if ch == "\\":
                pos += 1
                if pos >= len(src):
                    raise self._error("unterminated string literal")
                escape = src[pos]
                if escape == "x":
                    hex_digits = ""
                    while pos + 1 < len(src) and src[pos + 1] in "0123456789abcdefABCDEF":
                        pos += 1
                        hex_digits += src[pos]
                    if not hex_digits:
                        raise self._error("\\x escape with no hex digits")
                    out.append(chr(int(hex_digits, 16) & 0xFF))
                else:
                    out.append(self._ESCAPES.get(escape, escape))
            else:
                out.append(ch)
            pos += 1
        if pos >= len(src):
            raise self._error("unterminated string literal")
        text = "".join(out)
        self._advance(pos + 1 - self._pos)
        return Token(TokenKind.STRING, text, text, line, column)

    def _lex_char(self, line: int, column: int) -> Token:
        src = self._source
        pos = self._pos + 1
        if pos >= len(src):
            raise self._error("unterminated character literal")
        ch = src[pos]
        if ch == "\\":
            pos += 1
            if pos >= len(src):
                raise self._error("unterminated character literal")
            value = ord(self._ESCAPES.get(src[pos], src[pos]))
        else:
            value = ord(ch)
        pos += 1
        if pos >= len(src) or src[pos] != "'":
            raise self._error("unterminated character literal")
        self._advance(pos + 1 - self._pos)
        return Token(TokenKind.CHAR, chr(value), value, line, column)

"""The mini-C type system.

Types are immutable-ish objects with identity semantics managed by a
:class:`TypeContext`.  Layout (size and alignment) is computed per context so
that the same source can be compiled for different ABIs: the MIPS ABI lays
pointers out as 8-byte integers, while the CHERI pure-capability ABI lays them
out as 32-byte, 32-byte-aligned capabilities — the source of the cache
pressure the paper measures in the Olden benchmarks (§5.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import TypeCheckError


class Qualifiers(enum.IntFlag):
    """Type qualifiers, including the paper's CHERI extensions (§4.1)."""

    NONE = 0
    CONST = 1 << 0
    VOLATILE = 1 << 1
    #: ``__capability`` — represent this pointer as a hardware capability.
    CAPABILITY = 1 << 2
    #: ``__input`` — hardware-enforced read-only view (store permission removed).
    INPUT = 1 << 3
    #: ``__output`` — hardware-enforced write-only view (load permission removed).
    OUTPUT = 1 << 4


class CType:
    """Base class of every mini-C type."""

    qualifiers: Qualifiers = Qualifiers.NONE

    def size(self, ctx: "TypeContext") -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def alignment(self, ctx: "TypeContext") -> int:
        return self.size(ctx)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_const(self) -> bool:
        return bool(self.qualifiers & Qualifiers.CONST)

    def unqualified(self) -> "CType":
        return self

    def with_qualifiers(self, qualifiers: Qualifiers) -> "CType":
        """Return a copy of this type with extra qualifiers OR-ed in."""
        import copy

        if not qualifiers:
            return self
        clone = copy.copy(self)
        clone.qualifiers = self.qualifiers | qualifiers
        return clone


@dataclass(eq=False)
class VoidType(CType):
    qualifiers: Qualifiers = Qualifiers.NONE

    def size(self, ctx: "TypeContext") -> int:
        return 1  # sizeof(void) is a GNU extension; 1 keeps void* arithmetic sane

    def __str__(self) -> str:
        return "void"


@dataclass(eq=False)
class IntType(CType):
    """An integer type of ``bytes`` width; ``char`` is a 1-byte IntType."""

    bytes: int = 4
    signed: bool = True
    name: str = "int"
    #: intptr_t / intcap_t behave specially: capability ABIs give them
    #: capability representation so pointer round trips preserve provenance.
    is_pointer_sized: bool = False
    qualifiers: Qualifiers = Qualifiers.NONE

    def size(self, ctx: "TypeContext") -> int:
        if self.is_pointer_sized:
            return ctx.pointer_bytes
        return self.bytes

    def alignment(self, ctx: "TypeContext") -> int:
        if self.is_pointer_sized:
            return ctx.pointer_align
        return self.bytes

    @property
    def bits(self) -> int:
        return self.bytes * 8

    def __str__(self) -> str:
        return self.name


@dataclass(eq=False)
class PointerType(CType):
    pointee: CType = field(default_factory=VoidType)
    qualifiers: Qualifiers = Qualifiers.NONE

    def size(self, ctx: "TypeContext") -> int:
        return ctx.pointer_bytes

    def alignment(self, ctx: "TypeContext") -> int:
        return ctx.pointer_align

    @property
    def is_capability(self) -> bool:
        return bool(self.qualifiers & Qualifiers.CAPABILITY)

    def __str__(self) -> str:
        quals = []
        if self.qualifiers & Qualifiers.CAPABILITY:
            quals.append("__capability")
        if self.qualifiers & Qualifiers.CONST:
            quals.append("const")
        suffix = (" " + " ".join(quals)) if quals else ""
        return f"{self.pointee}*{suffix}"


@dataclass(eq=False)
class ArrayType(CType):
    element: CType = field(default_factory=lambda: IntType())
    count: int = 0
    qualifiers: Qualifiers = Qualifiers.NONE

    def size(self, ctx: "TypeContext") -> int:
        return self.element.size(ctx) * self.count

    def alignment(self, ctx: "TypeContext") -> int:
        return self.element.alignment(ctx)

    def __str__(self) -> str:
        return f"{self.element}[{self.count}]"


@dataclass
class StructField:
    name: str
    ctype: CType
    #: byte offset within the struct, filled in by :meth:`StructType.layout`.
    offset: int = 0


@dataclass(eq=False)
class StructType(CType):
    """A struct or (when ``is_union``) union type."""

    tag: str = ""
    fields: list[StructField] = field(default_factory=list)
    is_union: bool = False
    complete: bool = False
    qualifiers: Qualifiers = Qualifiers.NONE
    _layout_cache: dict[tuple[int, int], tuple[int, int, tuple[int, ...]]] = field(
        default_factory=dict, repr=False)
    #: layout key whose field offsets are currently installed on the
    #: (shared, mutable) StructField objects; see layout().
    _offsets_owner: tuple[int, int] | None = field(default=None, repr=False)

    def define(self, fields: list[StructField]) -> None:
        if self.complete:
            raise TypeCheckError(f"redefinition of struct {self.tag!r}")
        self.fields = fields
        self.complete = True
        self._layout_cache.clear()
        self._offsets_owner = None

    def layout(self, ctx: "TypeContext") -> tuple[int, int]:
        """Compute (size, alignment), assigning field offsets as a side effect.

        Field offsets live on the shared :class:`StructField` objects, so a
        struct lowered under several pointer layouts (the differential
        runner parses once and lowers the same AST per layout) must restore
        *this* layout's offsets on a cache hit — the memoized size and
        alignment alone would leave the other layout's offsets installed.
        Layout is a pure function of the context's pointer layout, so the
        cache keys on that (an ``id(ctx)`` key could alias a dead context
        whose id was recycled).
        """
        if not self.complete:
            raise TypeCheckError(f"use of incomplete struct {self.tag!r}")
        key = (ctx.pointer_bytes, ctx.pointer_align)
        cached = self._layout_cache.get(key)
        if cached is not None:
            size, align, offsets = cached
            if self._offsets_owner != key:
                for struct_field, offset in zip(self.fields, offsets):
                    struct_field.offset = offset
                self._offsets_owner = key
            return size, align
        size = 0
        align = 1
        for struct_field in self.fields:
            f_align = struct_field.ctype.alignment(ctx)
            f_size = struct_field.ctype.size(ctx)
            align = max(align, f_align)
            if self.is_union:
                struct_field.offset = 0
                size = max(size, f_size)
            else:
                size = _round_up(size, f_align)
                struct_field.offset = size
                size += f_size
        size = _round_up(size, align) if size else align
        self._layout_cache[key] = (size, align,
                                   tuple(f.offset for f in self.fields))
        self._offsets_owner = key
        return size, align

    def size(self, ctx: "TypeContext") -> int:
        return self.layout(ctx)[0]

    def alignment(self, ctx: "TypeContext") -> int:
        return self.layout(ctx)[1]

    def field_named(self, name: str, ctx: "TypeContext") -> StructField:
        self.layout(ctx)
        for struct_field in self.fields:
            if struct_field.name == name:
                return struct_field
        kind = "union" if self.is_union else "struct"
        raise TypeCheckError(f"{kind} {self.tag!r} has no member {name!r}")

    def __str__(self) -> str:
        kind = "union" if self.is_union else "struct"
        return f"{kind} {self.tag}"


@dataclass(eq=False)
class FunctionType(CType):
    return_type: CType = field(default_factory=VoidType)
    params: list[CType] = field(default_factory=list)
    variadic: bool = False
    qualifiers: Qualifiers = Qualifiers.NONE

    def size(self, ctx: "TypeContext") -> int:
        raise TypeCheckError("sizeof applied to a function type")

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params) or "void"
        if self.variadic:
            params += ", ..."
        return f"{self.return_type}({params})"


def _round_up(value: int, alignment: int) -> int:
    if alignment <= 0:
        return value
    return (value + alignment - 1) // alignment * alignment


class TypeContext:
    """Owns named types and the target-dependent layout parameters.

    ``pointer_bytes``/``pointer_align`` describe how pointers are laid out in
    memory for the target ABI: 8/8 for the PDP-11-style MIPS ABI, 32/32 for
    CHERI capabilities.
    """

    def __init__(self, *, pointer_bytes: int = 8, pointer_align: int | None = None) -> None:
        self.pointer_bytes = pointer_bytes
        self.pointer_align = pointer_align if pointer_align is not None else pointer_bytes
        self.structs: dict[str, StructType] = {}
        self.typedefs: dict[str, CType] = {}
        self._install_builtin_types()

    # -- builtin types --------------------------------------------------

    void = property(lambda self: self._void)
    char = property(lambda self: self._char)
    int_ = property(lambda self: self._int)
    long = property(lambda self: self._long)

    def _install_builtin_types(self) -> None:
        self._void = VoidType()
        self._char = IntType(bytes=1, signed=True, name="char")
        self._int = IntType(bytes=4, signed=True, name="int")
        self._long = IntType(bytes=8, signed=True, name="long")
        self.typedefs = {
            "int8_t": IntType(bytes=1, signed=True, name="int8_t"),
            "uint8_t": IntType(bytes=1, signed=False, name="uint8_t"),
            "int16_t": IntType(bytes=2, signed=True, name="int16_t"),
            "uint16_t": IntType(bytes=2, signed=False, name="uint16_t"),
            "int32_t": IntType(bytes=4, signed=True, name="int32_t"),
            "uint32_t": IntType(bytes=4, signed=False, name="uint32_t"),
            "int64_t": IntType(bytes=8, signed=True, name="int64_t"),
            "uint64_t": IntType(bytes=8, signed=False, name="uint64_t"),
            "size_t": IntType(bytes=8, signed=False, name="size_t"),
            "ssize_t": IntType(bytes=8, signed=True, name="ssize_t"),
            "ptrdiff_t": IntType(bytes=8, signed=True, name="ptrdiff_t"),
            # intptr_t / uintptr_t / intcap_t: pointer-sized, so capability
            # ABIs give them capability representation (paper §5.1: "changing
            # the intptr_t typedef to refer to the intcap_t type").
            "intptr_t": IntType(bytes=8, signed=True, name="intptr_t", is_pointer_sized=True),
            "uintptr_t": IntType(bytes=8, signed=False, name="uintptr_t", is_pointer_sized=True),
            "intcap_t": IntType(bytes=8, signed=True, name="intcap_t", is_pointer_sized=True),
            "uintcap_t": IntType(bytes=8, signed=False, name="uintcap_t", is_pointer_sized=True),
        }

    # -- integer type construction --------------------------------------

    def int_type(self, *, bytes: int, signed: bool, name: str | None = None) -> IntType:
        canonical = {1: "char", 2: "short", 4: "int", 8: "long"}
        base = canonical.get(bytes, f"int{bytes * 8}")
        label = name or (base if signed else f"unsigned {base}")
        return IntType(bytes=bytes, signed=signed, name=label)

    # -- pointer / array helpers ----------------------------------------

    def pointer_to(self, pointee: CType, qualifiers: Qualifiers = Qualifiers.NONE) -> PointerType:
        return PointerType(pointee=pointee, qualifiers=qualifiers)

    def array_of(self, element: CType, count: int) -> ArrayType:
        return ArrayType(element=element, count=count)

    # -- named struct management ----------------------------------------

    def struct(self, tag: str, *, is_union: bool = False) -> StructType:
        """Get or create the (possibly incomplete) struct with this tag."""
        key = ("union " if is_union else "struct ") + tag
        existing = self.structs.get(key)
        if existing is None:
            existing = StructType(tag=tag, is_union=is_union)
            self.structs[key] = existing
        return existing

    def typedef(self, name: str, ctype: CType) -> None:
        self.typedefs[name] = ctype

    def lookup_typedef(self, name: str) -> CType | None:
        return self.typedefs.get(name)

    # -- conversions -----------------------------------------------------

    def common_type(self, a: CType, b: CType) -> CType:
        """The usual arithmetic conversions, restricted to what mini-C needs."""
        if a.is_pointer:
            return a
        if b.is_pointer:
            return b
        if not (isinstance(a, IntType) and isinstance(b, IntType)):
            raise TypeCheckError(f"no common type for {a} and {b}")
        if a.bytes == b.bytes:
            signed = a.signed and b.signed
            return a if a.signed == signed else b
        return a if a.bytes > b.bytes else b

"""AST-to-source rendering for mini-C.

The differential-testing subsystem (:mod:`repro.difftest`) builds programs
directly as :mod:`repro.minic.astnodes` trees — well-formed and well-typed by
construction — and the delta-debugging reducer shrinks those trees.  Both
need a way back to concrete syntax so the ordinary ``parse -> irgen``
pipeline (the same one every workload and test uses) can compile them.

``unparse`` is therefore written to be *round-trip safe*: every construct it
emits is inside the grammar :mod:`repro.minic.parser` accepts, and operator
precedence is made explicit with parentheses whenever an operand binds more
loosely than its context requires.  Struct and union definitions do not
appear in the AST (the parser registers them in the :class:`TypeContext` as
a side effect), so callers pass the :class:`StructType` objects to emit as a
preamble.
"""

from __future__ import annotations

from repro.common.errors import CompilationError
from repro.minic import astnodes as ast
from repro.minic.typesys import (
    ArrayType,
    CType,
    IntType,
    PointerType,
    Qualifiers,
    StructType,
    VoidType,
)

#: precedence levels mirroring the parser's table, extended with the levels
#: the parser handles structurally (assignment, conditional, unary, postfix).
_PREC_ASSIGN = 0
_PREC_COND = 1
_BINARY_PRECEDENCE = {
    "||": 2,
    "&&": 3,
    "|": 4,
    "^": 5,
    "&": 6,
    "==": 7, "!=": 7,
    "<": 8, ">": 8, "<=": 8, ">=": 8,
    "<<": 9, ">>": 9,
    "+": 10, "-": 10,
    "*": 11, "/": 11, "%": 11,
}
_PREC_UNARY = 12
_PREC_POSTFIX = 13
_PREC_PRIMARY = 14

_STRING_ESCAPES = {
    "\n": "\\n", "\t": "\\t", "\r": "\\r", "\0": "\\0", "\\": "\\\\",
    '"': '\\"', "\a": "\\a", "\b": "\\b", "\f": "\\f", "\v": "\\v",
}


def _pointer_qualifiers(qualifiers: Qualifiers) -> str:
    """Pointer-level qualifier keywords (" __input", " __capability", ...).

    ``__input``/``__output`` imply ``__capability`` in the parser, so they
    are rendered alone; a bare capability qualifier renders as
    ``__capability``.  The rendered string round-trips to the same flag set.
    """
    if qualifiers & Qualifiers.INPUT:
        quals = " __input"
    elif qualifiers & Qualifiers.OUTPUT:
        quals = " __output"
    elif qualifiers & Qualifiers.CAPABILITY:
        quals = " __capability"
    else:
        quals = ""
    if qualifiers & Qualifiers.CONST:
        quals += " const"
    return quals


def type_to_str(ctype: CType) -> str:
    """Render an abstract type (cast / sizeof position)."""
    if isinstance(ctype, PointerType):
        return f"{type_to_str(ctype.pointee)} *{_pointer_qualifiers(ctype.qualifiers)}"
    if isinstance(ctype, StructType):
        kind = "union" if ctype.is_union else "struct"
        return f"{kind} {ctype.tag}"
    if isinstance(ctype, IntType):
        prefix = "const " if ctype.is_const else ""
        return prefix + ctype.name
    if isinstance(ctype, VoidType):
        return "void"
    if isinstance(ctype, ArrayType):
        # abstract array types only appear via sizeof(expr) in practice
        return f"{type_to_str(ctype.element)} *"
    raise CompilationError(f"cannot render type {ctype!r}")


def declarator_to_str(ctype: CType, name: str) -> str:
    """Render a declaration of ``name`` with type ``ctype``."""
    suffix = ""
    while isinstance(ctype, ArrayType):
        suffix += f"[{ctype.count}]"
        ctype = ctype.element
    stars = ""
    while isinstance(ctype, PointerType):
        quals = _pointer_qualifiers(ctype.qualifiers)
        stars = "*" + (quals.lstrip() + " " if quals else "") + stars
        ctype = ctype.pointee
    base = type_to_str(ctype)
    return f"{base} {stars}{name}{suffix}"


def struct_definition(struct: StructType) -> str:
    kind = "union" if struct.is_union else "struct"
    lines = [f"{kind} {struct.tag} {{"]
    for field in struct.fields:
        lines.append(f"    {declarator_to_str(field.ctype, field.name)};")
    lines.append("};")
    return "\n".join(lines)


class Unparser:
    """Stateless-ish renderer; one instance per translation unit."""

    def __init__(self, indent: str = "    ") -> None:
        self._indent = indent
        self._lines: list[str] = []
        self._level = 0

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def expr(self, node: ast.Expr, min_prec: int = _PREC_ASSIGN) -> str:
        text, prec = self._expr(node)
        if prec < min_prec:
            return f"({text})"
        return text

    def _expr(self, node: ast.Expr) -> tuple[str, int]:
        if isinstance(node, ast.IntLiteral):
            if node.value < 0:
                return f"-{-node.value}", _PREC_UNARY
            return str(node.value), _PREC_PRIMARY
        if isinstance(node, ast.CharLiteral):
            ch = chr(node.value & 0xFF)
            if ch == "'":
                return r"'\''", _PREC_PRIMARY
            if ch == '"':
                return "'\"'", _PREC_PRIMARY
            if ch in _STRING_ESCAPES:
                return f"'{_STRING_ESCAPES[ch]}'", _PREC_PRIMARY
            if 32 <= node.value < 127:
                return f"'{ch}'", _PREC_PRIMARY
            return str(node.value), _PREC_PRIMARY
        if isinstance(node, ast.StringLiteral):
            pieces: list[str] = []
            hex_open = False  # previous piece was a \xNN escape
            for ch in node.value:
                if ord(ch) >= 32 or ch in _STRING_ESCAPES:
                    if hex_open and ch in "0123456789abcdefABCDEF":
                        # the lexer's \x escape is greedy: split into
                        # adjacent literals ("\x01" "ab") so NN stays two
                        # digits on the way back in
                        pieces.append('" "')
                    pieces.append(_STRING_ESCAPES.get(ch, ch))
                    hex_open = False
                else:
                    if hex_open:
                        pieces.append('" "')
                    pieces.append(f"\\x{ord(ch):02x}")
                    hex_open = True
            return f'"{"".join(pieces)}"', _PREC_PRIMARY
        if isinstance(node, ast.Identifier):
            return node.name, _PREC_PRIMARY
        if isinstance(node, ast.Unary):
            operand = self.expr(node.operand, _PREC_UNARY)
            # avoid `--x` / `+ +x` ambiguity when the operand renders with the
            # same leading sign
            if node.op in "+-" and operand.startswith(node.op):
                operand = f"({operand})"
            return f"{node.op}{operand}", _PREC_UNARY
        if isinstance(node, ast.IncDec):
            if node.is_prefix:
                return f"{node.op}{self.expr(node.operand, _PREC_UNARY)}", _PREC_UNARY
            return f"{self.expr(node.operand, _PREC_POSTFIX)}{node.op}", _PREC_POSTFIX
        if isinstance(node, ast.Binary):
            prec = _BINARY_PRECEDENCE[node.op]
            left = self.expr(node.left, prec)
            right = self.expr(node.right, prec + 1)
            return f"{left} {node.op} {right}", prec
        if isinstance(node, ast.Assign):
            target = self.expr(node.target, _PREC_UNARY)
            value = self.expr(node.value, _PREC_ASSIGN)
            return f"{target} {node.op} {value}", _PREC_ASSIGN
        if isinstance(node, ast.Conditional):
            condition = self.expr(node.condition, _PREC_COND + 1)
            then_value = self.expr(node.then_value, _PREC_ASSIGN)
            else_value = self.expr(node.else_value, _PREC_COND)
            return f"{condition} ? {then_value} : {else_value}", _PREC_COND
        if isinstance(node, ast.Cast):
            operand = self.expr(node.operand, _PREC_UNARY)
            return f"({type_to_str(node.target_type)}){operand}", _PREC_UNARY
        if isinstance(node, ast.SizeofType):
            return f"sizeof({type_to_str(node.target_type)})", _PREC_PRIMARY
        if isinstance(node, ast.SizeofExpr):
            return f"sizeof({self.expr(node.operand)})", _PREC_UNARY
        if isinstance(node, ast.OffsetOf):
            return f"offsetof({type_to_str(node.target_type)}, {node.member})", _PREC_PRIMARY
        if isinstance(node, ast.Call):
            args = ", ".join(self.expr(arg) for arg in node.args)
            return f"{node.callee}({args})", _PREC_POSTFIX
        if isinstance(node, ast.Index):
            base = self.expr(node.base, _PREC_POSTFIX)
            return f"{base}[{self.expr(node.index)}]", _PREC_POSTFIX
        if isinstance(node, ast.Member):
            base = self.expr(node.base, _PREC_POSTFIX)
            op = "->" if node.arrow else "."
            return f"{base}{op}{node.member}", _PREC_POSTFIX
        raise CompilationError(f"cannot render expression node {node!r}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _emit(self, text: str) -> None:
        self._lines.append(self._indent * self._level + text if text else "")

    def stmt(self, node: ast.Stmt) -> None:
        if isinstance(node, ast.Declaration):
            decl = declarator_to_str(node.ctype, node.name)
            if node.array_initializer is not None:
                values = ", ".join(self.expr(v) for v in node.array_initializer)
                self._emit(f"{decl} = {{{values}}};")
            elif node.initializer is not None:
                self._emit(f"{decl} = {self.expr(node.initializer)};")
            else:
                self._emit(f"{decl};")
            return
        if isinstance(node, ast.Block):
            if node.transparent:
                for child in node.statements:
                    self.stmt(child)
                return
            self._emit("{")
            self._level += 1
            for child in node.statements:
                self.stmt(child)
            self._level -= 1
            self._emit("}")
            return
        if isinstance(node, ast.ExprStmt):
            self._emit(f"{self.expr(node.expr)};" if node.expr is not None else ";")
            return
        if isinstance(node, ast.If):
            self._emit(f"if ({self.expr(node.condition)}) {{")
            self._level += 1
            self._stmt_as_body(node.then_branch)
            self._level -= 1
            if node.else_branch is not None:
                self._emit("} else {")
                self._level += 1
                self._stmt_as_body(node.else_branch)
                self._level -= 1
            self._emit("}")
            return
        if isinstance(node, ast.While):
            self._emit(f"while ({self.expr(node.condition)}) {{")
            self._level += 1
            self._stmt_as_body(node.body)
            self._level -= 1
            self._emit("}")
            return
        if isinstance(node, ast.For):
            init = ""
            if isinstance(node.init, ast.Declaration):
                # render inline without the trailing newline machinery
                sub = Unparser(self._indent)
                sub.stmt(node.init)
                init = sub.text().strip().rstrip(";")
            elif isinstance(node.init, ast.ExprStmt) and node.init.expr is not None:
                init = self.expr(node.init.expr)
            condition = self.expr(node.condition) if node.condition is not None else ""
            step = self.expr(node.step) if node.step is not None else ""
            self._emit(f"for ({init}; {condition}; {step}) {{")
            self._level += 1
            self._stmt_as_body(node.body)
            self._level -= 1
            self._emit("}")
            return
        if isinstance(node, ast.Return):
            if node.value is None:
                self._emit("return;")
            else:
                self._emit(f"return {self.expr(node.value)};")
            return
        if isinstance(node, ast.Break):
            self._emit("break;")
            return
        if isinstance(node, ast.Continue):
            self._emit("continue;")
            return
        raise CompilationError(f"cannot render statement node {node!r}")

    def _stmt_as_body(self, node: ast.Stmt | None) -> None:
        """Render a loop/if body, flattening a non-transparent Block one level."""
        if node is None:
            return
        if isinstance(node, ast.Block) and not node.transparent:
            for child in node.statements:
                self.stmt(child)
        else:
            self.stmt(node)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def function(self, function: ast.FunctionDef) -> None:
        return_type = type_to_str(function.return_type) if function.return_type else "void"
        if function.params:
            params = ", ".join(declarator_to_str(p.ctype, p.name) for p in function.params)
        else:
            params = "void"
        if function.variadic:
            params += ", ..."
        self._emit(f"{return_type} {function.name}({params}) {{")
        self._level += 1
        if function.body is not None:
            for child in function.body.statements:
                self.stmt(child)
        self._level -= 1
        self._emit("}")

    def text(self) -> str:
        return "\n".join(self._lines)


def unparse(unit: ast.TranslationUnit, *, structs: list[StructType] | None = None,
            header: str = "") -> str:
    """Render a translation unit (plus struct preamble) back to mini-C source."""
    parts: list[str] = []
    if header:
        parts.append("".join(f"/* {line} */\n" for line in header.splitlines()))
    for struct in structs or ():
        parts.append(struct_definition(struct) + "\n")
    renderer = Unparser()
    for declaration in unit.declarations:
        renderer.stmt(declaration)
    for function in unit.functions:
        renderer.function(function)
        renderer._emit("")
    parts.append(renderer.text())
    return "\n".join(parts).rstrip() + "\n"

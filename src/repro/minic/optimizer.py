"""A small IR optimizer.

The paper's survey methodology only counts idioms that *survive optimization*
("We ignore those that do not survive optimization because they will have no
effect on run-time enforcement").  The passes here mirror the cheap clean-ups
a production compiler would always perform, so the idiom detector and the
interpreter both see IR free of obviously-dead pointer/integer churn:

* constant folding of integer arithmetic, comparisons and casts;
* removal of ``ptrtoint``/``inttoptr`` round trips whose integer value is
  never touched (these are exactly the cases that do not constrain a memory
  model);
* dead-code elimination of side-effect-free instructions whose results are
  unused.
"""

from __future__ import annotations

from repro.common.bitops import sign_extend, truncate
from repro.minic.ir import Const, Function, Instr, Module, Opcode, Temp

#: opcodes with observable side effects (never removed by DCE).
_SIDE_EFFECTS = {
    Opcode.STORE, Opcode.CALL, Opcode.RET, Opcode.JUMP, Opcode.CJUMP, Opcode.LABEL, Opcode.ALLOCA,
}

_FOLDABLE_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << (b & 63),
    ">>": lambda a, b: a >> (b & 63),
}

_FOLDABLE_CMPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def optimize_module(module: Module, *, passes: int = 2) -> Module:
    """Run the optimization pipeline over every function in place."""
    for function in module.functions.values():
        for _ in range(passes):
            changed = constant_fold(function, module)
            changed |= eliminate_dead_code(function)
            if not changed:
                break
        # Both passes mutate instructions (possibly in place): drop any label
        # map cached before optimization.
        function.invalidate_label_index()
    return module


def constant_fold(function: Function, module: Module) -> bool:
    """Fold integer arithmetic on constants and propagate the results."""
    changed = False
    constants: dict[int, Const] = {}
    for instr in function.instrs:
        instr.args = [
            constants.get(arg.index, arg) if isinstance(arg, Temp) else arg
            for arg in instr.args
        ]
        if instr.dest is None:
            continue
        folded = _fold(instr, module)
        if folded is not None:
            constants[instr.dest.index] = folded
            instr.op = Opcode.NOP
            instr.args = []
            changed = True
    return changed


def _fold(instr: Instr, module: Module) -> Const | None:
    if instr.op is Opcode.BINOP and all(isinstance(a, Const) for a in instr.args):
        operator = instr.attrs["operator"]
        handler = _FOLDABLE_BINOPS.get(operator)
        if handler is None:
            return None
        if operator in ("/", "%") and instr.args[1].value == 0:
            return None
        value = handler(instr.args[0].value, instr.args[1].value)
        return Const(_wrap(value, instr, module), instr.ctype)
    if instr.op is Opcode.CMP and all(isinstance(a, Const) for a in instr.args):
        handler = _FOLDABLE_CMPS.get(instr.attrs["operator"])
        if handler is None:
            return None
        return Const(1 if handler(instr.args[0].value, instr.args[1].value) else 0, instr.ctype)
    if instr.op is Opcode.UNOP and isinstance(instr.args[0], Const):
        value = instr.args[0].value
        result = -value if instr.attrs["operator"] == "neg" else ~value
        return Const(_wrap(result, instr, module), instr.ctype)
    if instr.op is Opcode.INTCAST and isinstance(instr.args[0], Const):
        return Const(_wrap(instr.args[0].value, instr, module), instr.ctype)
    return None


def _wrap(value: int, instr: Instr, module: Module) -> int:
    ctype = instr.ctype
    if ctype is None or module.context is None:
        return value
    try:
        bits = min(ctype.size(module.context), 8) * 8
    except Exception:  # incomplete/struct types never reach here in practice
        return value
    wrapped = truncate(value, bits)
    if getattr(ctype, "signed", True):
        wrapped = sign_extend(wrapped, bits)
    return wrapped


def eliminate_dead_code(function: Function) -> bool:
    """Remove instructions whose results are never used and that have no effects.

    Also removes ``ptrtoint`` whose result feeds only a dead ``inttoptr`` —
    the "does not survive optimization" case the paper's survey ignores.
    """
    used: set[int] = set()
    for instr in function.instrs:
        for arg in instr.args:
            if isinstance(arg, Temp):
                used.add(arg.index)
    changed = False
    for instr in function.instrs:
        if instr.op in _SIDE_EFFECTS or instr.op is Opcode.NOP:
            continue
        if instr.dest is not None and instr.dest.index not in used:
            instr.op = Opcode.NOP
            instr.args = []
            instr.dest = None
            changed = True
    if changed:
        function.instrs = [i for i in function.instrs if i.op is not Opcode.NOP]
    return changed

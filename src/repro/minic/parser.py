"""Recursive-descent parser for mini-C.

The grammar is the C subset described in :mod:`repro.minic`.  Declarators are
deliberately simple — pointers, 1-D arrays and function parameter lists — and
the parser shares a :class:`~repro.minic.typesys.TypeContext` with the IR
generator so struct tags and typedef names resolve consistently.
"""

from __future__ import annotations

from repro.common.errors import ParseError
from repro.minic import astnodes as ast
from repro.minic.lexer import Lexer, Token, TokenKind
from repro.minic.typesys import (
    ArrayType,
    CType,
    IntType,
    PointerType,
    Qualifiers,
    StructField,
    StructType,
    TypeContext,
    VoidType,
)

#: binary operator precedence (higher binds tighter); assignment and the
#: conditional operator are handled separately.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

_TYPE_KEYWORDS = {
    "void", "char", "short", "int", "long", "signed", "unsigned",
    "struct", "union", "const", "volatile", "__capability", "__input", "__output",
    "static", "extern", "register", "inline",
}

#: maximum combined statement/expression nesting depth.  The recursive
#: descent uses a handful of CPython frames per level, so unguarded input
#: like ``((((...))))`` or ``{{{{...}}}}`` would surface as a raw
#: ``RecursionError`` instead of a diagnostic; 100 levels is far beyond any
#: real program while staying well inside the default interpreter stack.
_MAX_NESTING = 100


def parse(source: str, *, context: TypeContext | None = None) -> tuple[ast.TranslationUnit, TypeContext]:
    """Parse a mini-C source string; returns the AST and the type context."""
    ctx = context or TypeContext()
    parser = Parser(source, ctx)
    return parser.parse_translation_unit(), ctx


class Parser:
    """A hand-written recursive-descent parser."""

    def __init__(self, source: str, context: TypeContext) -> None:
        self._tokens = Lexer(source).tokenize()
        self._pos = 0
        self._ctx = context
        self._depth = 0

    def _descend(self) -> None:
        """Bump the nesting depth; structured diagnostic past the limit."""
        self._depth += 1
        if self._depth > _MAX_NESTING:
            raise self._error(f"nesting deeper than {_MAX_NESTING} levels")

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._current
        return ParseError(f"{message} (got {token.text!r})", line=token.line, column=token.column)

    def _expect_punct(self, text: str) -> Token:
        if not self._current.is_punct(text):
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._current.kind is not TokenKind.IDENT:
            raise self._error("expected identifier")
        return self._advance()

    def _accept_punct(self, text: str) -> bool:
        if self._current.is_punct(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._current.is_keyword(text):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------

    def _starts_type(self, token: Token | None = None) -> bool:
        token = token or self._current
        if token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
            return True
        if token.kind is TokenKind.IDENT and self._ctx.lookup_typedef(token.text) is not None:
            return True
        return False

    def _parse_declaration_specifiers(self) -> CType:
        """Parse qualifiers + a base type (no declarator)."""
        qualifiers = Qualifiers.NONE
        signedness: bool | None = None
        base: CType | None = None
        long_count = 0
        saw_int_keyword = False

        while True:
            token = self._current
            if token.is_keyword("const"):
                qualifiers |= Qualifiers.CONST
            elif token.is_keyword("volatile"):
                qualifiers |= Qualifiers.VOLATILE
            elif token.is_keyword("__capability"):
                qualifiers |= Qualifiers.CAPABILITY
            elif token.is_keyword("__input"):
                qualifiers |= Qualifiers.INPUT | Qualifiers.CAPABILITY
            elif token.is_keyword("__output"):
                qualifiers |= Qualifiers.OUTPUT | Qualifiers.CAPABILITY
            elif token.is_keyword("static") or token.is_keyword("extern") \
                    or token.is_keyword("register") or token.is_keyword("inline"):
                pass  # storage classes accepted and ignored
            elif token.is_keyword("unsigned"):
                signedness = False
            elif token.is_keyword("signed"):
                signedness = True
            elif token.is_keyword("void"):
                base = VoidType()
            elif token.is_keyword("char"):
                base = IntType(bytes=1, signed=True, name="char")
            elif token.is_keyword("short"):
                base = IntType(bytes=2, signed=True, name="short")
            elif token.is_keyword("int"):
                saw_int_keyword = True
            elif token.is_keyword("long"):
                long_count += 1
            elif token.is_keyword("struct") or token.is_keyword("union"):
                self._advance()
                base = self._parse_struct_type(is_union=token.text == "union")
                continue
            elif token.kind is TokenKind.IDENT and base is None and long_count == 0 \
                    and not saw_int_keyword and signedness is None:
                typedef = self._ctx.lookup_typedef(token.text)
                if typedef is None:
                    break
                base = typedef
            else:
                break
            self._advance()

        if base is None:
            if long_count >= 1:
                base = IntType(bytes=8, signed=True, name="long")
            elif saw_int_keyword or signedness is not None:
                base = IntType(bytes=4, signed=True, name="int")
            else:
                raise self._error("expected a type")
        elif long_count >= 1 and isinstance(base, IntType) and base.name == "int":
            base = IntType(bytes=8, signed=True, name="long")

        if signedness is not None and isinstance(base, IntType):
            base = IntType(
                bytes=base.bytes,
                signed=signedness,
                name=base.name if signedness else f"unsigned {base.name}",
                is_pointer_sized=base.is_pointer_sized,
            )
        if qualifiers and not isinstance(base, PointerType):
            base = base.with_qualifiers(qualifiers & (Qualifiers.CONST | Qualifiers.VOLATILE))
        # Pointer-level qualifiers (__capability, __input, __output) are applied
        # by the declarator when a '*' follows; remember them on the side.
        self._pending_pointer_qualifiers = qualifiers & (
            Qualifiers.CAPABILITY | Qualifiers.INPUT | Qualifiers.OUTPUT | Qualifiers.CONST
        )
        return base

    def _parse_struct_type(self, *, is_union: bool) -> StructType:
        tag = ""
        if self._current.kind is TokenKind.IDENT:
            tag = self._advance().text
        struct = self._ctx.struct(tag or f"__anon_{self._pos}", is_union=is_union)
        if self._current.is_punct("{"):
            self._advance()
            fields: list[StructField] = []
            while not self._current.is_punct("}"):
                base = self._parse_declaration_specifiers()
                while True:
                    ctype, name, _ = self._parse_declarator(base)
                    fields.append(StructField(name=name, ctype=ctype))
                    if not self._accept_punct(","):
                        break
                self._expect_punct(";")
            self._expect_punct("}")
            struct.define(fields)
        return struct

    def _parse_declarator(self, base: CType) -> tuple[CType, str, int]:
        """Parse ``* ... name [N]`` and return (type, name, line)."""
        ctype = base
        pointer_quals = getattr(self, "_pending_pointer_qualifiers", Qualifiers.NONE)
        while self._current.is_punct("*"):
            self._advance()
            quals = Qualifiers.NONE
            while self._current.is_keyword("const") or self._current.is_keyword("volatile") \
                    or self._current.is_keyword("__capability") or self._current.is_keyword("__input") \
                    or self._current.is_keyword("__output"):
                keyword = self._advance().text
                if keyword == "const":
                    quals |= Qualifiers.CONST
                elif keyword == "__capability":
                    quals |= Qualifiers.CAPABILITY
                elif keyword == "__input":
                    quals |= Qualifiers.INPUT | Qualifiers.CAPABILITY
                elif keyword == "__output":
                    quals |= Qualifiers.OUTPUT | Qualifiers.CAPABILITY
            ctype = PointerType(pointee=ctype, qualifiers=quals | pointer_quals)
            pointer_quals = Qualifiers.NONE
        name_token = self._current
        name = ""
        if name_token.kind is TokenKind.IDENT:
            name = self._advance().text
        while self._current.is_punct("["):
            self._advance()
            if self._current.is_punct("]"):
                count = 0
            else:
                count_token = self._current
                if count_token.kind is not TokenKind.INT:
                    raise self._error("array size must be an integer literal")
                count = int(count_token.value)
                self._advance()
            self._expect_punct("]")
            ctype = ArrayType(element=ctype, count=count)
        return ctype, name, name_token.line

    def _parse_type_name(self) -> CType:
        """Parse an abstract type (for casts and sizeof)."""
        base = self._parse_declaration_specifiers()
        ctype, _, _ = self._parse_declarator(base)
        return ctype

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self._current.kind is not TokenKind.EOF:
            if self._accept_keyword("typedef"):
                base = self._parse_declaration_specifiers()
                ctype, name, _ = self._parse_declarator(base)
                self._expect_punct(";")
                self._ctx.typedef(name, ctype)
                continue
            line = self._current.line
            base = self._parse_declaration_specifiers()
            if self._accept_punct(";"):
                continue  # bare struct/union definition
            ctype, name, decl_line = self._parse_declarator(base)
            if self._current.is_punct("("):
                unit.functions.append(self._parse_function(ctype, name, line))
            else:
                self._parse_global_tail(unit, ctype, name, decl_line, base)
        return unit

    def _parse_global_tail(
        self,
        unit: ast.TranslationUnit,
        ctype: CType,
        name: str,
        line: int,
        base: CType,
    ) -> None:
        while True:
            declaration = ast.Declaration(name=name, ctype=ctype, is_global=True, line=line)
            if self._accept_punct("="):
                if self._current.is_punct("{"):
                    declaration.array_initializer = self._parse_brace_initializer()
                else:
                    declaration.initializer = self._parse_assignment()
            unit.declarations.append(declaration)
            if self._accept_punct(","):
                ctype, name, line = self._parse_declarator(base)
                continue
            self._expect_punct(";")
            return

    def _parse_brace_initializer(self) -> list[ast.Expr]:
        self._expect_punct("{")
        values: list[ast.Expr] = []
        while not self._current.is_punct("}"):
            values.append(self._parse_assignment())
            if not self._accept_punct(","):
                break
        self._expect_punct("}")
        return values

    def _parse_function(self, return_type: CType, name: str, line: int) -> ast.FunctionDef:
        self._expect_punct("(")
        params: list[ast.Parameter] = []
        variadic = False
        if not self._current.is_punct(")"):
            if self._current.is_keyword("void") and self._peek().is_punct(")"):
                self._advance()
            else:
                while True:
                    if self._current.is_punct("..."):
                        self._advance()
                        variadic = True
                        break
                    param_base = self._parse_declaration_specifiers()
                    param_type, param_name, param_line = self._parse_declarator(param_base)
                    if isinstance(param_type, ArrayType):
                        param_type = PointerType(pointee=param_type.element)
                    params.append(ast.Parameter(name=param_name, ctype=param_type, line=param_line))
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        if self._accept_punct(";"):
            # Forward declaration / prototype: record nothing (intrinsics and
            # later definitions provide the body).
            return ast.FunctionDef(name=name, return_type=return_type, params=params,
                                   body=None, variadic=variadic, line=line)
        body = self._parse_block()
        return ast.FunctionDef(
            name=name, return_type=return_type, params=params, body=body, variadic=variadic, line=line
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect_punct("{")
        block = ast.Block(line=start.line)
        while not self._current.is_punct("}"):
            block.statements.append(self._parse_statement())
        self._expect_punct("}")
        return block

    def _parse_statement(self) -> ast.Stmt:
        self._descend()
        try:
            return self._parse_statement_inner()
        finally:
            self._depth -= 1

    def _parse_statement_inner(self) -> ast.Stmt:
        token = self._current
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._current.is_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return ast.Return(value=value, line=token.line)
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.Break(line=token.line)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.Continue(line=token.line)
        if self._starts_type(token) and not token.is_keyword("sizeof"):
            return self._parse_local_declaration()
        if token.is_punct(";"):
            self._advance()
            return ast.ExprStmt(expr=None, line=token.line)
        expr = self._parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr=expr, line=token.line)

    def _parse_local_declaration(self) -> ast.Stmt:
        line = self._current.line
        base = self._parse_declaration_specifiers()
        statements: list[ast.Stmt] = []
        while True:
            ctype, name, decl_line = self._parse_declarator(base)
            declaration = ast.Declaration(name=name, ctype=ctype, line=decl_line)
            if self._accept_punct("="):
                if self._current.is_punct("{"):
                    declaration.array_initializer = self._parse_brace_initializer()
                else:
                    declaration.initializer = self._parse_assignment()
            statements.append(declaration)
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if len(statements) == 1:
            return statements[0]
        return ast.Block(statements=statements, line=line, transparent=True)

    def _parse_if(self) -> ast.If:
        token = self._advance()
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        then_branch = self._parse_statement()
        else_branch = None
        if self._accept_keyword("else"):
            else_branch = self._parse_statement()
        return ast.If(condition=condition, then_branch=then_branch, else_branch=else_branch, line=token.line)

    def _parse_while(self) -> ast.While:
        token = self._advance()
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.While(condition=condition, body=body, line=token.line)

    def _parse_do_while(self) -> ast.Stmt:
        """``do body while (cond);`` desugared to ``body; while (cond) body;``."""
        token = self._advance()
        body = self._parse_statement()
        if not self._accept_keyword("while"):
            raise self._error("expected 'while' after do-body")
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        loop = ast.While(condition=condition, body=body, line=token.line)
        return ast.Block(statements=[body, loop], line=token.line)

    def _parse_for(self) -> ast.For:
        token = self._advance()
        self._expect_punct("(")
        init: ast.Stmt | None = None
        if not self._current.is_punct(";"):
            if self._starts_type():
                init = self._parse_local_declaration()
            else:
                init = ast.ExprStmt(expr=self._parse_expression(), line=self._current.line)
                self._expect_punct(";")
        else:
            self._advance()
        condition = None
        if not self._current.is_punct(";"):
            condition = self._parse_expression()
        self._expect_punct(";")
        step = None
        if not self._current.is_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(init=init, condition=condition, step=step, body=body, line=token.line)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._current
        if token.kind is TokenKind.PUNCT and token.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(op=token.text, target=left, value=value, line=token.line)
        return left

    def _parse_conditional(self) -> ast.Expr:
        condition = self._parse_binary(0)
        if self._current.is_punct("?"):
            token = self._advance()
            then_value = self._parse_expression()
            self._expect_punct(":")
            else_value = self._parse_conditional()
            return ast.Conditional(
                condition=condition, then_value=then_value, else_value=else_value, line=token.line
            )
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._current
            if token.kind is not TokenKind.PUNCT:
                return left
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(op=token.text, left=left, right=right, line=token.line)

    def _parse_unary(self) -> ast.Expr:
        self._descend()
        try:
            return self._parse_unary_inner()
        finally:
            self._depth -= 1

    def _parse_unary_inner(self) -> ast.Expr:
        token = self._current
        if token.kind is TokenKind.PUNCT and token.text in ("-", "+", "!", "~", "*", "&"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=token.text, operand=operand, line=token.line)
        if token.is_punct("++") or token.is_punct("--"):
            self._advance()
            operand = self._parse_unary()
            return ast.IncDec(op=token.text, operand=operand, is_prefix=True, line=token.line)
        if token.is_keyword("sizeof"):
            self._advance()
            if self._current.is_punct("(") and self._starts_type(self._peek()):
                self._expect_punct("(")
                target_type = self._parse_type_name()
                self._expect_punct(")")
                return ast.SizeofType(target_type=target_type, line=token.line)
            operand = self._parse_unary()
            return ast.SizeofExpr(operand=operand, line=token.line)
        if token.is_punct("(") and self._starts_type(self._peek()):
            self._advance()
            target_type = self._parse_type_name()
            self._expect_punct(")")
            operand = self._parse_unary()
            return ast.Cast(target_type=target_type, operand=operand, line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._current
            if token.is_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(base=expr, index=index, line=token.line)
            elif token.is_punct("."):
                self._advance()
                member = self._expect_ident().text
                expr = ast.Member(base=expr, member=member, arrow=False, line=token.line)
            elif token.is_punct("->"):
                self._advance()
                member = self._expect_ident().text
                expr = ast.Member(base=expr, member=member, arrow=True, line=token.line)
            elif token.is_punct("++") or token.is_punct("--"):
                self._advance()
                expr = ast.IncDec(op=token.text, operand=expr, is_prefix=False, line=token.line)
            elif token.is_punct("(") and isinstance(expr, ast.Identifier) and expr.name == "offsetof":
                self._advance()
                target_type = self._parse_type_name()
                self._expect_punct(",")
                member = self._expect_ident().text
                self._expect_punct(")")
                expr = ast.OffsetOf(target_type=target_type, member=member, line=token.line)
            elif token.is_punct("(") and isinstance(expr, ast.Identifier):
                self._advance()
                args: list[ast.Expr] = []
                while not self._current.is_punct(")"):
                    args.append(self._parse_assignment())
                    if not self._accept_punct(","):
                        break
                self._expect_punct(")")
                expr = ast.Call(callee=expr.name, args=args, line=token.line)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLiteral(value=int(token.value), line=token.line)
        if token.kind is TokenKind.CHAR:
            self._advance()
            return ast.CharLiteral(value=int(token.value), line=token.line)
        if token.kind is TokenKind.STRING:
            self._advance()
            # adjacent string literals concatenate
            text = str(token.value)
            while self._current.kind is TokenKind.STRING:
                text += str(self._advance().value)
            return ast.StringLiteral(value=text, line=token.line)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return ast.Identifier(name=token.text, line=token.line)
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise self._error("expected an expression")

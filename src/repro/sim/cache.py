"""Cycle-approximate cache and DRAM timing model.

The paper's performance results (Figures 1-4) are driven by one architectural
mechanism: CHERI capabilities are 256 bits, so pointer-dense data structures
occupy four times the cache footprint of 64-bit pointers, and pointer-chasing
workloads (Olden) pay extra cache misses while compute-bound workloads
(Dhrystone) and streaming workloads (tcpdump, zlib) do not.  The evaluation
platform is described in §5.2: 16 KB L1 data cache, 64 KB L2, with DRAM that
is fast relative to the 100 MHz core.

This module supplies that mechanism to both execution engines:

* the ISA simulator feeds every data access through a :class:`MemoryHierarchy`
  and accumulates stall cycles;
* the abstract-machine interpreter (used for the workload figures) feeds its
  memory-access stream through the same hierarchy, so the MIPS-ABI and
  capability-ABI builds of a workload differ exactly where the paper says they
  do — in the size of the pointers they move through the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import CacheConfig, TimingConfig


@dataclass
class AccessStats:
    """Counters accumulated by a cache level or by the whole hierarchy."""

    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "AccessStats") -> "AccessStats":
        return AccessStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
        )


class CacheLevel:
    """A set-associative cache with true-LRU replacement.

    Only presence/absence is modelled (no data storage): the simulator and the
    interpreter keep the authoritative memory contents, and the cache decides
    how many cycles each access costs.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = AccessStats()
        # each set maps line tag -> LRU timestamp
        self._sets: list[dict[int, int]] = [dict() for _ in range(config.num_sets)]
        self._clock = 0

    def reset(self) -> None:
        """Drop all cached lines and statistics."""
        self.stats = AccessStats()
        self._sets = [dict() for _ in range(self.config.num_sets)]
        self._clock = 0

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.config.line_bytes
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return set_index, tag

    def access(self, address: int, *, is_write: bool) -> bool:
        """Touch the line containing ``address``; return True on a hit."""
        self._clock += 1
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        if tag in cache_set:
            cache_set[tag] = self._clock
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.config.associativity:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[tag] = self._clock
        return False

    def lines_touched(self, address: int, size: int) -> list[int]:
        """Addresses of the first byte of every cache line the access covers."""
        first = address - (address % self.config.line_bytes)
        last = (address + max(size, 1) - 1) - ((address + max(size, 1) - 1) % self.config.line_bytes)
        return list(range(first, last + 1, self.config.line_bytes))


@dataclass
class HierarchyStats:
    """Aggregated statistics for a full run through the hierarchy."""

    l1: AccessStats = field(default_factory=AccessStats)
    l2: AccessStats = field(default_factory=AccessStats)
    dram_accesses: int = 0
    stall_cycles: int = 0


class MemoryHierarchy:
    """Two-level cache + DRAM latency model matching the evaluation platform."""

    def __init__(self, timing: TimingConfig | None = None) -> None:
        self.timing = timing or TimingConfig()
        self.l1 = CacheLevel(self.timing.l1, "L1")
        self.l2 = CacheLevel(self.timing.l2, "L2")
        self.dram_accesses = 0
        self.stall_cycles = 0

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.dram_accesses = 0
        self.stall_cycles = 0

    def access(self, address: int, size: int, *, is_write: bool = False) -> int:
        """Model an access of ``size`` bytes at ``address``; return its cycles.

        Accesses larger than a cache line (e.g. a 32-byte capability store
        with 64-byte lines stays within one line, but a misaligned multi-line
        access would not) touch every covered line.
        """
        total = 0
        for line_address in self.l1.lines_touched(address, size):
            total += self._access_line(line_address, is_write=is_write)
        self.stall_cycles += total
        return total

    def _access_line(self, address: int, *, is_write: bool) -> int:
        cycles = self.timing.l1.hit_latency
        if self.l1.access(address, is_write=is_write):
            return cycles
        cycles += self.timing.l2.hit_latency
        if self.l2.access(address, is_write=is_write):
            return cycles
        self.dram_accesses += 1
        return cycles + self.timing.dram_latency

    def stats(self) -> HierarchyStats:
        return HierarchyStats(
            l1=self.l1.stats,
            l2=self.l2.stats,
            dram_accesses=self.dram_accesses,
            stall_cycles=self.stall_cycles,
        )

"""Cycle-approximate cache and DRAM timing model.

The paper's performance results (Figures 1-4) are driven by one architectural
mechanism: CHERI capabilities are 256 bits, so pointer-dense data structures
occupy four times the cache footprint of 64-bit pointers, and pointer-chasing
workloads (Olden) pay extra cache misses while compute-bound workloads
(Dhrystone) and streaming workloads (tcpdump, zlib) do not.  The evaluation
platform is described in §5.2: 16 KB L1 data cache, 64 KB L2, with DRAM that
is fast relative to the 100 MHz core.

This module supplies that mechanism to both execution engines:

* the ISA simulator feeds every data access through a :class:`MemoryHierarchy`
  and accumulates stall cycles;
* the abstract-machine interpreter (used for the workload figures) feeds its
  memory-access stream through the same hierarchy, so the MIPS-ABI and
  capability-ABI builds of a workload differ exactly where the paper says they
  do — in the size of the pointers they move through the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import CacheConfig, TimingConfig


@dataclass(slots=True)
class AccessStats:
    """Counters accumulated by a cache level or by the whole hierarchy."""

    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "AccessStats") -> "AccessStats":
        return AccessStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
        )


class CacheLevel:
    """A set-associative cache with true-LRU replacement.

    Only presence/absence is modelled (no data storage): the simulator and the
    interpreter keep the authoritative memory contents, and the cache decides
    how many cycles each access costs.
    """

    __slots__ = ("config", "name", "stats", "_sets", "_clock", "_line_bytes",
                 "_num_sets", "_associativity")

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = AccessStats()
        # Each set maps line tag -> LRU timestamp.  The dict is additionally
        # kept in recency order (hits delete + reinsert), so the LRU victim is
        # always the first key — no O(ways) min() scan on evictions.
        self._sets: list[dict[int, int]] = [dict() for _ in range(config.num_sets)]
        self._clock = 0
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self._associativity = config.associativity

    def reset(self) -> None:
        """Drop all cached lines and statistics.

        Mutates in place (rather than rebinding) so that references captured
        by the predecoded interpreter's inline L1 path stay valid.
        """
        stats = self.stats
        stats.reads = stats.writes = stats.hits = stats.misses = 0
        for cache_set in self._sets:
            cache_set.clear()
        self._clock = 0

    def access(self, address: int, *, is_write: bool) -> bool:
        """Touch the line containing ``address``; return True on a hit.

        NOTE: MemoryHierarchy.access inlines a copy of this body for the
        single-line L1 case — keep the two in sync when changing counters,
        recency handling or eviction.
        """
        self._clock = clock = self._clock + 1
        line = address // self._line_bytes
        num_sets = self._num_sets
        cache_set = self._sets[line % num_sets]
        tag = line // num_sets
        stats = self.stats
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        if tag in cache_set:
            # Refresh recency: delete + reinsert moves the key to the end of
            # the dict's insertion order, so iteration order == LRU order.
            del cache_set[tag]
            cache_set[tag] = clock
            stats.hits += 1
            return True
        stats.misses += 1
        if len(cache_set) >= self._associativity:
            del cache_set[next(iter(cache_set))]
        cache_set[tag] = clock
        return False

    def lines_touched(self, address: int, size: int) -> list[int]:
        """Addresses of the first byte of every cache line the access covers."""
        first = address - (address % self.config.line_bytes)
        last = (address + max(size, 1) - 1) - ((address + max(size, 1) - 1) % self.config.line_bytes)
        return list(range(first, last + 1, self.config.line_bytes))


@dataclass
class HierarchyStats:
    """Aggregated statistics for a full run through the hierarchy."""

    l1: AccessStats = field(default_factory=AccessStats)
    l2: AccessStats = field(default_factory=AccessStats)
    dram_accesses: int = 0
    stall_cycles: int = 0


class MemoryHierarchy:
    """Two-level cache + DRAM latency model matching the evaluation platform."""

    __slots__ = ("timing", "l1", "l2", "dram_accesses", "stall_cycles",
                 "_l1_hit_latency", "_l2_hit_latency", "_dram_latency")

    def __init__(self, timing: TimingConfig | None = None) -> None:
        self.timing = timing or TimingConfig()
        self.l1 = CacheLevel(self.timing.l1, "L1")
        self.l2 = CacheLevel(self.timing.l2, "L2")
        self.dram_accesses = 0
        self.stall_cycles = 0
        self._l1_hit_latency = self.timing.l1.hit_latency
        self._l2_hit_latency = self.timing.l2.hit_latency
        self._dram_latency = self.timing.dram_latency

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.dram_accesses = 0
        self.stall_cycles = 0

    def access(self, address: int, size: int, *, is_write: bool = False) -> int:
        """Model an access of ``size`` bytes at ``address``; return its cycles.

        Accesses larger than a cache line (e.g. a 32-byte capability store
        with 64-byte lines stays within one line, but a misaligned multi-line
        access would not) touch every covered line.

        The single-line case — every scalar access the interpreter issues —
        runs the L1 lookup inline (same counters/LRU updates as
        :meth:`CacheLevel.access`) to avoid three Python calls per access.
        """
        l1 = self.l1
        line_bytes = l1._line_bytes
        line = address // line_bytes
        last_byte = address + size - 1
        if last_byte < address:
            last_byte = address
        if last_byte // line_bytes == line:
            l1._clock = clock = l1._clock + 1
            num_sets = l1._num_sets
            cache_set = l1._sets[line % num_sets]
            tag = line // num_sets
            stats = l1.stats
            if is_write:
                stats.writes += 1
            else:
                stats.reads += 1
            if tag in cache_set:
                del cache_set[tag]
                cache_set[tag] = clock
                stats.hits += 1
                total = self._l1_hit_latency
            else:
                stats.misses += 1
                if len(cache_set) >= l1._associativity:
                    del cache_set[next(iter(cache_set))]
                cache_set[tag] = clock
                total = self._l1_hit_latency + self._l2_hit_latency
                if not self.l2.access(line * line_bytes, is_write=is_write):
                    self.dram_accesses += 1
                    total += self._dram_latency
            self.stall_cycles += total
            return total
        total = 0
        for line_address in l1.lines_touched(address, size):
            total += self._access_line(line_address, is_write=is_write)
        self.stall_cycles += total
        return total

    def access_run(self, address: int, count: int) -> int:
        """Charge ``count`` consecutive 1-byte reads starting at ``address``.

        Observationally identical to calling ``access(a, 1)`` for every byte:
        after the first byte of a line is touched, the remaining bytes of
        that line are guaranteed L1 hits whose only effects are the hit/read
        counters, the clock, and the hit latency — the delete+reinsert
        recency refresh is a no-op for a line that is already most recent.
        This turns the per-byte loops of ``read_cstring``/string intrinsics
        into O(lines) instead of O(bytes) without changing a single counter.
        """
        if count <= 0:
            return 0
        total = 0
        l1 = self.l1
        line_bytes = l1._line_bytes
        stats = l1.stats
        hit_latency = self._l1_hit_latency
        end = address + count
        while address < end:
            line_end = address - (address % line_bytes) + line_bytes
            chunk = (line_end if line_end < end else end) - address
            total += self.access(address, 1, is_write=False)
            extra = chunk - 1
            if extra:
                stats.reads += extra
                stats.hits += extra
                l1._clock += extra
                bulk = extra * hit_latency
                self.stall_cycles += bulk
                total += bulk
            address += chunk
        return total

    def _access_line(self, address: int, *, is_write: bool) -> int:
        cycles = self._l1_hit_latency
        if self.l1.access(address, is_write=is_write):
            return cycles
        cycles += self._l2_hit_latency
        if self.l2.access(address, is_write=is_write):
            return cycles
        self.dram_accesses += 1
        return cycles + self._dram_latency

    def stats(self) -> HierarchyStats:
        return HierarchyStats(
            l1=self.l1.stats,
            l2=self.l2.stats,
            dram_accesses=self.dram_accesses,
            stall_cycles=self.stall_cycles,
        )

"""The CHERI softcore machine simulator.

The simulator executes programs assembled by :class:`repro.isa.assembler.Assembler`
on a functional model of the CHERI-MIPS machine:

* :mod:`repro.sim.memory` — byte-addressable tagged memory (one tag bit per
  256-bit capability-sized line), including the tag-clearing behaviour on
  non-capability stores that the paper relies on for union safety.
* :mod:`repro.sim.cache` — a two-level set-associative cache model with the
  evaluation platform's geometry (16 KB L1, 64 KB L2) used for the
  cycle-approximate timing results.
* :mod:`repro.sim.cpu` — the fetch/decode/execute loop, capability-checked
  memory access paths, trap handling, and the CHERIv2/v3 mode switch.
* :mod:`repro.sim.syscalls` — the minimal OS layer (exit, putchar, sbrk) used
  by assembly test programs.
"""

from repro.sim.memory import TaggedMemory
from repro.sim.cache import CacheLevel, MemoryHierarchy, AccessStats
from repro.sim.cpu import CheriCpu, CpuState
from repro.sim.syscalls import SyscallHandler, SYS_EXIT, SYS_PUTCHAR, SYS_SBRK, SYS_WRITE

__all__ = [
    "TaggedMemory",
    "CacheLevel",
    "MemoryHierarchy",
    "AccessStats",
    "CheriCpu",
    "CpuState",
    "SyscallHandler",
    "SYS_EXIT",
    "SYS_PUTCHAR",
    "SYS_SBRK",
    "SYS_WRITE",
]

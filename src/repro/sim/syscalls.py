"""Minimal operating-system layer for the ISA simulator.

Assembly programs (test programs and the Table 2 benchmark) need a way to
terminate, emit output and obtain heap memory.  Real CHERI runs FreeBSD; this
reproduction provides the four calls those programs actually use, with the
MIPS convention of the syscall number in ``$v0`` and arguments in ``$a0-$a2``:

======  ==========  ====================================================
number  name        behaviour
======  ==========  ====================================================
1       exit        stop execution; ``$a0`` is the exit status
2       putchar     append ``chr($a0)`` to the captured output stream
3       sbrk        grow the heap by ``$a0`` bytes, old break in ``$v0``
4       write       write ``$a1`` bytes from address ``$a0`` to output
======  ==========  ====================================================
"""

from __future__ import annotations

from repro.common.errors import SimulationError

SYS_EXIT = 1
SYS_PUTCHAR = 2
SYS_SBRK = 3
SYS_WRITE = 4


class SyscallHandler:
    """Implements the syscall table against a :class:`repro.sim.cpu.CheriCpu`."""

    def __init__(self, *, heap_base: int, heap_limit: int) -> None:
        self.output = bytearray()
        self.exit_status: int | None = None
        self._heap_break = heap_base
        self._heap_limit = heap_limit

    @property
    def heap_break(self) -> int:
        return self._heap_break

    @property
    def exited(self) -> bool:
        return self.exit_status is not None

    def output_text(self) -> str:
        """The captured output decoded as latin-1 (byte-transparent)."""
        return self.output.decode("latin-1")

    def handle(self, cpu) -> None:
        """Dispatch the syscall currently requested by the CPU registers."""
        number = cpu.gpr.read_named("v0")
        arg0 = cpu.gpr.read_named("a0")
        arg1 = cpu.gpr.read_named("a1")
        if number == SYS_EXIT:
            self.exit_status = arg0
            cpu.halt()
        elif number == SYS_PUTCHAR:
            self.output.append(arg0 & 0xFF)
        elif number == SYS_SBRK:
            old_break = self._heap_break
            new_break = old_break + arg0
            if new_break > self._heap_limit:
                raise SimulationError(
                    f"sbrk({arg0}) exceeds heap limit {self._heap_limit:#x}"
                )
            self._heap_break = new_break
            cpu.gpr.write_named("v0", old_break)
        elif number == SYS_WRITE:
            data = cpu.load_bytes_via_ddc(arg0, arg1)
            self.output.extend(data)
            cpu.gpr.write_named("v0", arg1)
        else:
            raise SimulationError(f"unknown syscall number {number}")

"""The CHERI CPU: fetch/decode/execute loop with capability-checked memory.

The CPU executes assembled :class:`~repro.isa.assembler.Program` objects.  It
models the three memory-access paths described in §4 of the paper:

* **instruction fetch** is relative to the program-counter capability (PCC);
* **legacy MIPS loads and stores** are relative to the default data
  capability (DDC), so unmodified MIPS code runs but is confined to the
  region the DDC grants;
* **capability loads and stores** take an explicit capability register and
  are bounds-, tag- and permission-checked against it.

The CPU also owns the cycle accounting: each executed instruction contributes
its latency-class cost, and every memory access is routed through the
:class:`~repro.sim.cache.MemoryHierarchy` so cache behaviour contributes stall
cycles.  The ``isa_version`` switch selects CHERIv2 or CHERIv3 semantics for
pointer-style capability arithmetic (v2 has no offset; see
``Capability.with_base_increment``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import MachineConfig
from repro.common.errors import MemorySafetyError, SimulationError, TrapError
from repro.isa.assembler import Program
from repro.isa.capability import (
    CAPABILITY_SIZE,
    Capability,
    CapabilityFormat,
    Permission,
    make_default_capability,
)
from repro.isa.registers import CapabilityRegisterFile, RegisterFile
from repro.sim.cache import MemoryHierarchy
from repro.sim.memory import TaggedMemory
from repro.sim.syscalls import SyscallHandler


@dataclass
class CpuState:
    """A summary of an execution, returned by :meth:`CheriCpu.run`."""

    instructions_executed: int = 0
    cycles: int = 0
    exit_status: int | None = None
    output: str = ""
    trap: TrapError | None = None
    memory_safety_violation: MemorySafetyError | None = None
    instruction_mix: dict[str, int] = field(default_factory=dict)

    @property
    def trapped(self) -> bool:
        return self.trap is not None or self.memory_safety_violation is not None


class CheriCpu:
    """Functional CHERI-MIPS CPU with cycle-approximate timing."""

    def __init__(
        self,
        program: Program,
        *,
        config: MachineConfig | None = None,
        isa_version: CapabilityFormat = CapabilityFormat.CHERI_V3,
        trace: bool = False,
    ) -> None:
        self.config = config or MachineConfig()
        self.isa_version = isa_version
        self.program = program
        self.memory = TaggedMemory(self.config.memory_bytes)
        self.hierarchy = MemoryHierarchy(self.config.timing)
        self.gpr = RegisterFile()
        default_cap = make_default_capability(self.config.memory_bytes)
        self.cap = CapabilityRegisterFile(default_cap)
        self.pc = 0
        self._next_pc = 0
        self._halted = False
        self._trace = trace
        self.trace_log: list[str] = []
        self.cycles = 0
        self.instructions_executed = 0
        self.instruction_mix: dict[str, int] = {}
        heap_base = self.config.heap_base
        self.syscalls = SyscallHandler(heap_base=heap_base, heap_limit=self.config.stack_top - self.config.stack_bytes)
        self._load_program()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _load_program(self) -> None:
        if self.program.data:
            self.memory.write_bytes(self.program.data_base, self.program.data)
        # Stack pointer starts at the top of the stack region, 32-byte aligned.
        self.gpr.write_named("sp", self.config.stack_top)
        # PCC spans the whole program; code addresses are instruction indices.
        self.cap.pcc = Capability(
            base=0,
            length=max(len(self.program.instructions), 1),
            offset=0,
            permissions=Permission.EXECUTE | Permission.LOAD | Permission.GLOBAL,
            tag=True,
        )

    # ------------------------------------------------------------------
    # Control flow helpers used by instructions
    # ------------------------------------------------------------------

    def branch_to(self, target: int) -> None:
        """Redirect execution to the given instruction index."""
        if not isinstance(target, int):
            raise SimulationError(f"unresolved branch target {target!r}")
        self._next_pc = target

    def halt(self) -> None:
        self._halted = True

    def capability_jump(self, cap_register: int, *, link: bool, link_register: int = 31) -> None:
        """CJR / CJALR: install a code capability as PCC and jump to its offset."""
        target = self.cap.read(cap_register)
        if not target.tag:
            raise MemorySafetyError("capability jump through untagged capability", capability=target)
        if not (target.permissions & Permission.EXECUTE):
            raise MemorySafetyError("capability jump without EXECUTE permission", capability=target)
        if link:
            return_cap = self.cap.pcc.with_offset(self.pc + 1)
            self.cap.write(link_register, return_cap)
        self.cap.pcc = target
        self._next_pc = target.offset

    def syscall(self) -> None:
        self.syscalls.handle(self)

    # ------------------------------------------------------------------
    # Memory access paths
    # ------------------------------------------------------------------

    def load_via_ddc(self, address: int, size: int, *, signed: bool = False) -> int:
        """Legacy MIPS load: checked against the default data capability."""
        ddc = self.cap.ddc
        effective = ddc.check_access(size=size, permission=Permission.LOAD, address=ddc.base + address)
        self.hierarchy.access(effective, size, is_write=False)
        return self.memory.read_int(effective, size, signed=signed)

    def store_via_ddc(self, address: int, size: int, value: int) -> None:
        """Legacy MIPS store: checked against the default data capability."""
        ddc = self.cap.ddc
        effective = ddc.check_access(size=size, permission=Permission.STORE, address=ddc.base + address)
        self.hierarchy.access(effective, size, is_write=True)
        self.memory.write_int(effective, size, value)

    def load_bytes_via_ddc(self, address: int, length: int) -> bytes:
        ddc = self.cap.ddc
        effective = ddc.check_access(size=max(length, 1), permission=Permission.LOAD, address=ddc.base + address)
        self.hierarchy.access(effective, max(length, 1), is_write=False)
        return self.memory.read_bytes(effective, length)

    def load_via_capability(self, cap_register: int, offset: int, size: int, *, signed: bool = False) -> int:
        """CL[BHWD]: load through an explicit capability register."""
        capability = self.cap.read(cap_register)
        address = capability.address + offset
        effective = capability.check_access(size=size, permission=Permission.LOAD, address=address)
        self.hierarchy.access(effective, size, is_write=False)
        return self.memory.read_int(effective, size, signed=signed)

    def store_via_capability(self, cap_register: int, offset: int, size: int, value: int) -> None:
        """CS[BHWD]: store through an explicit capability register."""
        capability = self.cap.read(cap_register)
        address = capability.address + offset
        effective = capability.check_access(size=size, permission=Permission.STORE, address=address)
        self.hierarchy.access(effective, size, is_write=True)
        self.memory.write_int(effective, size, value)

    def load_capability(self, cap_register: int, offset: int) -> Capability:
        """CLC: load a capability (tag included) through a capability."""
        authority = self.cap.read(cap_register)
        address = authority.address + offset
        effective = authority.check_access(
            size=CAPABILITY_SIZE, permission=Permission.LOAD_CAP, address=address
        )
        self.hierarchy.access(effective, CAPABILITY_SIZE, is_write=False)
        return self.memory.read_capability(effective)

    def store_capability(self, cap_register: int, offset: int, value: Capability) -> None:
        """CSC: store a capability (tag included) through a capability."""
        authority = self.cap.read(cap_register)
        address = authority.address + offset
        effective = authority.check_access(
            size=CAPABILITY_SIZE, permission=Permission.STORE_CAP, address=address
        )
        self.hierarchy.access(effective, CAPABILITY_SIZE, is_write=True)
        self.memory.write_capability(effective, value)

    # ------------------------------------------------------------------
    # Execution loop
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Fetch, execute and retire a single instruction."""
        if self._halted:
            return
        if not (0 <= self.pc < len(self.program.instructions)):
            raise TrapError(
                f"instruction fetch outside program (pc={self.pc})", cause="fetch", pc=self.pc
            )
        pcc = self.cap.pcc
        if not pcc.tag or not (pcc.permissions & Permission.EXECUTE):
            raise MemorySafetyError("instruction fetch without executable PCC", capability=pcc)
        if not (pcc.base <= self.pc < pcc.top):
            raise MemorySafetyError(
                f"instruction fetch at {self.pc} outside PCC bounds", capability=pcc, address=self.pc
            )
        instruction = self.program.instructions[self.pc]
        self._next_pc = self.pc + 1
        if self._trace:
            self.trace_log.append(f"{self.pc:6d}: {instruction}")
        instruction.execute(self)
        self.instructions_executed += 1
        self.cycles += self._instruction_cost(instruction)
        mnemonic = instruction.mnemonic
        self.instruction_mix[mnemonic] = self.instruction_mix.get(mnemonic, 0) + 1
        self.pc = self._next_pc

    def _instruction_cost(self, instruction) -> int:
        timing = self.config.timing
        latency_class = instruction.latency_class
        if latency_class == "branch":
            return timing.branch_cost
        if latency_class == "jump":
            return timing.call_cost
        return timing.base_instruction_cost

    def run(self, *, max_instructions: int = 5_000_000) -> CpuState:
        """Run until exit, trap, or the instruction budget is exhausted."""
        trap: TrapError | None = None
        violation: MemorySafetyError | None = None
        try:
            while not self._halted and self.instructions_executed < max_instructions:
                self.step()
        except TrapError as exc:
            trap = exc
        except MemorySafetyError as exc:
            violation = exc
        if not self._halted and trap is None and violation is None:
            raise SimulationError(
                f"program did not terminate within {max_instructions} instructions"
            )
        return CpuState(
            instructions_executed=self.instructions_executed,
            cycles=self.cycles + self.hierarchy.stall_cycles,
            exit_status=self.syscalls.exit_status,
            output=self.syscalls.output_text(),
            trap=trap,
            memory_safety_violation=violation,
            instruction_mix=dict(self.instruction_mix),
        )

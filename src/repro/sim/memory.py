"""Tagged physical memory.

CHERI's memory safety for in-memory capabilities rests on *tagged memory*:
every naturally aligned 256-bit (32-byte) line of memory carries a single
hidden tag bit recording whether the line currently holds a valid capability.

The two behaviours the paper depends on are both implemented here:

* capability stores set the tag; capability loads return the tag with the
  value, so capabilities can be spilled to the stack or embedded in data
  structures just like pointers;
* **any ordinary data store that overlaps a tagged line clears its tag**
  (§4: "Conventional stores to an in-memory capability cause the tag bit to
  be cleared, invalidating the capability").  This is what makes ``memcpy``
  and unions safe: data written over a capability can never be dereferenced
  as one.
"""

from __future__ import annotations

from repro.common.bitops import is_aligned
from repro.common.errors import AlignmentViolation, SimulationError
from repro.isa.capability import CAPABILITY_ALIGNMENT, CAPABILITY_SIZE, Capability


class TaggedMemory:
    """A flat byte-addressable memory with per-line capability tags.

    The backing store is sparse (a dict of pages) so a 64 MB address space
    costs only what the program touches.  Capabilities stored to memory keep
    their full Python representation in a side table keyed by address; the tag
    bit decides whether that representation is still valid when loaded back.
    This mirrors how the hardware stores the 256-bit pattern in DRAM and the
    tag in a separate tag controller.
    """

    PAGE_SIZE = 4096
    #: shift/mask forms of PAGE_SIZE used by the scalar fast paths below.
    _PAGE_SHIFT = PAGE_SIZE.bit_length() - 1
    _PAGE_MASK = PAGE_SIZE - 1
    assert PAGE_SIZE == 1 << _PAGE_SHIFT, "PAGE_SIZE must be a power of two"

    __slots__ = ("_size", "_pages", "_tags", "_cap_values")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise SimulationError("memory size must be positive")
        self._size = size
        self._pages: dict[int, bytearray] = {}
        self._tags: set[int] = set()
        self._cap_values: dict[int, Capability] = {}

    # ------------------------------------------------------------------
    # Bounds / page helpers
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or address + length > self._size:
            raise SimulationError(
                f"physical access [{address:#x}, {address + length:#x}) outside memory "
                f"of {self._size:#x} bytes"
            )

    def _page(self, page_index: int) -> bytearray:
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(self.PAGE_SIZE)
            self._pages[page_index] = page
        return page

    # ------------------------------------------------------------------
    # Raw byte access
    # ------------------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        """Read ``length`` raw bytes starting at ``address``."""
        if address < 0 or address + length > self._size:
            self._check_range(address, length)
        page_index, offset = divmod(address, self.PAGE_SIZE)
        if offset + length <= self.PAGE_SIZE:
            # Fast path: the whole read lives in one page.
            page = self._pages.get(page_index)
            if page is None:
                return bytes(length)
            return bytes(page[offset : offset + length])
        out = bytearray()
        remaining = length
        cursor = address
        while remaining:
            page_index, offset = divmod(cursor, self.PAGE_SIZE)
            chunk = min(remaining, self.PAGE_SIZE - offset)
            page = self._pages.get(page_index)
            if page is None:
                out.extend(b"\x00" * chunk)
            else:
                out.extend(page[offset : offset + chunk])
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write raw bytes, clearing capability tags on every line touched."""
        length = len(data)
        if address < 0 or address + length > self._size:
            self._check_range(address, length)
        if self._tags:
            self._clear_tags_in_range(address, length)
        page_index, offset = divmod(address, self.PAGE_SIZE)
        if offset + length <= self.PAGE_SIZE:
            # Fast path: the whole write lives in one page.
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(self.PAGE_SIZE)
                self._pages[page_index] = page
            page[offset : offset + length] = data
            return
        cursor = address
        view = memoryview(data)
        while view:
            page_index, offset = divmod(cursor, self.PAGE_SIZE)
            chunk = min(len(view), self.PAGE_SIZE - offset)
            self._page(page_index)[offset : offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    # ------------------------------------------------------------------
    # Integer access
    # ------------------------------------------------------------------

    def read_int(self, address: int, size: int, *, signed: bool = False) -> int:
        """Read a little-endian integer of ``size`` bytes."""
        raw = self.read_bytes(address, size)
        return int.from_bytes(raw, "little", signed=signed)

    def write_int(self, address: int, size: int, value: int) -> None:
        """Write a little-endian integer of ``size`` bytes (tags cleared)."""
        self.write_bytes(address, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    # ------------------------------------------------------------------
    # Scalar fast paths (interpreter hot loop)
    # ------------------------------------------------------------------
    #
    # These bypass the intermediate ``bytes`` objects of read_bytes/write_bytes
    # for the ≤8-byte aligned-page accesses the interpreter issues on every
    # load/store.  They are observationally identical to the generic paths.

    def read_u64(self, address: int) -> int:
        """Read an unsigned little-endian 64-bit integer."""
        if address < 0 or address + 8 > self._size:
            self._check_range(address, 8)
        offset = address & self._PAGE_MASK
        if offset + 8 <= self.PAGE_SIZE:
            page = self._pages.get(address >> self._PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(page[offset : offset + 8], "little")
        return int.from_bytes(self.read_bytes(address, 8), "little")

    def read_small(self, address: int, size: int, signed: bool) -> int:
        """Read a little-endian integer of ``size`` (≤ page) bytes."""
        if address < 0 or address + size > self._size:
            self._check_range(address, size)
        offset = address & self._PAGE_MASK
        if offset + size <= self.PAGE_SIZE:
            page = self._pages.get(address >> self._PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(page[offset : offset + size], "little", signed=signed)
        return int.from_bytes(self.read_bytes(address, size), "little", signed=signed)

    def write_small(self, address: int, size: int, value: int) -> None:
        """Write a little-endian integer of ``size`` (≤ page) bytes."""
        if address < 0 or address + size > self._size:
            self._check_range(address, size)
        if self._tags:
            self._clear_tags_in_range(address, size)
        offset = address & self._PAGE_MASK
        if offset + size <= self.PAGE_SIZE:
            page_index = address >> self._PAGE_SHIFT
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(self.PAGE_SIZE)
                self._pages[page_index] = page
            page[offset : offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
            return
        self.write_bytes(address, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def write_ptr_raw(self, address: int, raw: int, width: int) -> None:
        """Write a stored pointer: 8 bytes of address, zero-padded to ``width``.

        This is the in-memory representation the interpreter uses for every
        pointer store (the shadow table carries the metadata); ``width`` is the
        model's pointer size, e.g. 32 for a 256-bit capability.
        """
        span = width if width > 8 else 8
        if address < 0 or address + span > self._size:
            self._check_range(address, span)
        if self._tags:
            self._clear_tags_in_range(address, span)
        offset = address & self._PAGE_MASK
        if offset + span <= self.PAGE_SIZE:
            page_index = address >> self._PAGE_SHIFT
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(self.PAGE_SIZE)
                self._pages[page_index] = page
            page[offset : offset + 8] = (raw & ((1 << 64) - 1)).to_bytes(8, "little")
            if span > 8:
                page[offset + 8 : offset + span] = bytes(span - 8)
            return
        self.write_bytes(address, (raw & ((1 << 64) - 1)).to_bytes(8, "little") + bytes(span - 8))

    # ------------------------------------------------------------------
    # Capability access
    # ------------------------------------------------------------------

    def write_capability(self, address: int, capability: Capability) -> None:
        """Store a capability (32 bytes, naturally aligned) with its tag."""
        if not is_aligned(address, CAPABILITY_ALIGNMENT):
            raise AlignmentViolation(
                f"capability store to unaligned address {address:#x}", address=address
            )
        self._check_range(address, CAPABILITY_SIZE)
        # The architectural bit pattern is also written so that data reads of
        # the same location observe the capability's fields, as they would on
        # hardware (e.g. memcpy of a struct containing pointers).
        pattern = self._encode_pattern(capability)
        self.write_bytes(address, pattern)
        self._cap_values[address] = capability
        if capability.tag:
            self._tags.add(address)
        else:
            self._tags.discard(address)

    def read_capability(self, address: int) -> Capability:
        """Load a capability; the tag reflects any intervening data stores."""
        if not is_aligned(address, CAPABILITY_ALIGNMENT):
            raise AlignmentViolation(
                f"capability load from unaligned address {address:#x}", address=address
            )
        self._check_range(address, CAPABILITY_SIZE)
        stored = self._cap_values.get(address)
        if stored is not None:
            if address in self._tags:
                return stored
            return stored.without_tag()
        # No capability was ever stored here: reconstruct an untagged
        # capability from the raw bit pattern (integer data read as intcap_t).
        return self._decode_pattern(self.read_bytes(address, CAPABILITY_SIZE))

    def tag_at(self, address: int) -> bool:
        """Return the tag bit covering ``address`` (line-aligned lookup)."""
        line = address - (address % CAPABILITY_ALIGNMENT)
        return line in self._tags

    def tagged_lines(self) -> list[int]:
        """Addresses of every line currently holding a valid capability.

        Used by the garbage collector to find capability roots/fields
        precisely (paper §4.2).
        """
        return sorted(self._tags)

    # ------------------------------------------------------------------

    def _clear_tags_in_range(self, address: int, length: int) -> None:
        first_line = address - (address % CAPABILITY_ALIGNMENT)
        last_line = (address + length - 1) - ((address + length - 1) % CAPABILITY_ALIGNMENT)
        for line in range(first_line, last_line + 1, CAPABILITY_ALIGNMENT):
            self._tags.discard(line)

    @staticmethod
    def _encode_pattern(capability: Capability) -> bytes:
        mask64 = (1 << 64) - 1
        fields = (
            capability.base & mask64,
            capability.length & mask64,
            capability.offset & mask64,
            (int(capability.permissions) & 0xFFFFFFFF) | ((capability.otype & 0xFFFFFFFF) << 32),
        )
        return b"".join(field.to_bytes(8, "little") for field in fields)

    @staticmethod
    def _decode_pattern(raw: bytes) -> Capability:
        base = int.from_bytes(raw[0:8], "little")
        length = int.from_bytes(raw[8:16], "little")
        offset = int.from_bytes(raw[16:24], "little")
        meta = int.from_bytes(raw[24:32], "little")
        from repro.isa.capability import Permission

        permissions = Permission(meta & int(Permission.all()))
        otype_raw = (meta >> 32) & 0xFFFFFFFF
        otype = otype_raw - (1 << 32) if otype_raw >= (1 << 31) else otype_raw
        return Capability(
            base=base, length=length, offset=offset, permissions=permissions, tag=False, otype=otype
        )

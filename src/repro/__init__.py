"""Reproduction of "Beyond the PDP-11: Architectural Support for a Memory-Safe
C Abstract Machine" (Chisnall et al., ASPLOS 2015).

The package is organised as the paper's system is:

* :mod:`repro.minic` — a C front end producing a typed IR;
* :mod:`repro.interp` — the abstract-machine interpreter with pluggable
  memory models (PDP-11, HardBound, MPX, Relaxed, Strict, CHERIv2, CHERIv3);
* :mod:`repro.isa` / :mod:`repro.sim` — the CHERI-MIPS capability ISA and its
  functional simulator with tagged memory and a cache timing model;
* :mod:`repro.analysis` — the pointer-idiom survey tooling (Table 1);
* :mod:`repro.core` — the public API, idiom test cases, compatibility matrix
  (Table 3) and porting analysis (Table 4);
* :mod:`repro.workloads` — Olden, Dhrystone, tcpdump-style and zlib-style
  workloads (Figures 1-4);
* :mod:`repro.gc` — the tag-precise relocating garbage collector (§4.2).

Quick start::

    from repro.core import MemorySafeMachine

    machine = MemorySafeMachine(model="cheri_v3")
    result = machine.run('int main(void) { return 0; }')
    assert result.ok
"""

__version__ = "1.0.0"

from repro.core.api import MemorySafeMachine, run_under_model

__all__ = ["MemorySafeMachine", "run_under_model", "__version__"]

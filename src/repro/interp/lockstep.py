"""Lockstep batched execution: N machine lanes through one instruction stream.

The differential sweep replays every generated program under seven memory
models.  Serially that pays dispatch setup — predecode binding, block
install, frame management — seven times per program even though the models
of one pointer layout share a single predecode artifact.  This engine steps
several *lanes* (one :class:`~repro.interp.machine.AbstractMachine` each)
through the same superinstruction stream together, so the per-pc binding
work (``lazy_binding=True`` machines build a pc's handler on first
execution) and the shared-plan block installs are paid roughly once per
*reached pc* instead of once per pc per lane.

**Lane layout.**  A lane owns its machine whole: memory, shadow table,
allocator, RNG, output buffer, counters.  Lanes share only immutable state —
the IR module, the predecode artifact, block code objects and the memoized
``make`` factories (:func:`repro.interp.hotgen.block_maker`).  Because no
mutable state crosses lanes, *any* interleaving of lane segments is
observationally identical to running the lanes to completion one after the
other; the scheduler below exploits that freely and
``tests/test_lockstep.py`` pins it (batched == sequential, bit for bit, for
every model, trap and budget edge).

**Divergence mask and rejoin rule.**  The scheduler is round-based: each
round selects ``group_pc = min(lane.pc)`` over the active (not yet finished)
lanes and runs exactly the lanes sitting at ``group_pc`` for one *segment* —
dispatch until the lane reaches the next sync pc or finishes.  Sync pcs are
the artifact's label pcs (every possible branch target; superinstructions
never span one, so pausing there can never split a block dispatch).  A lane
whose pc differs from ``group_pc`` is *diverged* (masked off) for the round;
when the stepped lanes catch up to its pc — PCs reconverge at a block
boundary — it is stepped again, i.e. it **rejoins**.  Min-pc scheduling
plus the guarantee that a segment executes at least one instruction means
every round makes progress, and per-lane budgets bound termination.

**Retirement and the fallback contract.**  A lane leaves the batch in
exactly one of three dispositions (total and mutually exclusive — the
divergence-mask totality property test pins this):

* ``retired``  — the lane trapped (memory-safety/UB/interpreter trap or
  budget exhaustion).  Its activation is torn down exactly like the serial
  engine's and its packaged result carries the identical trap.
* ``rejoined`` — the lane diverged at least once and later completed.
* ``completed`` — the lane ran to completion without ever diverging.

Within a segment the dispatch loop is a literal mirror of
``AbstractMachine._execute`` — including the block-engine demotion path: a
superinstruction that raises an internal error is demoted to the retained
single-step handlers (``code.block_fallbacks``) *for that lane only*, the
charge is undone, and the lane re-executes the pc single-step while sibling
lanes keep their block handlers.  Nested calls inside a segment run
serially within the lane through the ordinary ``machine._call`` path.

Telemetry: lane/round/divergence counters and the lane-occupancy histogram
are registered through :mod:`repro.telemetry.metrics` (names under
``lockstep.``); per-lane wall seconds are accumulated only when the caller
asks (``collect_seconds``) so the runner can keep its per-model
``stage.execute.<model>`` series.
"""

from __future__ import annotations

import time

from repro.common.errors import (
    InterpreterError,
    MemorySafetyError,
    ReproError,
    UndefinedBehaviorError,
)
from repro.interp.artifact import get_artifact
from repro.interp.intrinsics import ExitProgram
from repro.interp.machine import ExecutionResult, scrub_trap
from repro.interp.predecode import HOT_CALL_THRESHOLD
from repro.interp.values import IntVal, PtrVal
from repro.telemetry import metrics
from repro.telemetry.metrics import LANE_BUCKETS

#: lane dispositions (see module docstring).
RETIRED = "retired"
REJOINED = "rejoined"
COMPLETED = "completed"

#: budget-trap message prefix, used only to split the retirement counters.
_BUDGET_PREFIX = "instruction budget of"


class LaneOutcome:
    """One lane's packaged run: the serial-identical result plus batch facts."""

    __slots__ = ("model_name", "result", "disposition", "seconds")

    def __init__(self, model_name: str, result: ExecutionResult,
                 disposition: str, seconds: float) -> None:
        self.model_name = model_name
        #: bit-identical to what ``machine.run()`` would have produced.
        self.result = result
        self.disposition = disposition
        #: wall seconds spent executing this lane's segments (0.0 unless the
        #: engine ran with ``collect_seconds=True``).
        self.seconds = seconds


class _Lane:
    __slots__ = ("machine", "code", "frame", "pc", "fname",
                 "waiting", "ever_diverged", "done", "trap", "exit_code",
                 "seconds")

    def __init__(self, machine) -> None:
        self.machine = machine
        self.code = None
        self.frame = None
        self.pc = 0
        self.fname = ""
        #: currently masked off (pc behind/ahead of the round's group pc).
        self.waiting = False
        self.ever_diverged = False
        self.done = False
        self.trap = None
        self.exit_code: int | None = None
        self.seconds = 0.0


def run_lockstep(machines, *, entry: str = "main", args: list | None = None,
                 collect_seconds: bool = False) -> list[LaneOutcome]:
    """Run one program under several machines in lockstep.

    ``machines`` must share a module/pointer layout (they already do in the
    runner: lanes are the models of one layout group).  Returns one
    :class:`LaneOutcome` per machine, in input order; each ``.result`` is
    bit-identical to what ``machine.run(entry, args)`` would have produced.
    """
    lanes = [_Lane(machine) for machine in machines]
    registry = metrics.registry()
    registry.counter("lockstep.groups").inc()
    registry.counter("lockstep.lanes").inc(len(lanes))
    c_rounds = registry.counter("lockstep.rounds")
    c_diverge = registry.counter("lockstep.divergences")
    c_rejoin = registry.counter("lockstep.rejoins")
    c_occupied = registry.counter("lockstep.occupied_lane_rounds")
    occupancy = registry.histogram("lockstep.occupancy", LANE_BUCKETS)
    clock = time.perf_counter if collect_seconds else None

    # Per-lane prologue, in lane order: __global_init plus opening the entry
    # activation.  Serial by design — globals setup is call-heavy and short.
    call_args = list(args or [])
    for lane in lanes:
        start = clock() if clock is not None else 0.0
        _start(lane, entry, call_args)
        if clock is not None:
            lane.seconds += clock() - start

    active = [lane for lane in lanes if not lane.done]
    if active:
        # All lanes share one artifact (same function object, same layout),
        # so the sync set is computed once for the group.
        is_sync = _sync_flags(active[0])
        while active:
            group_pc = min(lane.pc for lane in active)
            c_rounds.inc()
            stepped = 0
            for lane in active:
                if lane.pc != group_pc:
                    if not lane.waiting:
                        lane.waiting = True
                        lane.ever_diverged = True
                        c_diverge.inc()
                    continue
                if lane.waiting:
                    lane.waiting = False
                    c_rejoin.inc()
                stepped += 1
                start = clock() if clock is not None else 0.0
                _segment(lane, is_sync)
                if clock is not None:
                    lane.seconds += clock() - start
            occupancy.observe(stepped)
            c_occupied.inc(stepped)
            active = [lane for lane in active if not lane.done]

    outcomes = []
    for lane in lanes:
        disposition = (RETIRED if lane.trap is not None
                       else REJOINED if lane.ever_diverged else COMPLETED)
        if disposition is RETIRED:
            is_budget = (isinstance(lane.trap, InterpreterError)
                         and str(lane.trap).startswith(_BUDGET_PREFIX))
            registry.counter("lockstep.retired.budget" if is_budget
                             else "lockstep.retired.trap").inc()
        else:
            registry.counter(f"lockstep.lane.{disposition}").inc()
        outcomes.append(LaneOutcome(lane.machine.model.name, _package(lane),
                                    disposition, lane.seconds))
    return outcomes


def _sync_flags(lane: _Lane) -> list[bool]:
    """Per-pc "is a rejoin boundary" flags for the group's entry function."""
    code = lane.code
    flags = [False] * code.size
    artifact = get_artifact(code.function, lane.machine.ctx)
    for pc in artifact.sync_pcs:
        flags[pc] = True
    return flags


def _start(lane: _Lane, entry: str, args: list) -> None:
    """Run the lane's prologue and open its entry activation.

    Mirrors ``AbstractMachine.run`` up to (and including) the preamble of
    ``_call``/``_execute`` for the entry function; on a prologue trap or
    exit the lane finishes before ever joining the batch.
    """
    machine = lane.machine
    module = machine.module
    try:
        init = module.functions.get("__global_init")
        if init is not None:
            machine._call(init, [])
        function = module.functions.get(entry)
        if function is None:
            raise InterpreterError(f"program has no function {entry!r}")
        if machine._call_depth > 400:
            raise InterpreterError(f"call depth limit exceeded calling {function.name}")
    except ExitProgram as exc:
        lane.exit_code = exc.code
        lane.done = True
        return
    except (MemorySafetyError, UndefinedBehaviorError, InterpreterError) as exc:
        lane.trap = exc
        lane.done = True
        return
    machine._call_depth += 1
    machine.allocator.push_frame()
    try:
        code = machine._code_for(function)
        if code.pending_blocks is not None:
            code.calls += 1
            if code.calls >= HOT_CALL_THRESHOLD:
                install = code.pending_blocks
                code.pending_blocks = None
                install()
        if machine._engine_fault is not None:
            machine._arm_engine_fault(code)
        pool = code.pool
        if pool:
            frame = pool.pop()
        else:
            frame = code.frame_proto.copy()
            if code.nallocas:
                frame[1] = [None] * code.nallocas
        frame[0] = args
    except BaseException as exc:
        _close(lane, exc)
        return
    lane.code = code
    lane.frame = frame
    lane.fname = function.name
    lane.pc = 0


def _segment(lane: _Lane, is_sync: list[bool]) -> None:
    """Dispatch one lane until the next sync pc, completion, or a trap.

    The loop is a literal mirror of ``AbstractMachine._execute`` (charge
    order, budget check, block-engine demotion) with two additions: after
    each handler returns, the lane pauses if the new pc is a sync boundary,
    and completion/trap tear the activation down the way ``_execute``'s
    epilogue / ``_call``'s ``finally`` / ``run``'s packaging would.
    """
    machine = lane.machine
    code = lane.code
    frame = lane.frame
    paired = code.paired
    size = code.size
    max_instructions = machine.max_instructions
    fname = lane.fname
    pc = lane.pc
    try:
        while pc < size:
            try:
                while True:
                    machine.instructions = count = machine.instructions + 1
                    if count > max_instructions:
                        raise InterpreterError(
                            f"instruction budget of {machine.max_instructions} "
                            f"exhausted in {fname}")
                    handler, cost = paired[pc]
                    machine.cycles += cost
                    pc = handler(frame)
                    if pc >= size:
                        break
                    if is_sync[pc]:
                        lane.pc = pc
                        return
            except (ReproError, ExitProgram):
                raise
            except Exception as exc:
                # Block-engine fallback, per lane: demote the raising block
                # to its retained single-step path and retry; siblings keep
                # their block handlers (their code objects are their own).
                fallback = (code.block_fallbacks.pop(pc, None)
                            if machine.instructions == count else None)
                if fallback is None:
                    raise
                machine.instructions -= 1
                machine.cycles -= cost
                exc.__traceback__ = None
                paired[pc] = fallback
                machine.engine_faults.append((fname, pc, type(exc).__name__))
    except BaseException as exc:
        _close(lane, exc)
        return
    # Normal completion: the _execute epilogue (reset-on-release frame
    # pooling), then _call's finally, then run()'s result conversion.
    result = frame[2]
    allocas = frame[1]
    frame[:] = code.frame_proto
    if allocas is not None:
        allocas[:] = code.alloca_proto
        frame[1] = allocas
    code.pool.append(frame)
    machine.allocator.pop_frame()
    machine._call_depth -= 1
    lane.done = True
    if isinstance(result, IntVal):
        lane.exit_code = result.value
    elif isinstance(result, PtrVal):
        lane.exit_code = result.address
    else:
        lane.exit_code = 0


def _close(lane: _Lane, exc: BaseException) -> None:
    """Tear down the lane's open entry activation on an exception.

    A trap drops the frame (the pool regrows lazily, exactly like
    ``_execute``), unwinds ``_call``'s ``finally``, and classifies the
    exception the way ``run`` does.  Anything that is neither a trap nor
    ``ExitProgram`` propagates — the serial engine would abort the whole
    program run the same way, so the difftest worker sees the identical
    internal error at program granularity.
    """
    machine = lane.machine
    machine.allocator.pop_frame()
    machine._call_depth -= 1
    if isinstance(exc, ExitProgram):
        lane.exit_code = exc.code
        lane.done = True
        return
    if isinstance(exc, (MemorySafetyError, UndefinedBehaviorError, InterpreterError)):
        lane.trap = exc
        lane.done = True
        return
    raise exc


def _package(lane: _Lane) -> ExecutionResult:
    """Package a finished lane exactly like ``AbstractMachine.run`` does."""
    machine = lane.machine
    trap = lane.trap
    if trap is not None:
        # Retired-lane fallback path of the PR 5 leak fix: scrub the whole
        # context/cause chain, not just the surfaced frame (see
        # machine.scrub_trap).
        scrub_trap(trap)
    return ExecutionResult(
        exit_code=lane.exit_code,
        output=bytes(machine.output),
        trap=trap,
        instructions=machine.instructions,
        cycles=machine.cycles,
        memory_accesses=machine.memory_accesses,
        allocations=machine.allocator.allocation_count,
        allocated_bytes=machine.allocator.bytes_allocated,
        checkpoints=list(machine.checkpoints),
        model_name=machine.model.name,
        engine_fallbacks=len(machine.engine_faults),
    )

"""Model-independent predecode artifacts with a process-level cache.

:func:`repro.interp.predecode.compile_function` used to recompute everything
from scratch once **per machine** — so the differential runner's 7-model
replay predecoded the same IR functions seven times per program.  This module
factors out the half of that work that is derivable from the IR and the
pointer layout alone, independent of which memory model will execute it:

* the instruction-stream facts (label index, register-file and alloca-slot
  sizes, temp use counts);
* the **slot-type fixpoint** (:func:`analyze_slots`) that decides which
  register slots carry raw Python ints;
* the **pair-fusion** prepass (parameterized by the model's inline-move
  policy flags, memoized per flag combination);
* **generic basic-block superinstructions**: block segmentation plus
  generated source and compiled code objects in which raw-register work is
  spliced as straight-line Python and every model-specialized entry (memory
  ops, calls, pointer moves) is a closure-call slot bound later.

A :class:`PredecodeArtifact` is cached process-wide in :data:`ARTIFACTS`,
keyed by ``(function identity, pointer layout)`` (an LRU bounded at
:data:`CACHE_LIMIT` entries; see ``docs/pipeline.md`` for the invalidation
rules).  The per-machine *binding* step in :mod:`repro.interp.predecode`
closes the artifact over one concrete machine's model, memory and cache
state: per-instruction handlers are built against the shared analysis
results, and machines that opt into shared blocks
(``AbstractMachine(shared_blocks=True)``) instantiate the artifact's cached
block code objects with per-machine bindings instead of regenerating and
re-``compile()``-ing block source per machine.

Sharing is observationally safe by construction: the analysis inputs that
vary per model (``fast_noprov``, the inline-move flags) are part of the memo
keys, and generic blocks only change *charge batching granularity* — every
trap-capable entry still flushes all deferred charges before it executes, so
counters at any trap point equal single-step dispatch exactly
(``tests/test_predecode_cache.py`` pins this across all seven models).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.interp import diskcache
from repro.interp.hotgen import block_code, block_source
from repro.interp.values import (
    INTERN_MAX,
    INTERN_MIN,
    MASKS,
    MODULI,
    SIGN_MIN,
    FALSE_I32,
    TRUE_I32,
    IntVal,
    intern_table,
)
from repro.minic.ir import Const, Function, Opcode, Temp
from repro.minic.typesys import IntType, PointerType

#: indices of the bookkeeping slots at the head of every frame; register slot
#: of temp ``%i`` is ``i + FRAME_RESERVED`` (shared with predecode).
FRAME_RESERVED = 3

#: maximum paired entries folded into one block handler (shared with the
#: specialized block compiler in predecode).
BLOCK_LIMIT = 40

#: canonical integer binary operators (semantics shared by the closure
#: handlers in predecode and both block compilers; shifts mask their count
#: like C on a 64-bit machine would).
INT_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << (b & 63),
    ">>": lambda a, b: a >> (b & 63),
}

#: textual expression templates mirroring INT_BINOPS exactly.
BINOP_EXPR = {
    "+": "({a} + {b})",
    "-": "({a} - {b})",
    "*": "({a} * {b})",
    "&": "({a} & {b})",
    "|": "({a} | {b})",
    "^": "({a} ^ {b})",
    "<<": "({a} << ({b} & 63))",
    ">>": "({a} >> ({b} & 63))",
}

#: canonical comparison operators (same contract as INT_BINOPS).
CMP_FUNCS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


# ---------------------------------------------------------------------------
# Layout-level operand analysis (shared with predecode's binding step)
# ---------------------------------------------------------------------------


def scalar_int_type(ctype, ctx) -> tuple[int, bool] | None:
    """(width, signed) when ``ctype`` is a plain scalar integer type."""
    if isinstance(ctype, IntType) and not ctype.is_pointer_sized:
        width = ctype.size(ctx)
        if 1 <= width <= 8:
            return (width, getattr(ctype, "signed", True))
    return None


def analyze_slots(function: Function, ctx, fast_noprov: bool) -> dict[int, tuple[int, bool]]:
    """Map temp index -> (width, signed) for slots that can go unboxed.

    A slot qualifies when **every** instruction writing it produces a
    provenance-free scalar integer of the same static type.  The analysis is
    optimistic (loops like ``i = i + 1`` stay unboxed) and demotes to "boxed"
    on any conflict; it converges because demotion is monotone.

    ``fast_noprov`` is False when the model overrides the provenance hook —
    arithmetic must then see every boxed operand, so its results cannot be
    proven provenance-free at compile time.

    When the static checker has annotated the function
    (``function.static_facts``, see repro.staticcheck.facts), CALL
    destinations also qualify: ``noprov_callees`` lists the callees whose
    result is proven to be a provenance-free ``IntVal`` of exactly the
    recorded ``(bytes, signed)`` shape, so storing ``.value`` raw and
    re-boxing with the slot type on read is an identity.
    """
    facts = getattr(function, "static_facts", None)
    callee_scalars: dict[str, tuple[int, bool]] = {}
    if facts is not None:
        callee_scalars = {name: (width, signed)
                          for name, width, signed in facts.noprov_callees}

    def const_type(operand: Const) -> tuple[int, bool] | None:
        ctype = operand.ctype
        if isinstance(ctype, PointerType):
            return None
        if isinstance(ctype, IntType):
            if ctype.is_pointer_sized:
                return None
            return (min(ctype.size(ctx), 8), getattr(ctype, "signed", True))
        return (8, True)

    def raw_safe(operand, prev) -> bool:
        kind = type(operand)
        if kind is Temp:
            # Missing from ``prev`` means "not yet demoted" (optimistic) or
            # "never written" (reading it raises either way).
            return prev.get(operand.index, True) is not None
        if kind is Const:
            return const_type(operand) is not None
        return False

    def writer_type(instr, prev) -> tuple[int, bool] | None:
        op = instr.op
        if op is Opcode.LOAD:
            return scalar_int_type(instr.ctype, ctx)
        if op is Opcode.CMP:
            return (4, True)
        if op is Opcode.PTRDIFF:
            return (8, True)
        if op is Opcode.BINOP:
            target = scalar_int_type(instr.ctype, ctx)
            if (target is None or not fast_noprov
                    or not all(raw_safe(a, prev) for a in instr.args)):
                return None
            return target
        if op is Opcode.UNOP:
            source = instr.args[0]
            if type(source) is Temp:
                t = prev.get(source.index)
                return t if isinstance(t, tuple) else None
            if type(source) is Const:
                return const_type(source)
            return None
        if op is Opcode.INTCAST:
            target = instr.ctype
            if not isinstance(target, IntType) or target.is_pointer_sized:
                return None
            if not raw_safe(instr.args[0], prev):
                return None
            return (min(target.size(ctx), 8), getattr(target, "signed", True))
        if op is Opcode.BITCAST:
            source = instr.args[0]
            if type(source) is Temp:
                t = prev.get(source.index)
                return t if isinstance(t, tuple) else None
            if type(source) is Const:
                return const_type(source)
            return None
        if op is Opcode.CALL:
            if not fast_noprov:
                return None
            return callee_scalars.get(instr.attrs.get("callee"))
        return None

    instrs = [instr for instr in function.instrs if instr.dest is not None]
    prev: dict[int, tuple[int, bool] | None] = {}
    for _ in range(len(instrs) + 1):
        cur: dict[int, tuple[int, bool] | None] = {}
        for instr in instrs:
            t = writer_type(instr, prev)
            index = instr.dest.index
            if index in cur and cur[index] != t:
                cur[index] = None
            else:
                cur[index] = t
        if cur == prev:
            break
        prev = cur
    return {index: t for index, t in prev.items() if t is not None}


def raw_operand(operand, ctx, slot_types):
    """Compile-time description of an operand usable as a raw int.

    Returns ``("slot", frame_index, (W, S), label)`` for an unboxed register,
    ``("const", raw_value, (W, S), None)`` for an integer constant, or None
    when the operand must be read boxed.
    """
    kind = type(operand)
    if kind is Temp:
        t = slot_types.get(operand.index)
        if t is None:
            return None
        return ("slot", operand.index + FRAME_RESERVED, t, str(operand))
    if kind is Const:
        ctype = operand.ctype
        if isinstance(ctype, PointerType):
            return None
        size = ctype.size(ctx) if isinstance(ctype, IntType) else 8
        if isinstance(ctype, IntType) and ctype.is_pointer_sized:
            return None
        signed = getattr(ctype, "signed", True)
        hoisted = IntVal(operand.value, bytes=min(size, 8), signed=signed)
        return ("const", hoisted.value, (hoisted.bytes, hoisted.signed), None)
    return None


def _move_delta(instr, ctx, slot_types, inline_moves: bool, inline_field: bool):
    """Delta descriptor when ``instr`` is an inlineable pointer move."""
    op = instr.op
    if op is Opcode.FIELD:
        if not inline_field:
            return None
        return (1, instr.attrs["offset"], 0, None)
    if op is Opcode.GEP or op is Opcode.PTRADD:
        if not inline_moves:
            return None
        element_size = instr.attrs["element_size"] if op is Opcode.GEP else 1
        raw = raw_operand(instr.args[1], ctx, slot_types)
        if raw is None:
            return None
        if raw[0] == "const":
            return (1, raw[1] * element_size, 0, None)
        return (2, raw[1], element_size, raw[3])
    return None


def compute_fusion(function: Function, ctx, slot_types, use_counts,
                   inline_moves: bool, inline_field: bool) -> dict[int, tuple]:
    """Producer index -> ("mem", delta) or ("cmp",) pair-fusion decisions.

    The consumer at ``index + 1`` keeps its (unreachable) stand-alone handler
    so pc layout is unchanged.  Both block flavours use the same fusion map
    for a given model — fused pairs charge both halves' costs up front, so
    the decisions are part of the observable charging protocol.
    """
    instrs = function.instrs
    fused: dict[int, tuple] = {}
    i = 0
    while i < len(instrs) - 1:
        instr = instrs[i]
        nxt = instrs[i + 1]
        dest = instr.dest
        if (dest is not None and use_counts.get(dest.index, 0) == 1
                and nxt.args and type(nxt.args[0]) is Temp
                and nxt.args[0].index == dest.index):
            if nxt.op is Opcode.LOAD or nxt.op is Opcode.STORE:
                delta = _move_delta(instr, ctx, slot_types, inline_moves, inline_field)
                if delta is not None:
                    fused[i] = ("mem", delta)
                    i += 2
                    continue
            elif (nxt.op is Opcode.CJUMP and instr.op is Opcode.CMP
                  and instr.attrs["operator"] in CMP_FUNCS):
                fused[i] = ("cmp",)
                i += 2
                continue
        i += 1
    return fused


# ---------------------------------------------------------------------------
# Generic block descriptors
# ---------------------------------------------------------------------------


def _generic_descs_and_costs(function: Function, ctx, slot_types, fused,
                             labels, timing: tuple[int, int, int], scratch: int,
                             fast_noprov: bool):
    """Per-instruction (descriptor, cost) lists for the shared block planner.

    Mirrors the binding step's cost rules exactly and classifies every entry
    model-independently: raw-register work keeps its splice descriptor, every
    model-specialized entry (memory op, call, alloca, pointer move, boxed
    compare, ...) becomes a conservative closure-call slot — ``("ext", out)``
    when it may trap (a charge point), ``("opaque", out)`` when no model's
    hook can raise (the contract the specialized compiler already relies on
    for pointer moves and conversions).  Flushing charges *more* often than
    the specialized compiler is always exact: single-step dispatch charges
    every entry before it runs.
    """
    instrs = function.instrs
    base_cost, branch_cost, call_cost = timing
    stop = len(instrs)
    descs: list = []
    costs: list = []

    for index, instr in enumerate(instrs):
        op = instr.op
        dest = instr.dest.index + FRAME_RESERVED if instr.dest is not None else None
        dest_type = slot_types.get(instr.dest.index) if instr.dest is not None else None
        out = dest if dest is not None else scratch
        cost = base_cost
        desc = None
        fusion = fused.get(index)

        if fusion is not None:
            if fusion[0] == "mem":
                # Fused pointer-move + memory pair: both halves' costs are
                # charged up front (matching the binding step exactly); the
                # pair handler is a closure-call charge point that writes
                # the consumer's destination.
                cost = base_cost + base_cost
                consumer = instrs[index + 1]
                if consumer.op is Opcode.LOAD:
                    cdest = (consumer.dest.index + FRAME_RESERVED
                             if consumer.dest is not None else scratch)
                    desc = ("ext", cdest)
                else:
                    desc = ("ext", None)
            else:
                # Fused cmp+cjump: a branch, so it terminates any block.
                cost = base_cost + branch_cost
                desc = None
        elif op is Opcode.LABEL or op is Opcode.NOP:
            cost = 0
            desc = ("label",)
        elif op is Opcode.JUMP:
            cost = branch_cost
            desc = ("goto", labels[instr.attrs["target"]])
        elif op is Opcode.CJUMP:
            cost = branch_cost
            then_pc = labels[instr.attrs["then"]]
            else_pc = labels[instr.attrs["else"]]
            raw = raw_operand(instr.args[0], ctx, slot_types)
            if raw is not None and raw[0] == "slot":
                desc = ("cjump_raw", raw[1], raw[3], then_pc, else_pc)
            elif raw is not None:
                desc = ("goto", then_pc if raw[1] else else_pc)
        elif op is Opcode.RET:
            if not instr.args:
                desc = ("goto", stop)
        elif op is Opcode.BINOP:
            desc = _generic_binop_desc(instr, ctx, slot_types, dest_type, out,
                                       fast_noprov)
        elif op is Opcode.CMP:
            desc = _generic_cmp_desc(instr, ctx, slot_types, dest_type, out)
        elif op is Opcode.UNOP:
            desc = _generic_unop_desc(instr, ctx, slot_types, dest_type, out)
        elif op is Opcode.INTCAST:
            desc = _generic_intcast_desc(instr, ctx, slot_types, dest_type, out)
        elif op is Opcode.BITCAST:
            desc = _generic_bitcast_desc(instr, ctx, slot_types, dest_type, out)
        elif op in (Opcode.GEP, Opcode.PTRADD, Opcode.FIELD,
                    Opcode.PTRTOINT, Opcode.INTTOPTR):
            # Pointer moves and conversions: no model's hook raises, so they
            # are deferred-charge closure calls (same contract as predecode).
            desc = ("opaque", out)
        elif op is Opcode.CALL:
            cost = call_cost
            desc = ("ext", dest)
        elif op in (Opcode.LOAD, Opcode.ALLOCA, Opcode.PTRDIFF):
            desc = ("ext", out)
        elif op is Opcode.STORE:
            desc = ("ext", None)
        # anything else (unknown opcode): terminal closure call (desc None).

        descs.append(desc)
        costs.append(cost)
    return descs, costs


def _generic_binop_desc(instr, ctx, slot_types, dest_type, out, fast_noprov):
    operator = instr.attrs["operator"]
    is_division = operator in ("/", "%")
    if operator not in INT_BINOPS and not is_division:
        return None  # unknown operator: the handler raises
    if is_division or not fast_noprov:
        # Division by zero is a program-level trap, and an overridden
        # provenance hook must see every operand (and may itself raise):
        # both make the binding step's handler a closure-call charge point,
        # exactly as the specialized compiler demotes them.
        return ("ext", out)
    raw_left = raw_operand(instr.args[0], ctx, slot_types)
    raw_right = raw_operand(instr.args[1], ctx, slot_types)
    target = instr.ctype
    width = min(target.size(ctx), 8) if target is not None else 8
    signed = getattr(target, "signed", True)
    pointer_sized = isinstance(target, IntType) and target.is_pointer_sized
    if raw_left is None or raw_right is None:
        return ("opaque", out)  # boxed path: non-trapping under fast_noprov
    lkind, lpayload, _lt, llabel = raw_left
    rkind, rpayload, _rt, rlabel = raw_right
    dest_mode = 0 if dest_type is not None else 2 if pointer_sized else 1
    return ("binop_raw", lkind, lpayload, llabel, rkind, rpayload, rlabel,
            operator, width, signed, dest_mode, out)


def _generic_cmp_desc(instr, ctx, slot_types, dest_type, out):
    operator = instr.attrs["operator"]
    if operator not in CMP_FUNCS:
        return None
    raw_left = raw_operand(instr.args[0], ctx, slot_types)
    raw_right = raw_operand(instr.args[1], ctx, slot_types)
    if raw_left is None or raw_right is None:
        # Boxed comparison may consult the model's ptr_compare hook:
        # conservatively a charge point in shared blocks.
        return ("ext", out)
    lkind, lpayload, _lt, llabel = raw_left
    rkind, rpayload, _rt, rlabel = raw_right
    return ("cmp_raw", lkind, lpayload, llabel, rkind, rpayload, rlabel,
            operator, dest_type is not None, out)


def _generic_unop_desc(instr, ctx, slot_types, dest_type, out):
    negate = instr.attrs["operator"] == "neg"
    raw = raw_operand(instr.args[0], ctx, slot_types)
    if raw is not None and raw[0] == "slot" and dest_type is not None:
        _, slot, (swidth, ssigned), label = raw
        return ("unop_raw", slot, label, negate, swidth, ssigned, out)
    if raw is not None and dest_type is not None:
        _, const_value, (swidth, ssigned), _label = raw
        const_raw = IntVal(-const_value if negate else ~const_value,
                           swidth, ssigned).value
        return ("const_raw", const_raw, out)
    return ("ext", out)  # may trap on a pointer operand


def _generic_intcast_desc(instr, ctx, slot_types, dest_type, out):
    target = instr.ctype
    width = min(target.size(ctx), 8)
    signed = getattr(target, "signed", True)
    raw = raw_operand(instr.args[0], ctx, slot_types)
    if raw is not None and raw[0] == "slot" and dest_type is not None:
        _, slot, (swidth, ssigned), label = raw
        if (swidth, ssigned) == (width, signed):
            return ("copy_raw", slot, label, out)
        return ("intcast_raw", slot, label, width, signed, out)
    if raw is not None and dest_type is not None:
        return ("const_raw", IntVal(raw[1], width, signed).value, out)
    return ("opaque", out)


def _generic_bitcast_desc(instr, ctx, slot_types, dest_type, out):
    raw = raw_operand(instr.args[0], ctx, slot_types)
    if raw is not None and raw[0] == "slot" and dest_type is not None:
        _, slot, _, label = raw
        return ("copy_raw", slot, label, out)
    if raw is not None and dest_type is not None:
        return ("const_raw", raw[1], out)
    return ("opaque", out)


# ---------------------------------------------------------------------------
# Generic block emission
# ---------------------------------------------------------------------------


class BlockPlan:
    """One shared superinstruction: cached code plus its binding manifest."""

    __slots__ = ("start", "entries", "n_ir", "code", "consts", "handler_indices")

    def __init__(self, start: int, entries: int, n_ir: int, code,
                 consts: dict, handler_indices: tuple[int, ...]) -> None:
        self.start = start
        self.entries = entries
        self.n_ir = n_ir
        self.code = code
        #: model-independent bindings (intern tables, charge tuples, TRUE/FALSE).
        self.consts = consts
        #: handler list indices a binding step must supply as ``h<k>``.
        self.handler_indices = handler_indices


def _plan_blocks(function: Function, descs: list, costs: list, fused: dict,
                 labels: dict, profiled: bool) -> list[BlockPlan]:
    """Segment into basic blocks and emit a shared plan per eligible run.

    The walk is identical to the specialized compiler's
    (:func:`repro.interp.predecode._install_superinstructions`): a leader is
    pc 0, any label pc, or the entry after a block; the first control
    transfer ends the block; runs of two or more entries get a plan.
    """
    n = len(descs)
    label_pcs = set(labels.values())
    plans: list[BlockPlan] = []
    pc = 0
    while pc < n:
        members: list[int] = []
        terminal = None
        k = pc
        while k < n:
            d = descs[k]
            if d is None or d[0] in ("goto", "cjump_raw"):
                terminal = k
                break
            members.append(k)
            step = 2 if k in fused else 1
            if len(members) >= BLOCK_LIMIT or k + step >= n or (k + step) in label_pcs:
                break
            k += step
        if terminal is not None:
            span = members + [terminal]
            next_pc = terminal + (2 if terminal in fused else 1)
        else:
            span = members
            next_pc = (members[-1] + (2 if members[-1] in fused else 1)) if members else pc + 1
        if len(span) >= 2:
            plans.append(_emit_generic_block(function, descs, costs, fused,
                                             members, terminal, next_pc, profiled))
        pc = next_pc
    return plans


def _emit_generic_block(function: Function, descs: list, costs: list,
                        fused: dict, members: list, terminal: int | None,
                        fall_to: int, profiled: bool) -> BlockPlan:
    """Generate and compile the model-independent source for one block.

    Charge groups work exactly as in the specialized compiler: pure entries
    run immediately but defer their charges; every closure-call charge point
    flushes the deferred charges plus its own — one batched add and budget
    check — before it executes, with :func:`predecode._budget_replay`
    reproducing the exact single-step trap point on overrun.  (The leader's
    charge is applied by the dispatch loop before the handler runs.)
    """
    span = members + [terminal] if terminal is not None else members
    start = span[0]
    n_ir = sum(2 if k in fused else 1 for k in span)

    consts: dict = {}
    handler_indices: list[int] = []
    lines: list[str] = []
    emit = lines.append

    if profiled:
        emit("        BC[0] += 1")

    local_of: dict[int, str] = {}
    serial = [0]
    pending: list[int] = []

    def invalidate(slot) -> None:
        if slot is not None:
            local_of.pop(slot, None)

    def set_raw(out: int, var: str) -> None:
        emit(f"        frame[{out}] = {var}")
        local_of[out] = var

    def flush_charges(including: int | None) -> None:
        entries = pending + ([including] if including is not None else [])
        if not entries:
            return
        pending.clear()
        group_cost = sum(costs[e] for e in entries)
        serial[0] += 1
        seq_name = f"cs{serial[0]}"
        consts[seq_name] = tuple(costs[e] for e in entries)
        emit(f"        icount = machine.instructions + {len(entries)}")
        emit("        if icount > machine.max_instructions:")
        emit(f"            budget_replay(machine, {seq_name}, fname)")
        emit("        machine.instructions = icount")
        if group_cost:
            emit(f"        machine.cycles += {group_cost}")

    def fresh() -> str:
        serial[0] += 1
        return f"v{serial[0]}"

    def read_raw(slot: int, label: str | None) -> str:
        var = local_of.get(slot)
        if var is not None:
            return var
        var = fresh()
        message = f"use of undefined temporary {label}"
        emit(f"        {var} = frame[{slot}]")
        emit(f"        if type({var}) is not int:")
        emit(f"            raise InterpreterError({message!r})")
        local_of[slot] = var
        return var

    def call_handler(k: int, out, *, as_return: bool = False) -> None:
        handler_indices.append(k)
        if as_return:
            emit(f"        return h{k}(frame)")
        else:
            emit(f"        h{k}(frame)")
            invalidate(out)

    def operand(kind: str, payload, label) -> str:
        if kind == "slot":
            return read_raw(payload, label)
        return f"({payload!r})"

    def wrap(expr: str, width: int, signed: bool) -> str:
        var = fresh()
        emit(f"        {var} = {expr} & {MASKS[width]}")
        if signed:
            emit(f"        if {var} >= {SIGN_MIN[width]}:")
            emit(f"            {var} -= {MODULI[width]}")
        return var

    for position, k in enumerate(members):
        d = descs[k]
        kind = d[0]
        if kind == "ext":
            flush_charges(None if position == 0 else k)
            call_handler(k, d[1])
            continue
        if position > 0:
            pending.append(k)
        if kind == "label":
            continue
        if kind == "opaque":
            call_handler(k, d[1])
        elif kind == "const_raw":
            _, value, out = d
            set_raw(out, f"({value!r})")
        elif kind == "copy_raw":
            _, slot, label, out = d
            set_raw(out, read_raw(slot, label))
        elif kind == "intcast_raw":
            _, slot, label, width, signed, out = d
            set_raw(out, wrap(read_raw(slot, label), width, signed))
        elif kind == "unop_raw":
            _, slot, label, negate, width, signed, out = d
            source = read_raw(slot, label)
            set_raw(out, wrap(f"({'-' if negate else '~'}{source})", width, signed))
        elif kind == "binop_raw":
            (_, lkind, lpayload, llabel, rkind, rpayload, rlabel,
             operator, width, signed, dest_mode, out) = d
            a = operand(lkind, lpayload, llabel)
            b = operand(rkind, rpayload, rlabel)
            var = wrap(BINOP_EXPR[operator].format(a=a, b=b), width, signed)
            if dest_mode == 0:
                set_raw(out, var)
            elif dest_mode == 1:
                table_name = f"T{k}"
                consts[table_name] = intern_table(width, signed)
                emit(f"        frame[{out}] = ({table_name}[{var} - ({INTERN_MIN})]"
                     f" if {INTERN_MIN} <= {var} <= {INTERN_MAX}"
                     f" else IntVal({var}, {width}, {signed}))")
                invalidate(out)
            else:
                emit(f"        frame[{out}] = IntVal({var}, {width}, {signed}, None, True)")
                invalidate(out)
        elif kind == "cmp_raw":
            (_, lkind, lpayload, llabel, rkind, rpayload, rlabel,
             operator, raw_dest, out) = d
            a = operand(lkind, lpayload, llabel)
            b = operand(rkind, rpayload, rlabel)
            condition = f"{a} {operator} {b}"
            if raw_dest:
                var = fresh()
                emit(f"        {var} = 1 if {condition} else 0")
                set_raw(out, var)
            else:
                consts["TRUE"] = TRUE_I32
                consts["FALSE"] = FALSE_I32
                emit(f"        frame[{out}] = TRUE if {condition} else FALSE")
                invalidate(out)
        else:  # pragma: no cover - descriptor/emitter mismatch is a bug
            raise AssertionError(f"unknown generic block descriptor {d!r}")

    if terminal is None:
        flush_charges(None)
        emit(f"        return {fall_to}")
    else:
        d = descs[terminal]
        flush_charges(None if terminal == start else terminal)
        if d is not None and d[0] == "goto":
            emit(f"        return {d[1]}")
        elif d is not None and d[0] == "cjump_raw":
            _, slot, label, then_pc, else_pc = d
            var = read_raw(slot, label)
            emit(f"        return {then_pc} if {var} else {else_pc}")
        else:
            call_handler(terminal, None, as_return=True)

    names = sorted(consts) + ["machine", "fname", "budget_replay"]
    indices = tuple(dict.fromkeys(handler_indices))
    names += [f"h{k}" for k in indices]
    if profiled:
        names.append("BC")
    source = block_source(lines, names)
    code = block_code(source, f"{function.name}+{start}@shared")
    return BlockPlan(start, len(span), n_ir, code, consts, indices)


# ---------------------------------------------------------------------------
# The artifact and its cache
# ---------------------------------------------------------------------------


class PredecodeArtifact:
    """Everything about one IR function derivable from IR + pointer layout."""

    __slots__ = ("function", "ctx", "instrs", "ninstrs", "mutations",
                 "labels", "sync_pcs", "use_counts", "nregs", "nallocas",
                 "scratch", "shadow_flag", "_slot_types", "_fusions",
                 "_plans", "_arg_raws", "fingerprint", "disk_snapshot")

    def __init__(self, function: Function, ctx) -> None:
        self.function = function
        self.ctx = ctx
        #: snapshots of the instruction stream the artifact was computed
        #: from; the cache verifies list identity, length *and* the
        #: function's in-place mutation counter on every hit, so replacing
        #: ``function.instrs`` or re-running an optimizer pass (which bumps
        #: the counter via ``invalidate_label_index``) invalidates
        #: everything derived from it.
        self.instrs = function.instrs
        self.ninstrs = len(function.instrs)
        self.mutations = function.mutations
        self.labels = function.label_index()
        #: lane-rejoin boundaries for the lockstep engine
        #: (repro.interp.lockstep): the label pcs targeted by a *backward*
        #: branch (loop heads).  Model-independent decode fact, so it lives
        #: here.  Any label pc would be sound — labels are the only branch
        #: targets and a superinstruction never spans one, so pausing lanes
        #: there can never split a block dispatch — but forward-join labels
        #: (if/else joins) are so dense that pausing at each one costs more
        #: scheduler round-trips than the reconvergence is worth; diverged
        #: lanes rejoin at the next loop head (or completion) instead.
        sync = set()
        for pc, instr in enumerate(function.instrs):
            if instr.op is Opcode.JUMP:
                target = self.labels[instr.attrs["target"]]
                if target <= pc:
                    sync.add(target)
            elif instr.op is Opcode.CJUMP:
                for key in ("then", "else"):
                    target = self.labels[instr.attrs[key]]
                    if target <= pc:
                        sync.add(target)
        self.sync_pcs = tuple(sorted(sync))
        max_temp = -1
        nallocas = 0
        use_counts: dict[int, int] = {}
        for instr in function.instrs:
            if instr.dest is not None and instr.dest.index > max_temp:
                max_temp = instr.dest.index
            for arg in instr.args:
                if type(arg) is Temp:
                    if arg.index > max_temp:
                        max_temp = arg.index
                    use_counts[arg.index] = use_counts.get(arg.index, 0) + 1
            if instr.op is Opcode.ALLOCA:
                nallocas += 1
        self.use_counts = use_counts
        # Two extra frame slots beyond the temps: a scratch slot for
        # dest-less ops, and a per-activation shadow-clean flag for the
        # static-facts store fast path (UNDEF unless the function has safe
        # allocas under a shadow-clearing model; see repro.staticcheck).
        self.nregs = max_temp + 3
        self.nallocas = nallocas
        self.scratch = max_temp + 1 + FRAME_RESERVED
        self.shadow_flag = max_temp + 2 + FRAME_RESERVED
        self._slot_types: dict[bool, dict] = {}
        self._fusions: dict[tuple, dict] = {}
        self._plans: dict[tuple, list[BlockPlan]] = {}
        self._arg_raws: dict[bool, list[tuple]] = {}
        #: persistent-tier state (repro.interp.diskcache): the IR content
        #: hash this artifact is filed under, and the memo-count snapshot at
        #: the last load/store (None means never persisted — dirty).
        self.fingerprint: str | None = None
        self.disk_snapshot: tuple | None = None

    def slot_types(self, fast_noprov: bool) -> dict[int, tuple[int, bool]]:
        """The slot-type fixpoint, memoized per provenance-hook policy."""
        cached = self._slot_types.get(fast_noprov)
        if cached is None:
            cached = analyze_slots(self.function, self.ctx, fast_noprov)
            self._slot_types[fast_noprov] = cached
        return cached

    def arg_raws(self, fast_noprov: bool) -> list[tuple]:
        """Per-instruction raw-operand descriptors (:func:`raw_operand`),
        memoized so the per-machine binding step stops recomputing them."""
        cached = self._arg_raws.get(fast_noprov)
        if cached is None:
            slot_types = self.slot_types(fast_noprov)
            ctx = self.ctx
            cached = [tuple(raw_operand(arg, ctx, slot_types) for arg in instr.args)
                      for instr in self.function.instrs]
            self._arg_raws[fast_noprov] = cached
        return cached

    def fusion(self, inline_moves: bool, inline_field: bool,
               fast_noprov: bool) -> dict[int, tuple]:
        """Pair-fusion decisions, memoized per inline-policy combination."""
        key = (inline_moves, inline_field, fast_noprov)
        cached = self._fusions.get(key)
        if cached is None:
            cached = compute_fusion(self.function, self.ctx,
                                    self.slot_types(fast_noprov),
                                    self.use_counts, inline_moves, inline_field)
            self._fusions[key] = cached
        return cached

    def block_plans(self, timing: tuple[int, int, int], fast_noprov: bool,
                    profiled: bool, inline_moves: bool,
                    inline_field: bool) -> list[BlockPlan]:
        """Shared superinstruction plans, memoized per (timing, policy).

        The inline-move flags are part of the key because fusion must match
        the binding step exactly (fused pairs change pc layout and charge
        both halves up front); models sharing those flags — four of the
        five 8-byte models — share one plan set.
        """
        key = (timing, fast_noprov, profiled, inline_moves, inline_field)
        cached = self._plans.get(key)
        if cached is None:
            slot_types = self.slot_types(fast_noprov)
            fused = self.fusion(inline_moves, inline_field, fast_noprov)
            descs, costs = _generic_descs_and_costs(
                self.function, self.ctx, slot_types, fused, self.labels,
                timing, self.scratch, fast_noprov)
            cached = _plan_blocks(self.function, descs, costs, fused,
                                  self.labels, profiled)
            self._plans[key] = cached
        return cached


#: bound on cached artifacts; sweeps touch each program's functions for a
#: burst of seven machines and never again, so a small LRU is plenty.
CACHE_LIMIT = 512


class ArtifactCache:
    """Process-level LRU of :class:`PredecodeArtifact` keyed by function."""

    __slots__ = ("entries", "maxsize", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = CACHE_LIMIT) -> None:
        self.entries: OrderedDict[tuple, PredecodeArtifact] = OrderedDict()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, function: Function, ctx) -> PredecodeArtifact:
        """The artifact for ``function`` under ``ctx``'s pointer layout.

        Keys use ``id(function)`` plus the layout; the stored entry keeps a
        strong reference to the function and is verified by identity, so a
        recycled ``id`` (or a same-name function from another module) can
        never alias a stale artifact.
        """
        key = (id(function), ctx.pointer_bytes, ctx.pointer_align)
        artifact = self.entries.get(key)
        if (artifact is not None and artifact.function is function
                and artifact.ctx is ctx
                and artifact.instrs is function.instrs
                and artifact.ninstrs == len(function.instrs)
                and artifact.mutations == function.mutations):
            self.hits += 1
            self.entries.move_to_end(key)
            return artifact
        self.misses += 1
        artifact = PredecodeArtifact(function, ctx)
        # Persistent tier (no-op unless diskcache.configure() enabled it):
        # prefill the memo dicts from a validated on-disk entry keyed by IR
        # content hash, and register the artifact for the next flush.
        diskcache.attach(artifact)
        self.entries[key] = artifact
        self.entries.move_to_end(key)
        while len(self.entries) > self.maxsize:
            self.entries.popitem(last=False)
            self.evictions += 1
        return artifact

    def clear(self) -> None:
        self.entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": len(self.entries)}


#: the process-level artifact cache every machine compiles through.
ARTIFACTS = ArtifactCache()


def get_artifact(function: Function, ctx) -> PredecodeArtifact:
    """Module-level convenience wrapper over :data:`ARTIFACTS`."""
    return ARTIFACTS.get(function, ctx)

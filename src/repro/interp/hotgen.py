"""Source-specialized load/store handlers for the predecoded interpreter.

The generic closure-based handlers in :mod:`repro.interp.predecode` branch on
a dozen compile-time-constant flags (check policy, fused delta kind, cache
inlining, destination representation, ...) on *every* execution.  This module
generates straight-line Python source for each distinct flag combination — a
"shape" — compiles it once per process, and instantiates per-instruction
closures from the cached code object.  The generated bodies are the exact
same operations the generic handlers perform with the branches resolved, so
observational behaviour (counters, cache state, traps) is identical; the
golden-metrics suite pins this across all seven memory models.

Shapes are tuples of small ints/strings/bools; the cache is unbounded but in
practice a workload produces a few dozen shapes.

The module also owns the generated-source plumbing both block compilers sit
on: :func:`block_source` wraps emitted body lines into ``make(B) -> handler``
source, :func:`block_code` caches compilation by source text, and
:func:`bind_block` instantiates a handler from a cached code object — which
is all a shared-block machine pays per superinstruction
(:mod:`repro.interp.artifact` stores the code objects on the predecode
artifact; see ``docs/pipeline.md``).
"""

from __future__ import annotations

import struct

from repro.common.errors import InterpreterError
from repro.interp.values import INTERN_MAX, INTERN_MIN, IntVal, Provenance, PtrVal

_ADDRESS_MASK = (1 << 64) - 1

#: little-endian struct codes for exact widths; other sizes use int.from_bytes.
_STRUCT_CODES = {(1, True): "b", (1, False): "B", (2, True): "h", (2, False): "H",
                 (4, True): "i", (4, False): "I", (8, True): "q", (8, False): "Q"}
_UNPACKERS = {key: struct.Struct("<" + code).unpack_from
              for key, code in _STRUCT_CODES.items()}
_PACKERS = {key: struct.Struct("<" + code).pack_into
            for key, code in _STRUCT_CODES.items()}

#: shape -> compiled ``make(b)`` function.
_MAKERS: dict[tuple, object] = {}

#: ("load"/"store", shape) -> raw handler body lines, built once per shape.
#: NOTE: the block compiler's scalar-memory inliner
#: (predecode._emit_block/emit_scalar_mem) emits its own copy of the scalar
#: load/store semantics with block-local naming — a change to the access
#: check, timing, shadow-clear or page-access logic here must be mirrored
#: there (tests/test_superinstructions.py pins the two paths against each
#: other across all seven models).
_BODIES: dict[tuple, list] = {}

#: names unpacked from the binding dict into ``make`` locals; the handler
#: closure only captures the ones its generated body actually references.
_BINDING_NAMES = (
    "pslot", "pcoerce", "d1", "d2", "dmsg", "base_cost", "check_access",
    "size", "size_m1", "line_shift", "nsets_mask", "nsets_shift", "assoc",
    "lat_l1", "lat_l2", "lat_dram", "l1_sets", "l1_stats", "l2_access",
    "hier", "hierarchy_access", "machine", "page_mask", "page_size",
    "page_shift", "mem_size", "pages_get", "mem_pages", "read_small",
    "write_small", "write_ptr_raw", "mem_tags", "shadow_get",
    "shadow_entries", "shadow_pages", "shadow_page_shift", "ptr_memo",
    "ptr_memo_get", "load_ptr_no_meta", "allocator", "int_to_ptr",
    "reconcile", "appliers", "table", "out", "next_pc", "signed",
    "read_value", "ptr_to_int", "coerce_bytes", "coerce_signed",
    "size_mask", "comb_mask", "const_raw", "vslot", "vmsg", "pad", "span",
    "mem_unpack", "mem_pack", "fname",
)


def unpacker_for(size: int, signed: bool):
    """Prebound struct reader for exact widths (None -> from_bytes path)."""
    return _UNPACKERS.get((size, signed))


def packer_for(size: int):
    """Prebound struct writer for exact widths (None -> to_bytes path)."""
    return _PACKERS.get((size, False))

_GLOBALS = {
    "IntVal": IntVal,
    "PtrVal": PtrVal,
    "Provenance": Provenance,
    "InterpreterError": InterpreterError,
    "INTERN_MIN": INTERN_MIN,
    "INTERN_MAX": INTERN_MAX,
    "M64": _ADDRESS_MASK,
    "int_from_bytes": int.from_bytes,
}


def _emit_prologue(lines, pslot_inline, dkind, extra):
    if pslot_inline:
        lines += [
            "        pointer = frame[pslot]",
            "        if type(pointer) is not PtrVal:",
            "            pointer = pcoerce(pointer)",
        ]
    else:
        lines.append("        pointer = pcoerce(frame)")
    if dkind == 0:
        lines.append("        address = pointer.address")
    elif dkind == 1:
        lines.append("        address = (pointer.address + d1) & M64")
    else:
        lines += [
            "        idx = frame[d1]",
            "        if type(idx) is not int:",
            "            raise InterpreterError(dmsg)",
            "        address = (pointer.address + idx * d2) & M64",
        ]
    if extra:
        # Fused second instruction: count it (and re-check the budget, like
        # the dispatch loop would) before any observable effect.  Its base
        # cycle cost is folded into the pair's costs[] entry, which the loop
        # charges up front.
        lines += [
            "        machine.instructions = icount = machine.instructions + 1",
            "        if icount > machine.max_instructions:",
            "            raise InterpreterError(",
            "                f'instruction budget of {machine.max_instructions} exhausted in {fname}')",
        ]


def _emit_check(lines, check_kind, dkind, is_write):
    perm = "2" if is_write else "1"
    flag = "True" if is_write else "False"
    moved = ("pointer = PtrVal(address, pointer.base, pointer.length, "
             "pointer.obj, pointer.perms, pointer.tag, pointer.checked)")
    if check_kind == 1:
        lines += [
            "        obj = pointer.obj",
            f"        if not (pointer.tag and pointer.checked and pointer.perms & {perm}",
            "                and pointer.base <= address",
            "                and address + size <= pointer.base + pointer.length",
            "                and (obj is None or not obj.freed)",
            "                and not (address == 0 and obj is None)):",
        ]
        if dkind:
            lines.append(f"            {moved}")
        lines.append(f"            address = check_access(pointer, size, is_write={flag})")
    elif check_kind == 2:
        lines.append("        if address < 4096:")
        if dkind:
            lines.append(f"            {moved}")
        lines.append(f"            address = check_access(pointer, size, is_write={flag})")
    else:
        if dkind:
            lines.append(f"        {moved}")
        lines.append(f"        address = check_access(pointer, size, is_write={flag})")


def _emit_timing(lines, collect_timing, inline_cache, is_write):
    if not collect_timing:
        return
    flag = "True" if is_write else "False"
    counter = "writes" if is_write else "reads"
    if not inline_cache:
        lines.append(f"        machine.cycles += hierarchy_access(address, size, is_write={flag})")
        return
    lines += [
        "        line = address >> line_shift",
        "        if (address + size_m1) >> line_shift == line:",
        "            cache_set = l1_sets[line & nsets_mask]",
        "            tag = line >> nsets_shift",
        f"            l1_stats.{counter} += 1",
        "            if tag in cache_set:",
        "                del cache_set[tag]",
        "                cache_set[tag] = 0",
        "                l1_stats.hits += 1",
        "                lat = lat_l1",
        "            else:",
        "                l1_stats.misses += 1",
        "                if len(cache_set) >= assoc:",
        "                    del cache_set[next(iter(cache_set))]",
        "                cache_set[tag] = 0",
        "                lat = lat_l1 + lat_l2",
        f"                if not l2_access(line << line_shift, is_write={flag}):",
        "                    hier.dram_accesses += 1",
        "                    lat += lat_dram",
        "            hier.stall_cycles += lat",
        "            machine.cycles += lat",
        "        else:",
        f"            machine.cycles += hierarchy_access(address, size, is_write={flag})",
    ]


def load_maker(shape: tuple):
    """``make(b) -> handler`` for a LOAD of the given shape."""
    make = _MAKERS.get(shape)
    if make is not None:
        return make
    return _compile(shape, load_body(shape))


def load_body(shape: tuple) -> list:
    """Raw handler body lines for a LOAD of the given shape.

    shape = (kind, pslot_inline, dkind, extra, check_kind, collect_timing,
             inline_cache, uses_shadow, memo, inline_reconcile, n_appliers)
    with kind in {"ptr", "psint", "raw", "box"}.
    """
    cached = _BODIES.get(("load", shape))
    if cached is not None:
        return cached
    (kind, pslot_inline, dkind, extra, check_kind, collect_timing,
     inline_cache, uses_shadow, memo, inline_reconcile, n_appliers,
     fast_mem) = shape
    lines = []
    _emit_prologue(lines, pslot_inline, dkind, extra)
    _emit_check(lines, check_kind, dkind, False)
    lines.append("        machine.memory_accesses += 1")
    _emit_timing(lines, collect_timing, inline_cache, False)
    # memory read: pointer-like loads read the 8-byte raw address word but
    # size/bounds reflect the model's pointer width.
    is_ptr_like = kind in ("ptr", "psint")
    if fast_mem:
        fast_read = "mem_unpack(page, offset)[0]"
    elif is_ptr_like:
        fast_read = "int_from_bytes(page[offset:offset + 8], 'little')"
    else:
        fast_read = "int_from_bytes(page[offset:offset + size], 'little', signed=signed)"
    slow_read = ("read_small(address, 8, False)" if is_ptr_like
                 else "read_small(address, size, signed)")
    lines += [
        "        offset = address & page_mask",
        "        if offset + size <= page_size and 0 <= address and address + size <= mem_size:",
        "            page = pages_get(address >> page_shift)",
        f"            raw = 0 if page is None else {fast_read}",
        "        else:",
        f"            raw = {slow_read}",
    ]
    if kind == "raw":
        lines.append("        frame[out] = raw")
    elif kind == "box":
        lines += [
            "        if INTERN_MIN <= raw <= INTERN_MAX:",
            "            frame[out] = table[raw - INTERN_MIN]",
            "        else:",
            "            frame[out] = IntVal(raw, bytes=size, signed=signed)",
        ]
    elif not uses_shadow:
        # Shadow-free models (PDP-11, Relaxed): the entry is statically None,
        # so the reconciliation branches fold away entirely.
        if kind == "ptr":
            if memo:
                lines += [
                    "        loaded = ptr_memo_get(raw)",
                    "        if loaded is None:",
                    "            loaded = ptr_memo[raw] = load_ptr_no_meta(raw, allocator)",
                ]
            else:
                lines.append("        loaded = load_ptr_no_meta(raw, allocator)")
            if n_appliers:
                lines += [
                    "        for apply in appliers:",
                    "            loaded = apply(loaded)",
                ]
            lines.append("        frame[out] = loaded")
        else:  # psint
            lines.append(
                "        frame[out] = IntVal(raw, bytes=8, signed=signed, pointer_sized=True)")
    else:
        lines.append("        entry = shadow_get(address)")
        if kind == "ptr":
            reconstruct = []
            if memo:
                reconstruct += [
                    "loaded = ptr_memo_get(raw)",
                    "if loaded is None:",
                    "    loaded = ptr_memo[raw] = load_ptr_no_meta(raw, allocator)",
                ]
            else:
                reconstruct.append("loaded = load_ptr_no_meta(raw, allocator)")
            if inline_reconcile:
                lines.append("        if type(entry) is PtrVal and raw == entry.address:")
                lines.append("            loaded = entry")
                lines.append("        elif entry is None or type(entry) is PtrVal:")
                lines += ["            " + text for text in reconstruct]
            else:
                lines.append("        if entry is None:")
                lines += ["            " + text for text in reconstruct]
                lines.append("        elif type(entry) is PtrVal:")
                lines.append("            loaded = reconcile(raw, entry, allocator)")
            lines += [
                "        elif type(entry) is IntVal:",
                "            loaded = int_to_ptr(entry.with_value(raw, provenance=entry.provenance), allocator)",
                "        else:",
                "            raise InterpreterError(f'corrupt shadow entry {entry!r}')",
            ]
            if n_appliers:
                lines += [
                    "        for apply in appliers:",
                    "            loaded = apply(loaded)",
                ]
            lines.append("        frame[out] = loaded")
        else:  # psint
            lines += [
                "        if type(entry) is IntVal and entry.unsigned == raw:",
                "            frame[out] = IntVal(raw, bytes=8, signed=signed, provenance=entry.provenance, pointer_sized=True)",
                "        elif type(entry) is PtrVal and entry.address == raw:",
                "            frame[out] = IntVal(raw, bytes=8, signed=signed, provenance=Provenance(entry), pointer_sized=True)",
                "        else:",
                "            frame[out] = IntVal(raw, bytes=8, signed=signed, pointer_sized=True)",
            ]
    lines.append("        return next_pc")
    _BODIES[("load", shape)] = lines
    return lines


def store_maker(shape: tuple):
    """``make(b) -> handler`` for a STORE of the given shape."""
    make = _MAKERS.get(shape)
    if make is not None:
        return make
    return _compile(shape, store_body(shape))


def store_body(shape: tuple) -> list:
    """Raw handler body lines for a STORE of the given shape.

    shape = (kind, pslot_inline, dkind, extra, check_kind, collect_timing,
             inline_cache, clear_shadow, uses_shadow, value_mode, coerce,
             wide_span)
    with kind in {"ptr", "scalar"}; value_mode in (0 const, 1 raw slot,
    2 boxed reader) for scalar stores (ptr stores always use the reader).
    """
    cached = _BODIES.get(("store", shape))
    if cached is not None:
        return cached
    (kind, pslot_inline, dkind, extra, check_kind, collect_timing,
     inline_cache, clear_shadow, uses_shadow, value_mode, coerce,
     wide_span, fast_mem) = shape
    lines = []
    _emit_prologue(lines, pslot_inline, dkind, extra)
    if kind == "ptr":
        lines.append("        value = read_value(frame)")
        if coerce:  # PointerType store: integers coerce through the model
            lines += [
                "        if type(value) is IntVal:",
                "            value = int_to_ptr(value, allocator)",
            ]
    elif value_mode == 1:
        lines += [
            "        value = frame[vslot]",
            "        if type(value) is not int:",
            "            raise InterpreterError(vmsg)",
            "        raw = value & comb_mask",
        ]
    elif value_mode == 2:
        lines.append("        value = read_value(frame)")
        if coerce:
            lines += [
                "        if type(value) is PtrVal:",
                "            value = ptr_to_int(value, bytes=coerce_bytes, signed=coerce_signed, pointer_sized=False)",
            ]
        lines.append("        raw = (value.unsigned if type(value) is IntVal else int(value)) & size_mask")
    else:
        lines.append("        raw = const_raw")
    _emit_check(lines, check_kind, dkind, True)
    lines.append("        machine.memory_accesses += 1")
    _emit_timing(lines, collect_timing, inline_cache, True)
    if kind == "ptr":
        lines.append("        raw = (value.address if type(value) is PtrVal else value.unsigned) & M64")
    if clear_shadow:
        lines += [
            "        if shadow_entries:",
            "            for key in range(address - address % 8, address + size, 8):",
            "                if key in shadow_entries:",
            "                    del shadow_entries[key]",
            "                    shadow_pages[key >> shadow_page_shift].discard(key)",
        ]
    if kind == "ptr":
        lines += [
            "        offset = address & page_mask",
            "        if not mem_tags and offset + span <= page_size and 0 <= address and address + span <= mem_size:",
            "            page = pages_get(address >> page_shift)",
            "            if page is None:",
            "                page = mem_pages[address >> page_shift] = bytearray(page_size)",
            "            mem_pack(page, offset, raw)" if fast_mem
            else "            page[offset:offset + 8] = raw.to_bytes(8, 'little')",
        ]
        if wide_span:
            lines.append("            page[offset + 8:offset + span] = pad")
        lines += [
            "        else:",
            "            write_ptr_raw(address, raw, size)",
        ]
        if uses_shadow:
            lines += [
                "        shadow_entries[address] = value",
                "        page_index = address >> shadow_page_shift",
                "        bucket = shadow_pages.get(page_index)",
                "        if bucket is None:",
                "            shadow_pages[page_index] = {address}",
                "        else:",
                "            bucket.add(address)",
            ]
    else:
        lines += [
            "        offset = address & page_mask",
            "        if not mem_tags and offset + size <= page_size and 0 <= address and address + size <= mem_size:",
            "            page = pages_get(address >> page_shift)",
            "            if page is None:",
            "                page = mem_pages[address >> page_shift] = bytearray(page_size)",
            "            mem_pack(page, offset, raw)" if fast_mem
            else "            page[offset:offset + size] = raw.to_bytes(size, 'little')",
            "        else:",
            "            write_small(address, size, raw)",
        ]
    lines.append("        return next_pc")
    _BODIES[("store", shape)] = lines
    return lines


#: block source text -> compiled code object.  Different machines (and the
#: benchmark's repeated machine builds) regenerate byte-identical sources for
#: the same function/model, and ``compile()`` dominates predecode cost — the
#: cache turns every rebuild after the first into a cheap ``exec``.
_BLOCK_CODE: dict[str, object] = {}


def block_source(body_lines: list, names: list) -> str:
    """Wrap pre-indented handler body lines into ``make(B) -> handler`` source.

    ``names`` are the binding names exposed as keyword defaults
    (``LOAD_FAST`` at run time, like the per-instruction handlers);
    machine-wide objects are bound once per block under shared names, and
    site scalars are inlined as literals, so the default list stays small
    even for long blocks.
    """
    signature = ("    def handler(frame, "
                 + ", ".join(f"{name}=B[{name!r}]" for name in names) + "):")
    return ("def make(B):\n" + signature + "\n"
            + "\n".join(body_lines) + "\n    return handler\n")


def block_code(source: str, tag: str):
    """The compiled code object for block ``source``, cached by source text.

    Rebuilding the same function for another machine (or benchmark round)
    skips ``compile()``, which otherwise dominates predecode time; the
    shared block plans in :mod:`repro.interp.artifact` store these code
    objects directly, so a cross-machine rebind never recompiles at all.
    """
    code = _BLOCK_CODE.get(source)
    if code is None:
        code = compile(source, f"<block {tag}>", "exec")
        _BLOCK_CODE[source] = code
    return code


#: code object -> its exec'd ``make``.  A block's generated module body is a
#: single ``def`` and ``make`` only *reads* its globals, so one namespace per
#: code object is safe to share across machines; rebinding the same plan for
#: another machine (or another lockstep lane) is then a dict hit plus one
#: ``make(bindings)`` call, with no per-bind ``exec`` at all.
_BLOCK_MAKES: dict = {}


def block_maker(code):
    """The ``make(B)`` factory for a compiled block, exec'd once per process."""
    make = _BLOCK_MAKES.get(code)
    if make is None:
        namespace = dict(_GLOBALS)
        exec(code, namespace)
        make = _BLOCK_MAKES[code] = namespace["make"]
    return make


def bind_block(code, bindings: dict):
    """Instantiate a block handler from a compiled ``make(B)`` code object.

    This is the whole per-machine cost of a shared superinstruction: one
    memoized :func:`block_maker` lookup plus a closure construction over the
    per-machine ``bindings``.
    """
    return block_maker(code)(bindings)


def bind_block_multi(code, bindings_list: list) -> list:
    """Bind one block plan for several machines (lockstep lanes) in one pass."""
    make = block_maker(code)
    return [make(bindings) for bindings in bindings_list]


def compile_block(body_lines: list, bindings: dict, tag: str):
    """Compile one basic-block superinstruction from generated source.

    ``body_lines`` are pre-indented to the handler body depth (8 spaces);
    every key in ``bindings`` becomes a keyword default (see
    :func:`block_source`).
    """
    source = block_source(body_lines, sorted(bindings))
    return bind_block(block_code(source, tag), bindings)


def _compile(shape: tuple, body_lines: list) -> object:
    import re

    body = "\n".join(body_lines)
    # Bind every name the body references as a keyword default, so the
    # handler reads them with LOAD_FAST instead of closure-cell lookups.
    used = [name for name in _BINDING_NAMES
            if re.search(rf"\b{name}\b", body)]
    signature = "    def handler(frame, " + ", ".join(
        f"{name}=b[{name!r}]" for name in used) + "):"
    source = "def make(b):\n" + signature + "\n" + body + "\n    return handler\n"
    namespace = dict(_GLOBALS)
    exec(compile(source, f"<hotgen {shape}>", "exec"), namespace)
    make = namespace["make"]
    _MAKERS[shape] = make
    return make

"""Runtime values of the abstract machine.

Two kinds of value flow through the interpreter: integers and pointers.
Keeping them distinct — and recording, on integers, where they came from —
is what lets the different memory models disagree about the pointer idioms:

* :class:`IntVal` is a fixed-width two's-complement integer.  When it was
  produced from a pointer (``ptrtoint``) it carries a :class:`Provenance`
  record; integer arithmetic marks the provenance *modified*, which is the
  fact models like Strict, HardBound and CHERIv2 key off.
* :class:`PtrVal` is the model-independent pointer representation: the
  current address, the bounds and permissions granted, a CHERI-style tag and
  the heap object it was derived from.  Individual memory models interpret
  (or ignore) these fields according to their own rules.

Both classes are allocated millions of times per simulated run, so they are
``slots=True`` dataclasses, width normalisation uses precomputed mask tables
instead of per-value shift arithmetic, and the ``moved_*``/``with_*`` helpers
construct replacements directly rather than going through
:func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import sign_extend, truncate

#: precomputed masks / sign thresholds / moduli for 0..8-byte widths.
_MASKS = tuple((1 << (8 * i)) - 1 for i in range(9))
_SIGN_MIN = tuple(1 << (8 * i - 1) if i else 0 for i in range(9))
_MODULI = tuple(1 << (8 * i) for i in range(9))


@dataclass(frozen=True, slots=True)
class Provenance:
    """Where an integer value came from, if it was derived from a pointer."""

    pointer: "PtrVal"
    #: True once integer arithmetic has been performed on the value.
    modified: bool = False

    def touched(self) -> "Provenance":
        return Provenance(pointer=self.pointer, modified=True)


@dataclass(frozen=True, slots=True)
class IntVal:
    """A fixed-width integer value."""

    value: int
    bytes: int = 8
    signed: bool = True
    provenance: Provenance | None = None
    #: True when the C type was intptr_t/intcap_t: capability ABIs represent
    #: these as capabilities, so they round-trip pointers losslessly.
    pointer_sized: bool = False

    def __post_init__(self) -> None:
        value = self.value
        width = self.bytes
        if 0 < width <= 8:
            wrapped = value & _MASKS[width]
            if self.signed and wrapped >= _SIGN_MIN[width]:
                wrapped -= _MODULI[width]
        else:
            wrapped = truncate(value, width * 8)
            if self.signed:
                wrapped = sign_extend(wrapped, width * 8)
        if wrapped != value:
            object.__setattr__(self, "value", wrapped)

    @property
    def unsigned(self) -> int:
        value = self.value
        if value >= 0:
            return value
        width = self.bytes
        return value & (_MASKS[width] if width <= 8 else (1 << (width * 8)) - 1)

    @property
    def is_true(self) -> bool:
        return self.value != 0

    def with_value(self, value: int, *, provenance: Provenance | None = None) -> "IntVal":
        return IntVal(value=value, bytes=self.bytes, signed=self.signed,
                      provenance=provenance, pointer_sized=self.pointer_sized)

    def converted(self, *, bytes: int, signed: bool, pointer_sized: bool = False) -> "IntVal":
        """Integer conversion; narrowing drops provenance information only if
        bits are actually lost (the WIDE idiom)."""
        provenance = self.provenance
        if bytes < self.bytes:
            provenance = provenance.touched() if provenance else None
        return IntVal(value=self.value, bytes=bytes, signed=signed,
                      provenance=provenance, pointer_sized=pointer_sized)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"i{self.bytes * 8}:{self.value}"


_ADDRESS_MASK = (1 << 64) - 1

# Permission flag constants shared by every pointer.
PERM_READ = 1
PERM_WRITE = 2
PERM_ALL = PERM_READ | PERM_WRITE


@dataclass(frozen=True, slots=True)
class PtrVal:
    """A pointer value.

    ``obj`` is the :class:`~repro.interp.heap.HeapObject` the pointer was
    derived from (None for NULL and for forged pointers), ``base``/``length``
    are the rights it grants, ``address`` is where it currently points, and
    ``tag`` records validity under capability models.  ``checked`` is used by
    the MPX model: a pointer whose bounds were lost fails *open*, i.e. it is
    dereferenceable but unchecked.
    """

    address: int = 0
    base: int = 0
    length: int = 0
    obj: object | None = None
    perms: int = PERM_ALL
    tag: bool = True
    checked: bool = True

    @property
    def is_null(self) -> bool:
        return self.address == 0 and self.obj is None

    @property
    def top(self) -> int:
        return self.base + self.length

    @property
    def offset(self) -> int:
        """CHERI-style offset: the cursor relative to the base."""
        return self.address - self.base

    @property
    def in_bounds(self) -> bool:
        return self.base <= self.address < self.top or (self.address == self.top and self.length == 0)

    def moved_to(self, address: int) -> "PtrVal":
        return PtrVal(address & _ADDRESS_MASK, self.base, self.length, self.obj,
                      self.perms, self.tag, self.checked)

    def moved_by(self, delta: int) -> "PtrVal":
        # Pointer arithmetic wraps modulo 2**64, exactly like address
        # arithmetic on 64-bit hardware; this is what makes subtracting an
        # unsigned offset (e.g. ``p - offsetof(...)``) land on the right
        # address.
        return PtrVal((self.address + delta) & _ADDRESS_MASK, self.base, self.length,
                      self.obj, self.perms, self.tag, self.checked)

    def with_bounds(self, base: int, length: int) -> "PtrVal":
        return PtrVal(self.address, base, length, self.obj, self.perms, self.tag, self.checked)

    def with_perms(self, perms: int) -> "PtrVal":
        return PtrVal(self.address, self.base, self.length, self.obj, perms, self.tag, self.checked)

    def untagged(self) -> "PtrVal":
        return PtrVal(self.address, self.base, self.length, self.obj, self.perms, False, self.checked)

    def unchecked(self) -> "PtrVal":
        return PtrVal(self.address, self.base, self.length, self.obj, self.perms, self.tag, False)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        flags = ("t" if self.tag else "-") + ("c" if self.checked else "-")
        return f"ptr[{flags}]@{self.address:#x} [{self.base:#x},{self.top:#x})"


#: The canonical null pointer.
NULL_PTR = PtrVal(address=0, base=0, length=0, obj=None, perms=0, tag=False)

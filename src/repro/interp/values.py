"""Runtime values of the abstract machine.

Two kinds of value flow through the interpreter: integers and pointers.
Keeping them distinct — and recording, on integers, where they came from —
is what lets the different memory models disagree about the pointer idioms:

* :class:`IntVal` is a fixed-width two's-complement integer.  When it was
  produced from a pointer (``ptrtoint``) it carries a :class:`Provenance`
  record; integer arithmetic marks the provenance *modified*, which is the
  fact models like Strict, HardBound and CHERIv2 key off.
* :class:`PtrVal` is the model-independent pointer representation: the
  current address, the bounds and permissions granted, a CHERI-style tag and
  the heap object it was derived from.  Individual memory models interpret
  (or ignore) these fields according to their own rules.

Both classes are allocated millions of times per simulated run, so they are
hand-written ``__slots__`` classes rather than (frozen) dataclasses: a frozen
dataclass routes every field assignment through ``object.__setattr__``, which
made ``IntVal``/``PtrVal`` construction the single largest allocation cost in
pointer-heavy workloads.  They remain immutable *by convention* — nothing in
the interpreter mutates a value after construction, which is what makes the
interning below (and the predecoded engine's unboxed register scheme, see
:mod:`repro.interp.predecode`) safe.

Hot scalar arithmetic avoids boxing entirely: the predecoded interpreter
keeps provenance-free scalars as raw Python ints and boxes them through
:func:`box_int` / :func:`intern_table` only at ABI boundaries (calls into
non-predecoded code, traps, shadow-table entries).
"""

from __future__ import annotations

from repro.common.bitops import sign_extend, truncate

#: precomputed masks / sign thresholds / moduli for 0..8-byte widths.
_MASKS = tuple((1 << (8 * i)) - 1 for i in range(9))
_SIGN_MIN = tuple(1 << (8 * i - 1) if i else 0 for i in range(9))
_MODULI = tuple(1 << (8 * i) for i in range(9))

#: public aliases used by the predecode compiler's inline masking.
MASKS = _MASKS
SIGN_MIN = _SIGN_MIN
MODULI = _MODULI


class Provenance:
    """Where an integer value came from, if it was derived from a pointer."""

    __slots__ = ("pointer", "modified")

    def __init__(self, pointer: "PtrVal", modified: bool = False) -> None:
        self.pointer = pointer
        #: True once integer arithmetic has been performed on the value.
        self.modified = modified

    def touched(self) -> "Provenance":
        return Provenance(self.pointer, True)

    def __eq__(self, other) -> bool:
        if type(other) is not Provenance:
            return NotImplemented
        return self.pointer == other.pointer and self.modified == other.modified

    def __hash__(self) -> int:
        return hash((self.pointer, self.modified))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Provenance(pointer={self.pointer!r}, modified={self.modified})"


class IntVal:
    """A fixed-width integer value (immutable by convention)."""

    __slots__ = ("value", "bytes", "signed", "provenance", "pointer_sized")

    def __init__(self, value: int, bytes: int = 8, signed: bool = True,
                 provenance: Provenance | None = None,
                 pointer_sized: bool = False) -> None:
        if 0 < bytes <= 8:
            value &= _MASKS[bytes]
            if signed and value >= _SIGN_MIN[bytes]:
                value -= _MODULI[bytes]
        else:
            value = truncate(value, bytes * 8)
            if signed:
                value = sign_extend(value, bytes * 8)
        self.value = value
        self.bytes = bytes
        self.signed = signed
        self.provenance = provenance
        #: True when the C type was intptr_t/intcap_t: capability ABIs
        #: represent these as capabilities, so they round-trip pointers
        #: losslessly.
        self.pointer_sized = pointer_sized

    @property
    def unsigned(self) -> int:
        value = self.value
        if value >= 0:
            return value
        width = self.bytes
        return value & (_MASKS[width] if width <= 8 else (1 << (width * 8)) - 1)

    @property
    def is_true(self) -> bool:
        return self.value != 0

    def with_value(self, value: int, *, provenance: Provenance | None = None) -> "IntVal":
        return IntVal(value, self.bytes, self.signed, provenance, self.pointer_sized)

    def converted(self, *, bytes: int, signed: bool, pointer_sized: bool = False) -> "IntVal":
        """Integer conversion; narrowing drops provenance information only if
        bits are actually lost (the WIDE idiom)."""
        provenance = self.provenance
        if bytes < self.bytes:
            provenance = provenance.touched() if provenance else None
        return IntVal(self.value, bytes, signed, provenance, pointer_sized)

    def __eq__(self, other) -> bool:
        if type(other) is not IntVal:
            return NotImplemented
        return (self.value == other.value and self.bytes == other.bytes
                and self.signed == other.signed
                and self.provenance == other.provenance
                and self.pointer_sized == other.pointer_sized)

    def __hash__(self) -> int:
        return hash((self.value, self.bytes, self.signed, self.pointer_sized))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"IntVal(value={self.value}, bytes={self.bytes}, signed={self.signed}, "
                f"provenance={self.provenance!r}, pointer_sized={self.pointer_sized})")

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"i{self.bytes * 8}:{self.value}"


_ADDRESS_MASK = (1 << 64) - 1

# Permission flag constants shared by every pointer.
PERM_READ = 1
PERM_WRITE = 2
PERM_ALL = PERM_READ | PERM_WRITE


class PtrVal:
    """A pointer value (immutable by convention).

    ``obj`` is the :class:`~repro.interp.heap.HeapObject` the pointer was
    derived from (None for NULL and for forged pointers), ``base``/``length``
    are the rights it grants, ``address`` is where it currently points, and
    ``tag`` records validity under capability models.  ``checked`` is used by
    the MPX model: a pointer whose bounds were lost fails *open*, i.e. it is
    dereferenceable but unchecked.
    """

    __slots__ = ("address", "base", "length", "obj", "perms", "tag", "checked")

    def __init__(self, address: int = 0, base: int = 0, length: int = 0,
                 obj: object | None = None, perms: int = PERM_ALL,
                 tag: bool = True, checked: bool = True) -> None:
        self.address = address
        self.base = base
        self.length = length
        self.obj = obj
        self.perms = perms
        self.tag = tag
        self.checked = checked

    @property
    def is_null(self) -> bool:
        return self.address == 0 and self.obj is None

    @property
    def top(self) -> int:
        return self.base + self.length

    @property
    def offset(self) -> int:
        """CHERI-style offset: the cursor relative to the base."""
        return self.address - self.base

    @property
    def in_bounds(self) -> bool:
        return self.base <= self.address < self.top or (self.address == self.top and self.length == 0)

    def moved_to(self, address: int) -> "PtrVal":
        return PtrVal(address & _ADDRESS_MASK, self.base, self.length, self.obj,
                      self.perms, self.tag, self.checked)

    def moved_by(self, delta: int) -> "PtrVal":
        # Pointer arithmetic wraps modulo 2**64, exactly like address
        # arithmetic on 64-bit hardware; this is what makes subtracting an
        # unsigned offset (e.g. ``p - offsetof(...)``) land on the right
        # address.
        return PtrVal((self.address + delta) & _ADDRESS_MASK, self.base, self.length,
                      self.obj, self.perms, self.tag, self.checked)

    def with_bounds(self, base: int, length: int) -> "PtrVal":
        return PtrVal(self.address, base, length, self.obj, self.perms, self.tag, self.checked)

    def with_perms(self, perms: int) -> "PtrVal":
        return PtrVal(self.address, self.base, self.length, self.obj, perms, self.tag, self.checked)

    def untagged(self) -> "PtrVal":
        return PtrVal(self.address, self.base, self.length, self.obj, self.perms, False, self.checked)

    def unchecked(self) -> "PtrVal":
        return PtrVal(self.address, self.base, self.length, self.obj, self.perms, self.tag, False)

    def __eq__(self, other) -> bool:
        if type(other) is not PtrVal:
            return NotImplemented
        return (self.address == other.address and self.base == other.base
                and self.length == other.length and self.obj is other.obj
                and self.perms == other.perms and self.tag == other.tag
                and self.checked == other.checked)

    def __hash__(self) -> int:
        # Like the frozen dataclass this replaced: hashable when every field
        # is (``obj`` is a HeapObject for object-backed pointers, which is
        # unhashable — so only NULL/forged pointers hash, as before).
        return hash((self.address, self.base, self.length, self.obj,
                     self.perms, self.tag, self.checked))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"PtrVal(address={self.address:#x}, base={self.base:#x}, "
                f"length={self.length}, obj={self.obj!r}, perms={self.perms}, "
                f"tag={self.tag}, checked={self.checked})")

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        flags = ("t" if self.tag else "-") + ("c" if self.checked else "-")
        return f"ptr[{flags}]@{self.address:#x} [{self.base:#x},{self.top:#x})"


#: The canonical null pointer.
NULL_PTR = PtrVal(address=0, base=0, length=0, obj=None, perms=0, tag=False)


# ---------------------------------------------------------------------------
# Interning
# ---------------------------------------------------------------------------
#
# Loads, arithmetic results and loop counters overwhelmingly fall in a small
# value range; sharing one IntVal per (value, width, signedness) removes the
# bulk of the interpreter's remaining boxing cost.  Values are immutable by
# convention, so sharing is safe.  Each table entry is exactly what the
# constructor would have produced for that *raw* value (including wrapping,
# e.g. ``IntVal(-5, 2, signed=False)``), so ``table[raw - INTERN_MIN]`` is a
# drop-in replacement for ``IntVal(raw, width, signed)``.

INTERN_MIN = -1024
INTERN_MAX = 8192

_intern_tables: dict[tuple[int, bool], tuple] = {}


def intern_table(width: int, signed: bool) -> tuple:
    """Shared IntVal instances for raw values in [INTERN_MIN, INTERN_MAX]."""
    key = (width, signed)
    table = _intern_tables.get(key)
    if table is None:
        table = tuple(IntVal(v, width, signed)
                      for v in range(INTERN_MIN, INTERN_MAX + 1))
        _intern_tables[key] = table
    return table


def box_int(raw: int, width: int, signed: bool) -> IntVal:
    """Box a raw (provenance-free) scalar, sharing interned instances."""
    if INTERN_MIN <= raw <= INTERN_MAX:
        return _intern_tables.get((width, signed), intern_table(width, signed))[raw - INTERN_MIN]
    return IntVal(raw, width, signed)


#: canonical boxed comparison results (``int`` in C is 4 bytes): shared by the
#: predecoded CMP handlers and the generated basic-block superinstructions so
#: every engine materialises the identical interned instances.
TRUE_I32 = intern_table(4, True)[1 - INTERN_MIN]
FALSE_I32 = intern_table(4, True)[0 - INTERN_MIN]

"""The C abstract-machine interpreter with pluggable memory models.

The paper evaluates interpretations of the C abstract machine by running
extracted idiom test cases under "a translator for C code into a simple
abstract machine interpreter ... [that] allows us to quickly modify the
abstract machine and run the test cases" (§5).  This package is that
interpreter.  It executes the typed IR produced by :mod:`repro.minic` over a
flat virtual address space, and delegates every pointer-related decision to a
:class:`~repro.interp.models.base.MemoryModel`:

* ``pdp11``     — the traditional x86/MIPS flat-memory view (pointers are integers),
* ``hardbound`` — compiler-propagated bounds that fail *closed*,
* ``mpx``       — Intel MPX-style bounds that fail *open*,
* ``relaxed``   — the paper's Relaxed interpreter (pointers reconstructed from
  integers by object lookup),
* ``strict``    — the paper's Strict interpreter (integers may carry pointers
  only if unmodified),
* ``cheri_v2``  — CHERI ISAv2 capabilities without an offset (monotonic bounds,
  no pointer subtraction, const enforced),
* ``cheri_v3``  — the paper's contribution: capabilities with a free-moving
  offset, checked at dereference.

The same machine doubles as the timing engine for the workload figures: every
memory access is fed through the evaluation platform's cache model, so the
only difference between a MIPS-ABI run and a capability-ABI run is the size
and alignment of pointers — exactly the architectural effect the paper
measures.
"""

from repro.interp.values import IntVal, PtrVal, Provenance
from repro.interp.heap import HeapObject, ObjectAllocator
from repro.interp.machine import AbstractMachine, ExecutionResult
from repro.interp.models import MODEL_REGISTRY, get_model, model_names
from repro.interp.models.base import MemoryModel

__all__ = [
    "IntVal",
    "PtrVal",
    "Provenance",
    "HeapObject",
    "ObjectAllocator",
    "AbstractMachine",
    "ExecutionResult",
    "MemoryModel",
    "MODEL_REGISTRY",
    "get_model",
    "model_names",
]

"""Range-indexed shadow table for stored-pointer metadata.

When the interpreter stores a pointer (or a pointer-sized integer carrying
provenance) to memory, the raw 64-bit address goes into
:class:`~repro.sim.memory.TaggedMemory` and the full runtime value is
remembered here, keyed by the store address.  Memory models then decide how a
later load reconciles the raw bytes with this metadata (tagged memory vs.
look-aside tables; see :mod:`repro.interp.models.base`).

The table used to be a plain ``dict``; every range operation — the garbage
collector tracing a heap object, the relocation sweep, ``memcpy`` moving
metadata — had to scan *all* entries (O(total shadow) per object/copy).
:class:`ShadowTable` keeps the flat ``entries`` dict for O(1) loads and
stores, plus a per-page index (``pages``: page index -> set of entry
addresses) so range queries cost O(pages touched + entries in range) instead.

Hot paths (the predecoded store handlers) intentionally reach into
``entries``/``pages`` directly and maintain both inline — see
``repro/interp/predecode.py`` and the generated bodies in
``repro/interp/hotgen.py``; the methods here serve the colder callers
(garbage collector, ``copy_memory``, tests) and keep dict-style
compatibility for existing introspection code.  Whether a model keeps
shadow entries at all — and whether data stores clear them — is the
``uses_shadow`` / ``clear_shadow_on_data_store`` policy documented per
model in ``docs/models.md``.
"""

from __future__ import annotations

#: entries are bucketed by 4 KiB page (matching TaggedMemory.PAGE_SIZE).
PAGE_SHIFT = 12


class ShadowTable:
    """Pointer-metadata table with a per-page range index."""

    __slots__ = ("entries", "pages")

    def __init__(self) -> None:
        #: address -> stored PtrVal / IntVal-with-provenance (source of truth).
        self.entries: dict[int, object] = {}
        #: page index -> set of entry addresses within that page.  Sets may
        #: linger empty after deletions; that only costs a skipped lookup.
        self.pages: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------

    def set(self, address: int, value: object) -> None:
        self.entries[address] = value
        page = address >> PAGE_SHIFT
        bucket = self.pages.get(page)
        if bucket is None:
            self.pages[page] = {address}
        else:
            bucket.add(address)

    def discard(self, address: int) -> None:
        if self.entries.pop(address, None) is not None:
            bucket = self.pages.get(address >> PAGE_SHIFT)
            if bucket is not None:
                bucket.discard(address)

    def pop(self, address: int, default: object = None) -> object:
        value = self.entries.pop(address, default)
        bucket = self.pages.get(address >> PAGE_SHIFT)
        if bucket is not None:
            bucket.discard(address)
        return value

    # ------------------------------------------------------------------
    # Range operations
    # ------------------------------------------------------------------

    def addresses_in_range(self, start: int, stop: int) -> list[int]:
        """Sorted entry addresses in [start, stop)."""
        if not self.entries or stop <= start:
            return []
        pages = self.pages
        out = []
        for page in range((start >> PAGE_SHIFT), ((stop - 1) >> PAGE_SHIFT) + 1):
            bucket = pages.get(page)
            if bucket:
                for address in bucket:
                    if start <= address < stop:
                        out.append(address)
        out.sort()
        return out

    def entries_in_range(self, start: int, stop: int) -> list[tuple[int, object]]:
        """Sorted (address, value) pairs for entries in [start, stop)."""
        entries = self.entries
        return [(address, entries[address])
                for address in self.addresses_in_range(start, stop)]

    def clear_range(self, start: int, stop: int) -> None:
        """Delete every entry in [start, stop)."""
        for address in self.addresses_in_range(start, stop):
            del self.entries[address]
            self.pages[address >> PAGE_SHIFT].discard(address)

    # ------------------------------------------------------------------
    # dict-style compatibility (cold paths, tests, debugging)
    # ------------------------------------------------------------------

    def __contains__(self, address: int) -> bool:
        return address in self.entries

    def __getitem__(self, address: int) -> object:
        return self.entries[address]

    def __setitem__(self, address: int, value: object) -> None:
        self.set(address, value)

    def __delitem__(self, address: int) -> None:
        del self.entries[address]
        bucket = self.pages.get(address >> PAGE_SHIFT)
        if bucket is not None:
            bucket.discard(address)

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def get(self, address: int, default: object = None) -> object:
        return self.entries.get(address, default)

    def items(self):
        return self.entries.items()

    def keys(self):
        return self.entries.keys()

    def values(self):
        return self.entries.values()

    def update(self, mapping) -> None:
        for address, value in (mapping.items() if hasattr(mapping, "items") else mapping):
            self.set(address, value)

    def check_index(self) -> bool:
        """Verify the page index covers exactly the entries (test helper)."""
        indexed = set()
        for page, bucket in self.pages.items():
            for address in bucket:
                if address >> PAGE_SHIFT != page:
                    return False
                indexed.add(address)
        return indexed == set(self.entries)

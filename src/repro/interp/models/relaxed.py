"""The Relaxed interpreter (paper §5.1).

"Relaxed interpreter allows pointers to be constructed from integer values as
long as the object is still valid" — the integer value of a pointer is its
address, and converting an integer back to a pointer looks the address up in
the live-object map and re-attaches that object's bounds.  This supports every
idiom except WIDE, at the cost that "best effort" translation can construct
valid-but-incorrect pointers (the weakness the paper contrasts with CHERI).
"""

from __future__ import annotations

from repro.interp.heap import ObjectAllocator
from repro.interp.models.base import MemoryModel
from repro.interp.values import IntVal, PtrVal


class RelaxedModel(MemoryModel):
    """Object-map reconstruction of pointers from integers."""

    name = "relaxed"
    label = "Relaxed interpreter (object lookup)"
    pointer_bytes = 8
    pointer_align = 8
    uses_shadow = False
    int_roundtrip_note = ""

    def _pointer_for_address(self, address: int, allocator: ObjectAllocator) -> PtrVal:
        if address == 0:
            return self.null_pointer()
        obj = allocator.find(address)
        if obj is None:
            # No live object contains this address: the reconstruction fails
            # and the result traps on use.
            return PtrVal(address=address, base=0, length=0, obj=None, perms=0, tag=False)
        return self.make_pointer(obj, address=address)

    def int_to_ptr(self, value: IntVal, allocator: ObjectAllocator) -> PtrVal:
        return self._pointer_for_address(value.unsigned, allocator)

    def load_pointer_without_metadata(self, raw_address: int, allocator: ObjectAllocator) -> PtrVal:
        return self._pointer_for_address(raw_address, allocator)

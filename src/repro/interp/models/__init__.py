"""Memory-model registry.

Each model is one interpretation of the C abstract machine's memory, in the
sense of Table 3 of the paper.  :func:`get_model` constructs a fresh model
instance by name; :data:`MODEL_REGISTRY` maps names to classes.
"""

from __future__ import annotations

from repro.interp.models.base import MemoryModel
from repro.interp.models.pdp11 import Pdp11Model
from repro.interp.models.hardbound import HardBoundModel
from repro.interp.models.mpx import MpxModel
from repro.interp.models.relaxed import RelaxedModel
from repro.interp.models.strict import StrictModel
from repro.interp.models.cheri_v2 import CheriV2Model
from repro.interp.models.cheri_v3 import CheriV3Model

MODEL_REGISTRY: dict[str, type[MemoryModel]] = {
    Pdp11Model.name: Pdp11Model,
    HardBoundModel.name: HardBoundModel,
    MpxModel.name: MpxModel,
    RelaxedModel.name: RelaxedModel,
    StrictModel.name: StrictModel,
    CheriV2Model.name: CheriV2Model,
    CheriV3Model.name: CheriV3Model,
}

#: The order in which the paper's Table 3 lists the models.
PAPER_MODEL_ORDER = (
    "pdp11",
    "hardbound",
    "mpx",
    "relaxed",
    "strict",
    "cheri_v2",
    "cheri_v3",
)


def model_names() -> tuple[str, ...]:
    """All registered model names in the paper's presentation order."""
    return PAPER_MODEL_ORDER


def get_model(name: str, **kwargs) -> MemoryModel:
    """Instantiate a memory model by name (e.g. ``"cheri_v3"``)."""
    try:
        cls = MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown memory model {name!r}; known models: {known}") from None
    return cls(**kwargs)


__all__ = [
    "MemoryModel",
    "Pdp11Model",
    "HardBoundModel",
    "MpxModel",
    "RelaxedModel",
    "StrictModel",
    "CheriV2Model",
    "CheriV3Model",
    "MODEL_REGISTRY",
    "PAPER_MODEL_ORDER",
    "model_names",
    "get_model",
]

"""The PDP-11 / x86 / MIPS memory model: pointers are integers.

This is the traditional interpretation the paper argues contemporary C
implementations have converged on: a flat address space, no bounds, no tags,
pointer arithmetic is integer arithmetic, and any integer can be turned back
into a usable pointer.  It supports every idiom in Table 1 except WIDE (which
loses address bits on any 64-bit platform) — and provides no memory safety.
"""

from __future__ import annotations

from repro.common.errors import MemorySafetyError
from repro.interp.heap import HeapObject, ObjectAllocator
from repro.interp.models.base import MemoryModel
from repro.interp.values import PERM_ALL, IntVal, PtrVal


class Pdp11Model(MemoryModel):
    """Flat, unchecked pointers (the x86/MIPS row of Table 3)."""

    name = "pdp11"
    label = "x86/MIPS/PDP-11 (flat, unchecked)"
    pointer_bytes = 8
    pointer_align = 8
    uses_shadow = False

    def make_pointer(self, obj: HeapObject, *, address: int | None = None, perms: int = PERM_ALL) -> PtrVal:
        # Bounds are recorded (they are free to carry around) but never checked.
        return PtrVal(
            address=obj.base if address is None else address,
            base=obj.base,
            length=obj.size,
            obj=obj,
            perms=perms,
            tag=True,
            checked=False,
        )

    def int_to_ptr(self, value: IntVal, allocator: ObjectAllocator) -> PtrVal:
        if value.unsigned == 0:
            return self.null_pointer()
        return PtrVal(address=value.unsigned, base=0, length=1 << 64, obj=None,
                      perms=PERM_ALL, tag=True, checked=False)

    def load_pointer_without_metadata(self, raw_address: int, allocator: ObjectAllocator) -> PtrVal:
        if raw_address == 0:
            return self.null_pointer()
        return PtrVal(address=raw_address, base=0, length=1 << 64, obj=None,
                      perms=PERM_ALL, tag=True, checked=False)

    def check_access(self, ptr: PtrVal, size: int, *, is_write: bool) -> int:
        # The only thing a flat model catches is the classic null-page fault.
        if ptr.address < 4096:
            self.traps += 1
            raise MemorySafetyError(
                f"segmentation fault: access to {ptr.address:#x}", address=ptr.address,
                cause="segfault",
            )
        return ptr.address

"""The Strict interpreter (paper §5.1).

"Strict interpreter allows pointers to be reconstructed from integers if (and
only if) they are not modified in their integer representation."  This is the
paper's preferred reading of the C standard short of full capability
hardware: pointer provenance must be preserved exactly; any integer
arithmetic on a pointer-derived value (the IA and MASK idioms) invalidates
it.  The base class already implements exactly this policy, so the class body
only sets metadata — which is itself a result: Strict is the natural
"default" reading of the standard.
"""

from __future__ import annotations

from repro.interp.models.base import MemoryModel


class StrictModel(MemoryModel):
    """Provenance-preserving, arithmetic-invalidating pointers."""

    name = "strict"
    label = "Strict interpreter (unmodified provenance only)"
    pointer_bytes = 8
    pointer_align = 8
    uses_shadow = True
    clear_shadow_on_data_store = True
    int_roundtrip_note = "(yes)"

"""The CHERIv3 model — the paper's contribution (§4.1, rightmost Table 3 column).

CHERIv3 merges the capability model with fat-pointer research: a capability is
``(base, length, offset, permissions)``, where the *offset* is the C pointer
value relative to the base.  The bounds never move; the offset moves freely;
checks happen at dereference.  That single change makes the SUB, CONTAINER,
II, IA and MASK idioms all expressible while keeping the capability
guarantees (unforgeability, monotonic rights):

* arithmetic on ``intcap_t`` values "performs arithmetic on these using the
  offset, and so does permit arbitrary arithmetic";
* ``const`` becomes advisory again; the hardware-enforced read-only view is
  provided by the new ``__input`` qualifier instead.
"""

from __future__ import annotations

from repro.interp.heap import ObjectAllocator
from repro.interp.models.base import MemoryModel
from repro.interp.values import IntVal, PtrVal


class CheriV3Model(MemoryModel):
    """Capabilities with a free-moving offset (hardware fat pointers)."""

    name = "cheri_v3"
    label = "CHERIv3 (capabilities with offset)"
    enforces_const = False
    capability_qualifiers = True
    uses_shadow = True
    clear_shadow_on_data_store = True  # tagged memory
    int_roundtrip_note = "(yes)"

    def __init__(self, *, capability_bytes: int = 32) -> None:
        super().__init__()
        self.pointer_bytes = capability_bytes
        self.pointer_align = capability_bytes

    def int_to_ptr(self, value: IntVal, allocator: ObjectAllocator) -> PtrVal:
        if value.unsigned == 0:
            return self.null_pointer()
        provenance = value.provenance
        if provenance is None:
            # A plain integer with no capability provenance can never become a
            # valid capability (unforgeability).
            return PtrVal(address=value.unsigned, base=0, length=0, obj=None, perms=0, tag=False)
        if value.pointer_sized or not provenance.modified:
            # intcap_t arithmetic adjusts the offset of the underlying
            # capability; the result is valid as long as it is brought back
            # within bounds before being dereferenced.
            return provenance.pointer.moved_to(value.unsigned)
        return PtrVal(address=value.unsigned, base=0, length=0, obj=None, perms=0, tag=False)

"""The CHERI ISAv2 model (paper §4, "CHERIv2" column of Table 3).

CHERIv2 capabilities are ``(base, length, permissions)`` with no offset: the
pointer *is* the base.  The consequences the paper documents — and which this
model reproduces — are:

* pointer addition is a monotonic ``CIncBase``: the accessible region shrinks
  from below, and any arithmetic that would move the base backwards or past
  the top makes the capability invalid, so the SUB, CONTAINER and II idioms
  all break;
* pointer subtraction simply is not expressible;
* ``const`` is enforced by removing the store permission, which "broke a
  large amount of code" (the DECONST row is "no");
* pointers survive integer round trips only through ``intcap_t`` and only if
  the integer is not modified.
"""

from __future__ import annotations

from repro.common.errors import MemorySafetyError
from repro.interp.heap import ObjectAllocator
from repro.interp.models.base import MemoryModel
from repro.interp.values import IntVal, PtrVal


class CheriV2Model(MemoryModel):
    """Capabilities without an offset: monotonic bounds, no subtraction."""

    name = "cheri_v2"
    label = "CHERIv2 (capabilities, no offset)"
    enforces_const = True
    capability_qualifiers = True
    uses_shadow = True
    clear_shadow_on_data_store = True  # tagged memory
    int_roundtrip_note = "(yes)"

    def __init__(self, *, capability_bytes: int = 32) -> None:
        super().__init__()
        self.pointer_bytes = capability_bytes
        self.pointer_align = capability_bytes

    def ptr_offset(self, ptr: PtrVal, delta_bytes: int) -> PtrVal:
        """CIncBase semantics: the base moves up and the region shrinks.

        Negative deltas and deltas that run past the end of the region are
        not representable and invalidate the capability.
        """
        if not ptr.tag:
            return ptr.moved_by(delta_bytes)
        remaining = ptr.top - ptr.address
        if delta_bytes < 0 or delta_bytes > remaining:
            return ptr.moved_by(delta_bytes).untagged()
        moved = ptr.moved_by(delta_bytes)
        return moved.with_bounds(moved.address, ptr.top - moved.address)

    def ptr_diff(self, a: PtrVal, b: PtrVal, element_size: int) -> int:
        self.traps += 1
        raise MemorySafetyError(
            "pointer subtraction is not supported by the CHERIv2 capability model",
            cause="ptrdiff",
        )

    def int_to_ptr(self, value: IntVal, allocator: ObjectAllocator) -> PtrVal:
        if value.unsigned == 0:
            return self.null_pointer()
        provenance = value.provenance
        if value.pointer_sized and provenance is not None and not provenance.modified:
            # intcap_t round trip: the capability was carried alongside the
            # integer value and is returned untouched.
            return provenance.pointer
        return PtrVal(address=value.unsigned, base=0, length=0, obj=None, perms=0, tag=False)

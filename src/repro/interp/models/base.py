"""The memory-model interface and its default (bounds-checking) behaviour.

A :class:`MemoryModel` answers every pointer-related question the abstract
machine asks:

* how big is a pointer in memory (``pointer_bytes``), which drives struct
  layout and cache behaviour;
* how pointers are created, moved, compared, subtracted;
* what happens when a pointer is cast to an integer and back;
* what checks run when a pointer is dereferenced;
* how pointers survive (or do not survive) being stored to memory.

The base class implements a conventional fat-pointer/bounds-checking policy;
the concrete models override only the points where the paper's Table 3 says
they differ.  Keeping the differences small and explicit is the point: the
table's "yes/no" pattern should be traceable to individual overridden
methods.
"""

from __future__ import annotations

from repro.common.errors import BoundsViolation, MemorySafetyError, PermissionViolation, TagViolation
from repro.interp.heap import HeapObject, ObjectAllocator
from repro.interp.values import (
    NULL_PTR,
    PERM_ALL,
    PERM_READ,
    PERM_WRITE,
    IntVal,
    Provenance,
    PtrVal,
)


class MemoryModel:
    """Base class: a spatially safe fat-pointer interpretation of C."""

    #: registry name; overridden by every subclass.
    name = "base"
    #: human-readable label used in benchmark tables.
    label = "Bounds-checked base model"
    #: in-memory pointer representation size / alignment.
    pointer_bytes = 8
    pointer_align = 8
    #: does the model enforce ``const`` at run time (CHERIv2 did; §4.1)?
    enforces_const = False
    #: does the model honour the ``__input`` / ``__output`` qualifiers?
    capability_qualifiers = False
    #: does taking the address of a struct member narrow bounds to the member?
    narrow_field_bounds = False
    #: does the model keep out-of-band metadata for pointers stored to memory
    #: (tags or a look-aside table)?  PDP-11 and Relaxed reconstruct pointers
    #: purely from their in-memory integer value and set this to False.
    uses_shadow = True
    #: is a stored pointer's metadata invalidated by overlapping data stores
    #: (tagged-memory behaviour)?  False models a separate look-aside table.
    clear_shadow_on_data_store = True
    #: short annotation used when printing Table 3 ("(yes)" caveats).
    int_roundtrip_note = ""

    def __init__(self) -> None:
        self.traps = 0

    # ------------------------------------------------------------------
    # Pointer creation
    # ------------------------------------------------------------------

    def make_pointer(self, obj: HeapObject, *, address: int | None = None, perms: int = PERM_ALL) -> PtrVal:
        """A pointer to (part of) a live object, carrying the object's bounds."""
        return PtrVal(
            address=obj.base if address is None else address,
            base=obj.base,
            length=obj.size,
            obj=obj,
            perms=perms,
            tag=True,
        )

    def null_pointer(self) -> PtrVal:
        return NULL_PTR

    # ------------------------------------------------------------------
    # Pointer arithmetic
    # ------------------------------------------------------------------

    def ptr_offset(self, ptr: PtrVal, delta_bytes: int) -> PtrVal:
        """Move a pointer by a byte delta (gep / ptradd).

        The default policy is the CHERIv3/fat-pointer one: the cursor moves
        freely (invalid intermediates allowed); bounds are enforced at
        dereference time.
        """
        return ptr.moved_by(delta_bytes)

    def field_address(self, ptr: PtrVal, offset: int, field_size: int) -> PtrVal:
        """Address of a struct member.  MPX narrows bounds here; others do not.

        Narrowing is an *intersection* with the existing bounds (as MPX's
        ``__bnd_narrow`` is): a pointer that has already wandered outside its
        bounds cannot regain access by naming a field.
        """
        moved = self.ptr_offset(ptr, offset)
        if self.narrow_field_bounds and moved.tag and moved.checked:
            base = max(moved.address, moved.base)
            top = min(moved.address + field_size, moved.top)
            return moved.with_bounds(base, max(top - base, 0))
        return moved

    def ptr_diff(self, a: PtrVal, b: PtrVal, element_size: int) -> int:
        """Pointer subtraction (the SUB idiom); supported by default."""
        return (a.address - b.address) // max(element_size, 1)

    def ptr_compare(self, a: PtrVal, b: PtrVal, op: str) -> bool:
        order = {"==": a.address == b.address, "!=": a.address != b.address,
                 "<": a.address < b.address, "<=": a.address <= b.address,
                 ">": a.address > b.address, ">=": a.address >= b.address}
        return order[op]

    # ------------------------------------------------------------------
    # Integer <-> pointer conversions
    # ------------------------------------------------------------------

    def ptr_to_int(self, ptr: PtrVal, *, bytes: int, signed: bool, pointer_sized: bool) -> IntVal:
        """ptrtoint: the integer value is the address; provenance is recorded."""
        provenance = None if ptr.is_null else Provenance(pointer=ptr)
        return IntVal(value=ptr.address, bytes=bytes, signed=signed,
                      provenance=provenance, pointer_sized=pointer_sized)

    def int_to_ptr(self, value: IntVal, allocator: ObjectAllocator) -> PtrVal:
        """inttoptr: the default model requires intact, unmodified provenance."""
        if value.unsigned == 0:
            return self.null_pointer()
        provenance = value.provenance
        if provenance is not None and not provenance.modified:
            return provenance.pointer.moved_to(value.unsigned)
        return PtrVal(address=value.unsigned, base=0, length=0, obj=None, perms=0, tag=False)

    def propagate_provenance(self, left: IntVal, right: IntVal, result: int) -> Provenance | None:
        """Provenance of the result of integer arithmetic (the IA/MASK idioms).

        The default marks derived values as *modified*: whether a later
        ``inttoptr`` accepts a modified provenance is the per-model decision.
        """
        source = left.provenance or right.provenance
        if source is None:
            return None
        return source.touched()

    # ------------------------------------------------------------------
    # Qualifier handling
    # ------------------------------------------------------------------

    def apply_const(self, ptr: PtrVal) -> PtrVal:
        """Called when a pointer is converted to a pointer-to-const type."""
        if self.enforces_const and ptr.tag:
            return ptr.with_perms(ptr.perms & ~PERM_WRITE)
        return ptr

    def apply_input_qualifier(self, ptr: PtrVal) -> PtrVal:
        """``__input``: hardware-enforced read-only view (paper §4.1)."""
        if self.capability_qualifiers and ptr.tag:
            return ptr.with_perms(ptr.perms & ~PERM_WRITE)
        return ptr

    def apply_output_qualifier(self, ptr: PtrVal) -> PtrVal:
        """``__output``: hardware-enforced write-only view (paper §4.1)."""
        if self.capability_qualifiers and ptr.tag:
            return ptr.with_perms(ptr.perms & ~PERM_READ)
        return ptr

    def deconst(self, ptr: PtrVal) -> PtrVal:
        """Casting away const never *restores* rights (monotonicity)."""
        return ptr

    # ------------------------------------------------------------------
    # Access checking
    # ------------------------------------------------------------------

    def check_access(self, ptr: PtrVal, size: int, *, is_write: bool) -> int:
        """Validate a dereference; return the effective address or raise."""
        address = ptr.address
        obj = ptr.obj
        if address == 0 and obj is None:
            raise MemorySafetyError("dereference of a null pointer", address=0, cause="null")
        if not ptr.tag:
            self.traps += 1
            raise TagViolation(f"dereference of an invalid pointer at {address:#x}",
                               address=address)
        if not ptr.checked:
            return address
        if not ptr.perms & (PERM_WRITE if is_write else PERM_READ):
            self.traps += 1
            kind = "write" if is_write else "read"
            raise PermissionViolation(f"{kind} through a pointer lacking permission at {address:#x}",
                                      address=address)
        if obj is not None and getattr(obj, "freed", False):
            self.traps += 1
            raise MemorySafetyError(f"use of {obj} after its lifetime ended", address=address,
                                    cause="uaf")
        base = ptr.base
        if not (base <= address and address + size <= base + ptr.length):
            self.traps += 1
            raise BoundsViolation(
                f"access of {size} bytes at {address:#x} outside [{base:#x}, {ptr.top:#x})",
                address=address,
            )
        return address

    # ------------------------------------------------------------------
    # Pointers in memory
    # ------------------------------------------------------------------

    def pointer_survives_data_overwrite(self) -> bool:
        """Whether stored-pointer metadata survives a plain data overwrite."""
        return not self.clear_shadow_on_data_store

    def load_pointer_without_metadata(self, raw_address: int, allocator: ObjectAllocator) -> PtrVal:
        """Reconstruct a pointer loaded from memory with no shadow entry.

        The default is the fail-closed answer: the raw address alone does not
        authorise access.
        """
        if raw_address == 0:
            return self.null_pointer()
        return PtrVal(address=raw_address, base=0, length=0, obj=None, perms=0, tag=False)

    def reconcile_loaded_pointer(self, raw_address: int, stored: PtrVal, allocator: ObjectAllocator) -> PtrVal:
        """Combine the raw bytes of a pointer with its shadow-table entry.

        Called when a pointer is loaded and a shadow entry exists for the
        location.  ``raw_address`` is what the data bytes say; ``stored`` is
        the metadata remembered when a pointer was last stored there.  The
        default trusts the metadata when the address still matches and fails
        closed otherwise.
        """
        if raw_address == stored.address:
            return stored
        return self.load_pointer_without_metadata(raw_address, allocator)

    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Metadata used by reports and benchmark output."""
        return {
            "name": self.name,
            "label": self.label,
            "pointer_bytes": self.pointer_bytes,
            "enforces_const": self.enforces_const,
            "narrow_field_bounds": self.narrow_field_bounds,
            "tagged_memory": self.clear_shadow_on_data_store,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name}>"

"""The HardBound model (Devietti et al., ASPLOS 2008; paper §5.1 and §6).

HardBound associates bounds with pointers via a compiler/hardware-maintained
table keyed by the *location* the pointer is stored at.  Two properties
matter for Table 3:

* it **fails closed**: when bounds cannot be tracked (a pointer laundered
  through integer arithmetic, or a pointer value overwritten as data), the
  access is refused rather than allowed unchecked;
* the look-aside table is separate from the data, so a data overwrite of a
  stored pointer leaves stale bounds behind — HardBound then "will assume the
  old bounds ... and so will fail closed".
"""

from __future__ import annotations

from repro.interp.heap import ObjectAllocator
from repro.interp.models.base import MemoryModel
from repro.interp.values import PtrVal


class HardBoundModel(MemoryModel):
    """Fail-closed, table-based bounds checking."""

    name = "hardbound"
    label = "HardBound (fail closed)"
    pointer_bytes = 8
    pointer_align = 8
    uses_shadow = True
    #: the bounds table is a separate structure: data stores do NOT clear it.
    clear_shadow_on_data_store = False
    int_roundtrip_note = "(yes)"

    def reconcile_loaded_pointer(self, raw_address: int, stored: PtrVal, allocator: ObjectAllocator) -> PtrVal:
        # The loaded pointer takes the raw address from memory but keeps the
        # *old* bounds from the table, even if they no longer match: a
        # mismatched access then fails its bounds check (fail closed).
        return stored.moved_to(raw_address)

"""The Intel MPX model (paper §5.1 and §6).

MPX also keeps bounds in look-aside tables keyed by the pointer's storage
location, but makes the opposite compatibility trade-off to HardBound:

* it **fails open**: "If a pointer is modified in such a way that the MPX
  extensions are not updated, then the value will fail its check against the
  copy of the pointer in the look-aside table ... If this occurs, then the
  bounds checks succeed unconditionally";
* the compiler narrows bounds when it takes the address of a struct member,
  which is why MPX fails the CONTAINER idiom ("the compiler associated bounds
  with the inner pointer and so hit a bounds check").
"""

from __future__ import annotations

from repro.interp.heap import ObjectAllocator
from repro.interp.models.base import MemoryModel
from repro.interp.values import PERM_ALL, IntVal, PtrVal


class MpxModel(MemoryModel):
    """Fail-open, table-based bounds checking with field narrowing."""

    name = "mpx"
    label = "Intel MPX (fail open)"
    pointer_bytes = 8
    pointer_align = 8
    uses_shadow = True
    clear_shadow_on_data_store = False
    narrow_field_bounds = True
    int_roundtrip_note = "(yes)"

    def _unchecked(self, address: int) -> PtrVal:
        return PtrVal(address=address, base=0, length=1 << 64, obj=None,
                      perms=PERM_ALL, tag=True, checked=False)

    def int_to_ptr(self, value: IntVal, allocator: ObjectAllocator) -> PtrVal:
        if value.unsigned == 0:
            return self.null_pointer()
        provenance = value.provenance
        if provenance is not None and not provenance.modified:
            return provenance.pointer.moved_to(value.unsigned)
        # Bounds could not be tracked: fail open (checks pass unconditionally).
        return self._unchecked(value.unsigned)

    def load_pointer_without_metadata(self, raw_address: int, allocator: ObjectAllocator) -> PtrVal:
        if raw_address == 0:
            return self.null_pointer()
        return self._unchecked(raw_address)

    def reconcile_loaded_pointer(self, raw_address: int, stored: PtrVal, allocator: ObjectAllocator) -> PtrVal:
        if raw_address == stored.address:
            return stored
        # The value in memory no longer matches the bounds-table entry: the
        # check against the table fails, and MPX then skips bounds checking.
        return self._unchecked(raw_address)

"""The abstract-machine interpreter.

:class:`AbstractMachine` executes a mini-C IR :class:`~repro.minic.ir.Module`
over a flat 64-bit address space, delegating every pointer decision to the
configured :class:`~repro.interp.models.base.MemoryModel` and feeding every
data access through the evaluation platform's cache model so that runs are
comparable in *simulated cycles*.

Key mechanisms:

* **Objects and addresses.**  Globals, string literals, heap allocations and
  stack slots are all :class:`~repro.interp.heap.HeapObject` allocations; the
  bytes live in a sparse :class:`~repro.sim.memory.TaggedMemory`.
* **Pointers in memory.**  When a pointer (or a pointer-sized integer that
  carries provenance) is stored, the raw 64-bit address is written to memory
  and the full runtime value is remembered in a *shadow table* keyed by the
  store address.  Whether that shadow survives data overwrites (tagged
  memory) or lives in a separate look-aside table (HardBound/MPX), and how a
  load reconciles the raw bytes with the shadow entry, is the memory model's
  decision — this is where the INT/IA/MASK rows of Table 3 come from.
* **Timing.**  Every instruction costs one cycle (calls and branches a little
  more) and every memory access adds the cache hierarchy's latency.  The only
  difference between ABIs is the size and alignment of pointers, which is the
  paper's architectural story for Figures 1–4.
* **Dispatch.**  Function bodies are predecoded once per machine into
  per-instruction closures plus basic-block superinstructions
  (:mod:`repro.interp.predecode`) and executed by a threaded-dispatch loop
  over pooled call frames; ``tests/test_metrics_golden.py`` and
  ``tests/test_superinstructions.py`` pin that this is observationally
  identical to naive instruction-at-a-time interpretation.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.common.config import MachineConfig
from repro.common.errors import (
    InterpreterError,
    MemorySafetyError,
    ReproError,
    UndefinedBehaviorError,
)
from repro.common.rng import DeterministicRng
from repro.interp.heap import ObjectAllocator
from repro.interp.intrinsics import ExitProgram
from repro.interp.models import get_model
from repro.interp.models.base import MemoryModel
from repro.interp.models.pdp11 import Pdp11Model
from repro.interp.predecode import HOT_CALL_THRESHOLD, CompiledFunction, compile_function
from repro.interp.shadow import ShadowTable
from repro.interp.values import IntVal, Provenance, PtrVal
from repro.minic.ir import Function, Module
from repro.minic.typesys import CType, IntType, PointerType, Qualifiers
from repro.sim.cache import MemoryHierarchy
from repro.sim.memory import TaggedMemory

#: size of the flat virtual address space backing the interpreter.
_ADDRESS_SPACE = 1 << 40

# Interpreted calls recurse through a handful of Python frames each; deep
# (but bounded) workload recursion such as the Olden tree kernels needs more
# headroom than CPython's default limit provides.
sys.setrecursionlimit(max(sys.getrecursionlimit(), 20_000))


@dataclass
class ExecutionResult:
    """Outcome of running a program on the abstract machine."""

    exit_code: int | None = None
    output: bytes = b""
    trap: Exception | None = None
    instructions: int = 0
    cycles: int = 0
    memory_accesses: int = 0
    allocations: int = 0
    allocated_bytes: int = 0
    checkpoints: list[int] = field(default_factory=list)
    model_name: str = ""
    #: superinstruction handlers that raised an internal (non-trap) error and
    #: were transparently replaced by their single-step equivalents — see
    #: AbstractMachine._execute.  Not an architectural observable: two runs
    #: that differ only in fallbacks produce identical traps/outputs/metrics.
    engine_fallbacks: int = 0

    @property
    def trapped(self) -> bool:
        return self.trap is not None

    @property
    def ok(self) -> bool:
        """True when the program ran to completion and returned zero."""
        return not self.trapped and self.exit_code == 0

    def output_text(self) -> str:
        return self.output.decode("latin-1")


def scrub_trap(exc: BaseException | None) -> None:
    """Drop every traceback reachable from a surfaced trap.

    A trap raised with ``raise ... from None`` (or while another exception
    was being handled) still carries the original exception in
    ``__context__`` — and *that* exception's traceback retains every
    interpreter frame it unwound through, each of which references handlers
    and therefore the whole machine graph.  Clearing only
    ``exc.__traceback__`` (the PR 5 fix) leaves the chained frames alive, so
    this walks ``__cause__``/``__context__`` and clears them all.  The chain
    links themselves are kept: the oracle classifies on the trap's type,
    message and structured cause.
    """
    stack = [exc]
    seen: set[int] = set()
    while stack:
        err = stack.pop()
        if err is None or id(err) in seen:
            continue
        seen.add(id(err))
        err.__traceback__ = None
        stack.append(err.__cause__)
        stack.append(err.__context__)


class AbstractMachine:
    """Executes IR modules under a pluggable memory model."""

    __slots__ = ("module", "model", "config", "ctx", "memory", "allocator",
                 "hierarchy", "shadow", "globals", "output", "checkpoints",
                 "rng", "instructions", "cycles", "memory_accesses",
                 "max_instructions", "collect_timing", "shared_blocks",
                 "lazy_binding", "_call_depth", "_code_cache", "_ptr_load_memo",
                 "_clear_shadow", "block_profile", "_engine_fault",
                 "engine_faults")

    def __init__(
        self,
        module: Module,
        model: MemoryModel | str = "pdp11",
        *,
        config: MachineConfig | None = None,
        max_instructions: int = 50_000_000,
        collect_timing: bool = True,
        shared_blocks: bool = False,
        lazy_binding: bool = False,
    ) -> None:
        self.module = module
        self.model = get_model(model) if isinstance(model, str) else model
        self.config = config or MachineConfig()
        self.ctx = module.context
        if self.ctx is None:
            raise InterpreterError("module has no type context")
        if self.ctx.pointer_bytes != self.model.pointer_bytes:
            raise InterpreterError(
                f"module compiled for {self.ctx.pointer_bytes}-byte pointers but model "
                f"{self.model.name!r} uses {self.model.pointer_bytes}-byte pointers; "
                "compile with pointer_bytes=model.pointer_bytes"
            )
        self.memory = TaggedMemory(_ADDRESS_SPACE)
        self.allocator = ObjectAllocator()
        self.hierarchy = MemoryHierarchy(self.config.timing)
        self.shadow = ShadowTable()
        self.globals: dict[str, PtrVal] = {}
        self.output = bytearray()
        self.checkpoints: list[int] = []
        self.rng = DeterministicRng(12345)
        self.instructions = 0
        self.cycles = 0
        self.memory_accesses = 0
        self.max_instructions = max_instructions
        self.collect_timing = collect_timing
        #: superinstruction flavour: False compiles model-specialized block
        #: source per machine (fastest execution — the workload default);
        #: True binds the model-independent block plans cached process-wide
        #: on the predecode artifact (fastest compilation — what the
        #: differential runner uses for its 7-model replay).  Observables are
        #: identical either way (tests/test_predecode_cache.py).
        self.shared_blocks = shared_blocks
        #: defer per-pc handler binding until a pc first executes (requires
        #: shared_blocks; see CompiledFunction.materialize).  Observationally
        #: invisible — dispatch charges before the thunk runs — but binding
        #: cost becomes proportional to the pcs actually reached, which is
        #: what makes the lockstep sweep engine pay compile cost ~once per
        #: reached pc instead of once per (pc × lane).
        self.lazy_binding = lazy_binding
        self._call_depth = 0
        #: predecoded per-function code, keyed by the function's identity.
        self._code_cache: dict[int, CompiledFunction] = {}
        #: raw address -> PtrVal for models whose metadata-free pointer load
        #: is a pure function of the address (see predecode._PURE_PTR_LOADERS).
        self._ptr_load_memo: dict[int, PtrVal] = {}
        self._clear_shadow = self.model.uses_shadow and self.model.clear_shadow_on_data_store
        #: set to a dict *before the first run* to record per-superinstruction
        #: execution counts (see scripts/profile_interp.py --blocks).
        self.block_profile: dict | None = None
        #: pending injected engine fault: an exception factory installed by
        #: :meth:`arm_engine_fault`, consumed by the next executed function
        #: that carries a superinstruction (fault-injection harness only).
        self._engine_fault = None
        #: (function, pc, exception type) for every superinstruction that was
        #: demoted to single-step dispatch after raising an internal error.
        self.engine_faults: list[tuple[str, int, str]] = []
        self._setup_globals()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _setup_globals(self) -> None:
        for name, var in self.module.globals.items():
            size = var.ctype.size(self.ctx)
            alignment = max(var.ctype.alignment(self.ctx), 8)
            if var.is_string:
                obj = self.allocator.allocate_string(size, name)
            else:
                obj = self.allocator.allocate_global(size, name, alignment=alignment)
            if var.init_bytes:
                self.memory.write_bytes(obj.base, var.init_bytes)
            self.globals[name] = self.model.make_pointer(obj)

    # ------------------------------------------------------------------
    # Helpers used by intrinsics
    # ------------------------------------------------------------------

    def emit_output(self, data: bytes) -> None:
        self.output.extend(data)

    def reseed(self, seed: int) -> None:
        self.rng = DeterministicRng(seed or 1)

    def heap_allocate(self, size: int) -> PtrVal:
        obj = self.allocator.allocate_heap(size, alignment=max(16, self.model.pointer_align))
        return self.model.make_pointer(obj)

    def heap_free(self, pointer: PtrVal) -> None:
        obj = pointer.obj or self.allocator.find(pointer.address)
        if obj is None or obj.kind != "heap":
            raise MemorySafetyError(f"free() of a non-heap pointer at {pointer.address:#x}",
                                    address=pointer.address, cause="badfree")
        self.allocator.free(obj)

    def read_checked_bytes(self, pointer: PtrVal, length: int) -> bytes:
        if length == 0:
            return b""
        address = self.model.check_access(pointer, length, is_write=False)
        self._touch_memory(address, length, is_write=False)
        return self.memory.read_bytes(address, length)

    def write_checked_bytes(self, pointer: PtrVal, data: bytes) -> None:
        if not data:
            return
        address = self.model.check_access(pointer, len(data), is_write=True)
        self._touch_memory(address, len(data), is_write=True)
        self._clear_shadow_range(address, len(data))
        self.memory.write_bytes(address, data)

    def read_cstring(self, pointer: PtrVal, *, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string (bounds-checked, page-batched).

        Semantically every byte is individually checked and fed through the
        cache model — that per-byte accounting is part of the simulated cost
        of C string functions.  The fast path below batches the Python-level
        work: it derives how many bytes the per-byte check is guaranteed to
        admit, scans whole pages for the terminator, and charges the accesses
        through :meth:`MemoryHierarchy.access_run` (identical counters).  Any
        input the batch cannot prove safe — unknown check policies, bounds
        running out, address-space edges — falls back to the original
        byte-at-a-time loop, so traps are bit-identical.
        """
        model = self.model
        model_check = type(model).check_access
        if model_check is MemoryModel.check_access:
            # First byte through the real check: identical trap for null /
            # untagged / permission / freed / out-of-bounds starts.
            address = model.check_access(pointer, 1, is_write=False)
            if pointer.checked:
                admitted = pointer.base + pointer.length - address
            else:
                admitted = limit
        elif model_check is Pdp11Model.check_access:
            address = model.check_access(pointer, 1, is_write=False)
            admitted = limit
        else:
            return self._read_cstring_bytewise(pointer, limit)
        admitted = min(admitted, limit, self.memory.size - address)

        memory = self.memory
        pages = memory._pages
        page_size = memory.PAGE_SIZE
        out = bytearray()
        scanned = 0
        found = -1
        while scanned < admitted:
            cursor = address + scanned
            page_index, offset = divmod(cursor, page_size)
            chunk = min(admitted - scanned, page_size - offset)
            page = pages.get(page_index)
            if page is None:
                found = scanned  # untouched pages read as zero: NUL here
                break
            nul = page.find(0, offset, offset + chunk)
            if nul >= 0:
                out += page[offset:nul]
                found = scanned + (nul - offset)
                break
            out += page[offset:offset + chunk]
            scanned += chunk
        consumed = found + 1 if found >= 0 else scanned
        self.memory_accesses += consumed
        if self.collect_timing and consumed:
            self.cycles += self.hierarchy.access_run(address, consumed)
        if found >= 0:
            return bytes(out)
        if consumed >= limit:
            raise InterpreterError("unterminated string (exceeded 1 MiB)")
        # The admitted range ran out without a terminator: replay from the
        # exact failing byte through the byte-wise loop so the trap (or any
        # address-space edge) is reproduced identically.
        cursor = model.ptr_offset(pointer, consumed)
        return bytes(out) + self._read_cstring_bytewise(cursor, limit - consumed)

    def _read_cstring_bytewise(self, pointer: PtrVal, limit: int) -> bytes:
        """The original per-byte loop (slow path and trap replay)."""
        out = bytearray()
        append = out.append
        cursor = pointer
        check_access = self.model.check_access
        ptr_offset = self.model.ptr_offset
        read_small = self.memory.read_small
        hierarchy_access = self.hierarchy.access
        collect_timing = self.collect_timing
        for _ in range(limit):
            address = check_access(cursor, 1, is_write=False)
            self.memory_accesses += 1
            if collect_timing:
                self.cycles += hierarchy_access(address, 1, is_write=False)
            byte = read_small(address, 1, False)
            if byte == 0:
                return bytes(out)
            append(byte)
            cursor = ptr_offset(cursor, 1)
        raise InterpreterError("unterminated string (exceeded 1 MiB)")

    def copy_memory(self, dst: PtrVal, src: PtrVal, length: int) -> None:
        """memcpy: copies bytes *and* pointer metadata (tag-preserving copy)."""
        if length == 0:
            return
        src_address = self.model.check_access(src, length, is_write=False)
        dst_address = self.model.check_access(dst, length, is_write=True)
        self._touch_memory(src_address, length, is_write=False)
        self._touch_memory(dst_address, length, is_write=True)
        data = self.memory.read_bytes(src_address, length)
        self._clear_shadow_range(dst_address, length)
        self.memory.write_bytes(dst_address, data)
        if self.model.uses_shadow and self.shadow.entries:
            # The page index makes both sides O(entries in range) regardless
            # of entry alignment — no aligned-slot assumption, no fall-back
            # full-table scan.
            shadow = self.shadow
            delta = dst_address - src_address
            moved = shadow.entries_in_range(src_address, src_address + length)
            moved_keys = {key + delta for key, _ in moved}
            # Destination slots the copy overwrote but the move does not
            # repopulate would otherwise keep stale metadata (the look-aside
            # models do not clear shadow entries on data stores).  Deliberate
            # tightening over the seed interpreter, which left them behind.
            for key in shadow.addresses_in_range(dst_address, dst_address + length):
                if key not in moved_keys:
                    del shadow[key]
            for key, value in moved:
                shadow.set(key + delta, value)

    # ------------------------------------------------------------------
    # Memory primitives
    # ------------------------------------------------------------------

    def _touch_memory(self, address: int, size: int, *, is_write: bool) -> None:
        self.memory_accesses += 1
        if self.collect_timing:
            self.cycles += self.hierarchy.access(address, size, is_write=is_write)

    def _clear_shadow_range(self, address: int, size: int) -> None:
        if not self._clear_shadow or not self.shadow.entries:
            return
        # Tagged-memory semantics: a data store invalidates the metadata of
        # every 8-aligned pointer slot it overlaps (entries at unaligned
        # addresses — moved there by memcpy — are reconciled at load time
        # instead).  Small writes probe the few candidate slots directly;
        # large ones (memset) use the page index, O(entries in range).
        shadow = self.shadow
        start = address - address % 8
        if size <= 256:
            entries = shadow.entries
            for key in range(start, address + size, 8):
                if key in entries:
                    del shadow[key]
            return
        for key in shadow.addresses_in_range(start, address + size):
            if not key & 7:
                del shadow[key]

    def _store_scalar(self, pointer: PtrVal, value, ctype: CType) -> None:
        """Store one typed value through a pointer."""
        if isinstance(ctype, PointerType) or self._is_pointer_sized_int(ctype):
            width = self.model.pointer_bytes
            address = self.model.check_access(pointer, width, is_write=True)
            self._touch_memory(address, width, is_write=True)
            raw = value.address if isinstance(value, PtrVal) else value.unsigned
            self._clear_shadow_range(address, width)
            self.memory.write_bytes(address, raw.to_bytes(8, "little", signed=False) + b"\x00" * (width - 8))
            if self.model.uses_shadow:
                self.shadow.set(address, value)
            return
        size = max(ctype.size(self.ctx), 1)
        address = self.model.check_access(pointer, size, is_write=True)
        self._touch_memory(address, size, is_write=True)
        self._clear_shadow_range(address, size)
        raw_value = value.unsigned if isinstance(value, IntVal) else int(value)
        self.memory.write_int(address, size, raw_value)

    def _load_scalar(self, pointer: PtrVal, ctype: CType):
        """Load one typed value through a pointer."""
        if isinstance(ctype, PointerType) or self._is_pointer_sized_int(ctype):
            width = self.model.pointer_bytes
            address = self.model.check_access(pointer, width, is_write=False)
            self._touch_memory(address, width, is_write=False)
            raw = int.from_bytes(self.memory.read_bytes(address, 8), "little")
            entry = self.shadow.get(address) if self.model.uses_shadow else None
            if isinstance(ctype, PointerType):
                loaded = self._reconstruct_pointer(raw, entry)
                return self._apply_pointer_qualifiers(loaded, ctype)
            return self._reconstruct_pointer_sized_int(raw, entry, ctype)
        size = max(ctype.size(self.ctx), 1)
        address = self.model.check_access(pointer, size, is_write=False)
        self._touch_memory(address, size, is_write=False)
        signed = getattr(ctype, "signed", True)
        raw = self.memory.read_int(address, size, signed=signed)
        return IntVal(raw, bytes=size, signed=signed)

    def _reconstruct_pointer(self, raw: int, entry) -> PtrVal:
        if entry is None:
            return self.model.load_pointer_without_metadata(raw, self.allocator)
        if isinstance(entry, PtrVal):
            return self.model.reconcile_loaded_pointer(raw, entry, self.allocator)
        if isinstance(entry, IntVal):
            return self.model.int_to_ptr(entry.with_value(raw, provenance=entry.provenance),
                                         self.allocator)
        raise InterpreterError(f"corrupt shadow entry {entry!r}")

    def _reconstruct_pointer_sized_int(self, raw: int, entry, ctype: CType) -> IntVal:
        signed = getattr(ctype, "signed", True)
        if isinstance(entry, IntVal) and entry.unsigned == raw:
            return IntVal(raw, bytes=8, signed=signed, provenance=entry.provenance, pointer_sized=True)
        if isinstance(entry, PtrVal) and entry.address == raw:
            return IntVal(raw, bytes=8, signed=signed, provenance=Provenance(entry), pointer_sized=True)
        return IntVal(raw, bytes=8, signed=signed, pointer_sized=True)

    @staticmethod
    def _is_pointer_sized_int(ctype: CType) -> bool:
        return isinstance(ctype, IntType) and ctype.is_pointer_sized

    def _apply_pointer_qualifiers(self, pointer: PtrVal, ptr_type: PointerType) -> PtrVal:
        """Apply const/__input/__output effects when a value takes a pointer type."""
        if not isinstance(pointer, PtrVal):
            return pointer
        result = pointer
        if ptr_type.qualifiers & Qualifiers.INPUT:
            result = self.model.apply_input_qualifier(result)
        if ptr_type.qualifiers & Qualifiers.OUTPUT:
            result = self.model.apply_output_qualifier(result)
        if ptr_type.pointee.is_const:
            result = self.model.apply_const(result)
        return result

    # ------------------------------------------------------------------
    # Running programs
    # ------------------------------------------------------------------

    def run(self, entry: str = "main", args: list | None = None) -> ExecutionResult:
        """Run ``entry`` (after ``__global_init``) and package the outcome."""
        trap: Exception | None = None
        exit_code: int | None = None
        try:
            if "__global_init" in self.module.functions:
                self._call(self.module.functions["__global_init"], [])
            if entry not in self.module.functions:
                raise InterpreterError(f"program has no function {entry!r}")
            result = self._call(self.module.functions[entry], list(args or []))
            if isinstance(result, IntVal):
                exit_code = result.value
            elif isinstance(result, PtrVal):
                exit_code = result.address
            else:
                exit_code = 0
        except ExitProgram as exc:
            exit_code = exc.code
        except (MemorySafetyError, UndefinedBehaviorError, InterpreterError) as exc:
            trap = exc
        return ExecutionResult(
            exit_code=exit_code,
            output=bytes(self.output),
            trap=trap,
            instructions=self.instructions,
            cycles=self.cycles,
            memory_accesses=self.memory_accesses,
            allocations=self.allocator.allocation_count,
            allocated_bytes=self.allocator.bytes_allocated,
            checkpoints=list(self.checkpoints),
            model_name=self.model.name,
            engine_fallbacks=len(self.engine_faults),
        )

    def arm_engine_fault(self, factory=RuntimeError) -> None:
        """Make the next superinstruction raise ``factory(...)`` once.

        Fault-injection hook for the difftest service: the next executed
        function that carries an installed (or installable) superinstruction
        gets its first block leader replaced by a handler that raises.  The
        failure then exercises the block-engine -> single-step fallback in
        :meth:`_execute` exactly the way a genuine buggy block handler would.
        """
        self._engine_fault = factory

    def _arm_engine_fault(self, code: CompiledFunction) -> None:
        # Shared-block machines bind blocks lazily at HOT_CALL_THRESHOLD; a
        # one-shot difftest program never gets there, so force the install —
        # observationally invisible by the superinstruction contract.
        if code.pending_blocks is not None:
            install = code.pending_blocks
            code.pending_blocks = None
            install()
        factory = self._engine_fault
        for start in sorted(code.block_fallbacks):
            def _raiser(frame, _factory=factory):
                raise _factory("injected block-engine fault")

            _handler, cost = code.paired[start]
            code.paired[start] = (_raiser, cost)
            self._engine_fault = None
            return
        # No superinstruction in this function: stay armed for the next call.

    # ------------------------------------------------------------------
    # Call frames
    # ------------------------------------------------------------------

    def _code_for(self, function: Function) -> CompiledFunction:
        """The predecoded form of ``function``, compiling on first use."""
        code = self._code_cache.get(id(function))
        if code is None or code.function is not function:
            code = compile_function(self, function)
            self._code_cache[id(function)] = code
        return code

    def _call(self, function: Function, args: list, code: CompiledFunction | None = None):
        if self._call_depth > 400:
            raise InterpreterError(f"call depth limit exceeded calling {function.name}")
        self._call_depth += 1
        self.allocator.push_frame()
        try:
            return self._execute(function, args, code)
        finally:
            self.allocator.pop_frame()
            self._call_depth -= 1

    def _execute(self, function: Function, args: list,
                 code: CompiledFunction | None = None):
        """Run one predecoded function body to completion (threaded dispatch).

        The per-instruction work lives in the compiled handlers
        (:mod:`repro.interp.predecode`); this loop only meters the shared
        instruction/cycle counters and threads the program counter that each
        handler returns.
        """
        if code is None:
            code = self._code_for(function)
        # Tiered block binding (shared-block machines only): install the
        # artifact's cached superinstruction plans once the function has
        # proven hot.  Install timing is observationally invisible — blocks
        # charge exactly what single-step dispatch charges.
        if code.pending_blocks is not None:
            code.calls += 1
            if code.calls >= HOT_CALL_THRESHOLD:
                install = code.pending_blocks
                code.pending_blocks = None
                install()
        if self._engine_fault is not None:
            self._arm_engine_fault(code)
        # Frames come from a per-CompiledFunction pool: released frames were
        # reset to the prototype (alloca list kept attached, entries cleared),
        # so a call does not round-trip the allocator for the register file.
        pool = code.pool
        if pool:
            frame = pool.pop()
        else:
            frame = code.frame_proto.copy()
            if code.nallocas:
                frame[1] = [None] * code.nallocas
        frame[0] = args
        paired = code.paired
        size = code.size
        max_instructions = self.max_instructions
        pc = 0
        while pc < size:
            try:
                while pc < size:
                    self.instructions = count = self.instructions + 1
                    if count > max_instructions:
                        raise InterpreterError(
                            f"instruction budget of {self.max_instructions} exhausted in {function.name}"
                        )
                    handler, cost = paired[pc]
                    self.cycles += cost
                    pc = handler(frame)
            except (ReproError, ExitProgram):
                raise
            except Exception as exc:
                # Block-engine fallback: a superinstruction handler raised an
                # internal (non-trap) error.  Safe to retry in single steps
                # only if the handler charged nothing beyond this dispatch —
                # any nested call would have advanced the instruction counter.
                fallback = (code.block_fallbacks.pop(pc, None)
                            if self.instructions == count else None)
                if fallback is None:
                    raise
                self.instructions -= 1
                self.cycles -= cost
                # The demoted exception is swallowed here, but its traceback
                # would otherwise pin every frame it passed through (and so
                # the machine graph) for as long as engine_faults-adjacent
                # state lives; the runner's scrub only sees surfaced traps.
                exc.__traceback__ = None
                paired[pc] = fallback
                self.engine_faults.append((function.name, pc, type(exc).__name__))
        result = frame[2]
        # Reset-on-release; a trap skips this (the frame is simply dropped
        # and the pool regrows lazily on later calls).
        allocas = frame[1]
        frame[:] = code.frame_proto
        if allocas is not None:
            allocas[:] = code.alloca_proto
            frame[1] = allocas
        pool.append(frame)
        return result

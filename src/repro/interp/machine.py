"""The abstract-machine interpreter.

:class:`AbstractMachine` executes a mini-C IR :class:`~repro.minic.ir.Module`
over a flat 64-bit address space, delegating every pointer decision to the
configured :class:`~repro.interp.models.base.MemoryModel` and feeding every
data access through the evaluation platform's cache model so that runs are
comparable in *simulated cycles*.

Key mechanisms:

* **Objects and addresses.**  Globals, string literals, heap allocations and
  stack slots are all :class:`~repro.interp.heap.HeapObject` allocations; the
  bytes live in a sparse :class:`~repro.sim.memory.TaggedMemory`.
* **Pointers in memory.**  When a pointer (or a pointer-sized integer that
  carries provenance) is stored, the raw 64-bit address is written to memory
  and the full runtime value is remembered in a *shadow table* keyed by the
  store address.  Whether that shadow survives data overwrites (tagged
  memory) or lives in a separate look-aside table (HardBound/MPX), and how a
  load reconciles the raw bytes with the shadow entry, is the memory model's
  decision — this is where the INT/IA/MASK rows of Table 3 come from.
* **Timing.**  Every instruction costs one cycle (calls and branches a little
  more) and every memory access adds the cache hierarchy's latency.  The only
  difference between ABIs is the size and alignment of pointers, which is the
  paper's architectural story for Figures 1–4.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.common.config import MachineConfig, TimingConfig
from repro.common.errors import InterpreterError, MemorySafetyError, UndefinedBehaviorError
from repro.common.rng import DeterministicRng
from repro.interp.heap import ObjectAllocator
from repro.interp.intrinsics import INTRINSICS, ExitProgram
from repro.interp.models import get_model
from repro.interp.models.base import MemoryModel
from repro.interp.values import IntVal, PERM_ALL, Provenance, PtrVal
from repro.minic.ir import Const, Function, GlobalRef, Instr, Module, Opcode, Temp
from repro.minic.typesys import ArrayType, CType, IntType, PointerType, Qualifiers, StructType
from repro.sim.cache import MemoryHierarchy
from repro.sim.memory import TaggedMemory

#: size of the flat virtual address space backing the interpreter.
_ADDRESS_SPACE = 1 << 40

# Interpreted calls recurse through a handful of Python frames each; deep
# (but bounded) workload recursion such as the Olden tree kernels needs more
# headroom than CPython's default limit provides.
sys.setrecursionlimit(max(sys.getrecursionlimit(), 20_000))


@dataclass
class ExecutionResult:
    """Outcome of running a program on the abstract machine."""

    exit_code: int | None = None
    output: bytes = b""
    trap: Exception | None = None
    instructions: int = 0
    cycles: int = 0
    memory_accesses: int = 0
    allocations: int = 0
    allocated_bytes: int = 0
    checkpoints: list[int] = field(default_factory=list)
    model_name: str = ""

    @property
    def trapped(self) -> bool:
        return self.trap is not None

    @property
    def ok(self) -> bool:
        """True when the program ran to completion and returned zero."""
        return not self.trapped and self.exit_code == 0

    def output_text(self) -> str:
        return self.output.decode("latin-1")


class _ReturnValue(Exception):
    """Internal: unwinds one interpreted call frame."""

    def __init__(self, value) -> None:
        super().__init__("return")
        self.value = value


class AbstractMachine:
    """Executes IR modules under a pluggable memory model."""

    def __init__(
        self,
        module: Module,
        model: MemoryModel | str = "pdp11",
        *,
        config: MachineConfig | None = None,
        max_instructions: int = 50_000_000,
        collect_timing: bool = True,
    ) -> None:
        self.module = module
        self.model = get_model(model) if isinstance(model, str) else model
        self.config = config or MachineConfig()
        self.ctx = module.context
        if self.ctx is None:
            raise InterpreterError("module has no type context")
        if self.ctx.pointer_bytes != self.model.pointer_bytes:
            raise InterpreterError(
                f"module compiled for {self.ctx.pointer_bytes}-byte pointers but model "
                f"{self.model.name!r} uses {self.model.pointer_bytes}-byte pointers; "
                "compile with pointer_bytes=model.pointer_bytes"
            )
        self.memory = TaggedMemory(_ADDRESS_SPACE)
        self.allocator = ObjectAllocator()
        self.hierarchy = MemoryHierarchy(self.config.timing)
        self.shadow: dict[int, object] = {}
        self.globals: dict[str, PtrVal] = {}
        self.output = bytearray()
        self.checkpoints: list[int] = []
        self.rng = DeterministicRng(12345)
        self.instructions = 0
        self.cycles = 0
        self.memory_accesses = 0
        self.max_instructions = max_instructions
        self.collect_timing = collect_timing
        self._call_depth = 0
        self._setup_globals()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _setup_globals(self) -> None:
        for name, var in self.module.globals.items():
            size = var.ctype.size(self.ctx)
            alignment = max(var.ctype.alignment(self.ctx), 8)
            if var.is_string:
                obj = self.allocator.allocate_string(size, name)
            else:
                obj = self.allocator.allocate_global(size, name, alignment=alignment)
            if var.init_bytes:
                self.memory.write_bytes(obj.base, var.init_bytes)
            self.globals[name] = self.model.make_pointer(obj)

    # ------------------------------------------------------------------
    # Helpers used by intrinsics
    # ------------------------------------------------------------------

    def emit_output(self, data: bytes) -> None:
        self.output.extend(data)

    def reseed(self, seed: int) -> None:
        self.rng = DeterministicRng(seed or 1)

    def heap_allocate(self, size: int) -> PtrVal:
        obj = self.allocator.allocate_heap(size, alignment=max(16, self.model.pointer_align))
        return self.model.make_pointer(obj)

    def heap_free(self, pointer: PtrVal) -> None:
        obj = pointer.obj or self.allocator.find(pointer.address)
        if obj is None or obj.kind != "heap":
            raise MemorySafetyError(f"free() of a non-heap pointer at {pointer.address:#x}",
                                    address=pointer.address)
        self.allocator.free(obj)

    def read_checked_bytes(self, pointer: PtrVal, length: int) -> bytes:
        if length == 0:
            return b""
        address = self.model.check_access(pointer, length, is_write=False)
        self._touch_memory(address, length, is_write=False)
        return self.memory.read_bytes(address, length)

    def write_checked_bytes(self, pointer: PtrVal, data: bytes) -> None:
        if not data:
            return
        address = self.model.check_access(pointer, len(data), is_write=True)
        self._touch_memory(address, len(data), is_write=True)
        self._clear_shadow_range(address, len(data))
        self.memory.write_bytes(address, data)

    def read_cstring(self, pointer: PtrVal, *, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string one chunk at a time (bounds-checked)."""
        out = bytearray()
        cursor = pointer
        for _ in range(limit):
            address = self.model.check_access(cursor, 1, is_write=False)
            self._touch_memory(address, 1, is_write=False)
            byte = self.memory.read_bytes(address, 1)
            if byte == b"\x00":
                return bytes(out)
            out += byte
            cursor = self.model.ptr_offset(cursor, 1)
        raise InterpreterError("unterminated string (exceeded 1 MiB)")

    def copy_memory(self, dst: PtrVal, src: PtrVal, length: int) -> None:
        """memcpy: copies bytes *and* pointer metadata (tag-preserving copy)."""
        if length == 0:
            return
        src_address = self.model.check_access(src, length, is_write=False)
        dst_address = self.model.check_access(dst, length, is_write=True)
        self._touch_memory(src_address, length, is_write=False)
        self._touch_memory(dst_address, length, is_write=True)
        data = self.memory.read_bytes(src_address, length)
        self._clear_shadow_range(dst_address, length)
        self.memory.write_bytes(dst_address, data)
        if self.model.uses_shadow:
            delta = dst_address - src_address
            moved = {
                key + delta: value
                for key, value in self.shadow.items()
                if src_address <= key < src_address + length
            }
            self.shadow.update(moved)

    # ------------------------------------------------------------------
    # Memory primitives
    # ------------------------------------------------------------------

    def _touch_memory(self, address: int, size: int, *, is_write: bool) -> None:
        self.memory_accesses += 1
        if self.collect_timing:
            self.cycles += self.hierarchy.access(address, size, is_write=is_write)

    def _clear_shadow_range(self, address: int, size: int) -> None:
        if not self.model.uses_shadow or not self.model.clear_shadow_on_data_store:
            return
        if not self.shadow:
            return
        span = range(address - address % 8, address + size)
        for key in [k for k in span if k % 8 == 0 and k in self.shadow]:
            del self.shadow[key]

    def _store_scalar(self, pointer: PtrVal, value, ctype: CType) -> None:
        """Store one typed value through a pointer."""
        if isinstance(ctype, PointerType) or self._is_pointer_sized_int(ctype):
            width = self.model.pointer_bytes
            address = self.model.check_access(pointer, width, is_write=True)
            self._touch_memory(address, width, is_write=True)
            raw = value.address if isinstance(value, PtrVal) else value.unsigned
            self._clear_shadow_range(address, width)
            self.memory.write_bytes(address, raw.to_bytes(8, "little", signed=False) + b"\x00" * (width - 8))
            if self.model.uses_shadow:
                self.shadow[address] = value
            return
        size = max(ctype.size(self.ctx), 1)
        address = self.model.check_access(pointer, size, is_write=True)
        self._touch_memory(address, size, is_write=True)
        self._clear_shadow_range(address, size)
        raw_value = value.unsigned if isinstance(value, IntVal) else int(value)
        self.memory.write_int(address, size, raw_value)

    def _load_scalar(self, pointer: PtrVal, ctype: CType):
        """Load one typed value through a pointer."""
        if isinstance(ctype, PointerType) or self._is_pointer_sized_int(ctype):
            width = self.model.pointer_bytes
            address = self.model.check_access(pointer, width, is_write=False)
            self._touch_memory(address, width, is_write=False)
            raw = int.from_bytes(self.memory.read_bytes(address, 8), "little")
            entry = self.shadow.get(address) if self.model.uses_shadow else None
            if isinstance(ctype, PointerType):
                loaded = self._reconstruct_pointer(raw, entry)
                return self._apply_pointer_qualifiers(loaded, ctype)
            return self._reconstruct_pointer_sized_int(raw, entry, ctype)
        size = max(ctype.size(self.ctx), 1)
        address = self.model.check_access(pointer, size, is_write=False)
        self._touch_memory(address, size, is_write=False)
        signed = getattr(ctype, "signed", True)
        raw = self.memory.read_int(address, size, signed=signed)
        return IntVal(raw, bytes=size, signed=signed)

    def _reconstruct_pointer(self, raw: int, entry) -> PtrVal:
        if entry is None:
            return self.model.load_pointer_without_metadata(raw, self.allocator)
        if isinstance(entry, PtrVal):
            return self.model.reconcile_loaded_pointer(raw, entry, self.allocator)
        if isinstance(entry, IntVal):
            return self.model.int_to_ptr(entry.with_value(raw, provenance=entry.provenance),
                                         self.allocator)
        raise InterpreterError(f"corrupt shadow entry {entry!r}")

    def _reconstruct_pointer_sized_int(self, raw: int, entry, ctype: CType) -> IntVal:
        signed = getattr(ctype, "signed", True)
        if isinstance(entry, IntVal) and entry.unsigned == raw:
            return IntVal(raw, bytes=8, signed=signed, provenance=entry.provenance, pointer_sized=True)
        if isinstance(entry, PtrVal) and entry.address == raw:
            return IntVal(raw, bytes=8, signed=signed, provenance=Provenance(entry), pointer_sized=True)
        return IntVal(raw, bytes=8, signed=signed, pointer_sized=True)

    @staticmethod
    def _is_pointer_sized_int(ctype: CType) -> bool:
        return isinstance(ctype, IntType) and ctype.is_pointer_sized

    def _apply_pointer_qualifiers(self, pointer: PtrVal, ptr_type: PointerType) -> PtrVal:
        """Apply const/__input/__output effects when a value takes a pointer type."""
        if not isinstance(pointer, PtrVal):
            return pointer
        result = pointer
        if ptr_type.qualifiers & Qualifiers.INPUT:
            result = self.model.apply_input_qualifier(result)
        if ptr_type.qualifiers & Qualifiers.OUTPUT:
            result = self.model.apply_output_qualifier(result)
        if ptr_type.pointee.is_const:
            result = self.model.apply_const(result)
        return result

    # ------------------------------------------------------------------
    # Running programs
    # ------------------------------------------------------------------

    def run(self, entry: str = "main", args: list | None = None) -> ExecutionResult:
        """Run ``entry`` (after ``__global_init``) and package the outcome."""
        trap: Exception | None = None
        exit_code: int | None = None
        try:
            if "__global_init" in self.module.functions:
                self._call(self.module.functions["__global_init"], [])
            if entry not in self.module.functions:
                raise InterpreterError(f"program has no function {entry!r}")
            result = self._call(self.module.functions[entry], list(args or []))
            if isinstance(result, IntVal):
                exit_code = result.value
            elif isinstance(result, PtrVal):
                exit_code = result.address
            else:
                exit_code = 0
        except ExitProgram as exc:
            exit_code = exc.code
        except (MemorySafetyError, UndefinedBehaviorError, InterpreterError) as exc:
            trap = exc
        return ExecutionResult(
            exit_code=exit_code,
            output=bytes(self.output),
            trap=trap,
            instructions=self.instructions,
            cycles=self.cycles,
            memory_accesses=self.memory_accesses,
            allocations=self.allocator.allocation_count,
            allocated_bytes=self.allocator.bytes_allocated,
            checkpoints=list(self.checkpoints),
            model_name=self.model.name,
        )

    # ------------------------------------------------------------------
    # Call frames
    # ------------------------------------------------------------------

    def _call(self, function: Function, args: list):
        if self._call_depth > 400:
            raise InterpreterError(f"call depth limit exceeded calling {function.name}")
        self._call_depth += 1
        self.allocator.push_frame()
        try:
            return self._execute(function, args)
        finally:
            self.allocator.pop_frame()
            self._call_depth -= 1

    def _execute(self, function: Function, args: list):
        temps: dict[int, object] = {}
        alloca_cache: dict[int, PtrVal] = {}
        labels = function.label_index()
        timing = self.config.timing
        instrs = function.instrs
        pc = 0
        while pc < len(instrs):
            instr = instrs[pc]
            pc += 1
            self.instructions += 1
            if self.instructions > self.max_instructions:
                raise InterpreterError(
                    f"instruction budget of {self.max_instructions} exhausted in {function.name}"
                )
            op = instr.op
            if op is Opcode.LABEL or op is Opcode.NOP:
                continue
            self.cycles += timing.base_instruction_cost
            if op is Opcode.JUMP:
                self.cycles += timing.branch_cost - timing.base_instruction_cost
                pc = labels[instr.attrs["target"]]
                continue
            if op is Opcode.CJUMP:
                self.cycles += timing.branch_cost - timing.base_instruction_cost
                condition = self._eval(instr.args[0], temps)
                taken = condition.is_true if isinstance(condition, IntVal) else not condition.is_null
                pc = labels[instr.attrs["then"] if taken else instr.attrs["else"]]
                continue
            if op is Opcode.RET:
                if instr.args:
                    return self._eval(instr.args[0], temps)
                return None
            result = self._execute_instr(instr, temps, alloca_cache, args, pc - 1)
            if instr.dest is not None:
                temps[instr.dest.index] = result
        return None

    # ------------------------------------------------------------------
    # Instruction dispatch
    # ------------------------------------------------------------------

    def _eval(self, operand, temps):
        if isinstance(operand, Temp):
            try:
                return temps[operand.index]
            except KeyError:
                raise InterpreterError(f"use of undefined temporary {operand}") from None
        if isinstance(operand, Const):
            ctype = operand.ctype
            if isinstance(ctype, PointerType):
                if operand.value == 0:
                    return self.model.null_pointer()
                return self.model.int_to_ptr(IntVal(operand.value, bytes=8, signed=False), self.allocator)
            size = ctype.size(self.ctx) if isinstance(ctype, IntType) else 8
            signed = getattr(ctype, "signed", True)
            pointer_sized = isinstance(ctype, IntType) and ctype.is_pointer_sized
            return IntVal(operand.value, bytes=min(size, 8), signed=signed, pointer_sized=pointer_sized)
        if isinstance(operand, GlobalRef):
            try:
                return self.globals[operand.name]
            except KeyError:
                raise InterpreterError(f"use of unknown global {operand.name!r}") from None
        raise InterpreterError(f"cannot evaluate operand {operand!r}")

    def _execute_instr(self, instr: Instr, temps, alloca_cache, args, index):
        op = instr.op

        if op is Opcode.ALLOCA:
            cached = alloca_cache.get(index)
            if cached is not None:
                return cached
            size = instr.attrs.get("size", 8)
            alloc_type = instr.attrs.get("alloc_type")
            alignment = max(8, alloc_type.alignment(self.ctx) if alloc_type is not None else 8)
            obj = self.allocator.allocate_stack(size, instr.attrs.get("name", ""), alignment=alignment)
            pointer = self.model.make_pointer(obj)
            alloca_cache[index] = pointer
            return pointer

        if op is Opcode.LOAD:
            pointer = self._pointer_operand(instr.args[0], temps)
            return self._load_scalar(pointer, instr.ctype)

        if op is Opcode.STORE:
            pointer = self._pointer_operand(instr.args[0], temps)
            if "param_index" in instr.attrs:
                value = args[instr.attrs["param_index"]]
            else:
                value = self._eval(instr.args[1], temps)
            value = self._coerce_for_store(value, instr.ctype)
            self._store_scalar(pointer, value, instr.ctype)
            return None

        if op is Opcode.GEP:
            pointer = self._pointer_operand(instr.args[0], temps)
            idx = self._eval(instr.args[1], temps)
            delta = (idx.value if isinstance(idx, IntVal) else idx.address) * instr.attrs["element_size"]
            return self.model.ptr_offset(pointer, delta)

        if op is Opcode.FIELD:
            pointer = self._pointer_operand(instr.args[0], temps)
            field_type = instr.ctype.pointee if isinstance(instr.ctype, PointerType) else None
            field_size = field_type.size(self.ctx) if field_type is not None else 1
            return self.model.field_address(pointer, instr.attrs["offset"], field_size)

        if op is Opcode.PTRADD:
            pointer = self._pointer_operand(instr.args[0], temps)
            delta = self._eval(instr.args[1], temps)
            return self.model.ptr_offset(pointer, delta.value)

        if op is Opcode.PTRDIFF:
            a = self._pointer_operand(instr.args[0], temps)
            b = self._pointer_operand(instr.args[1], temps)
            diff = self.model.ptr_diff(a, b, instr.attrs.get("element_size", 1))
            return IntVal(diff, bytes=8, signed=True)

        if op is Opcode.PTRTOINT:
            pointer = self._pointer_operand(instr.args[0], temps)
            target = instr.ctype
            return self.model.ptr_to_int(
                pointer,
                bytes=min(target.size(self.ctx), 8),
                signed=getattr(target, "signed", True),
                pointer_sized=isinstance(target, IntType) and target.is_pointer_sized,
            )

        if op is Opcode.INTTOPTR:
            value = self._eval(instr.args[0], temps)
            if isinstance(value, PtrVal):
                pointer = value
            else:
                pointer = self.model.int_to_ptr(value, self.allocator)
            if isinstance(instr.ctype, PointerType):
                pointer = self._apply_pointer_qualifiers(pointer, instr.ctype)
            return pointer

        if op is Opcode.BITCAST:
            value = self._eval(instr.args[0], temps)
            if not isinstance(value, PtrVal):
                return value
            if instr.attrs.get("deconst"):
                value = self.model.deconst(value)
            if isinstance(instr.ctype, PointerType):
                value = self._apply_pointer_qualifiers(value, instr.ctype)
            return value

        if op is Opcode.INTCAST:
            value = self._eval(instr.args[0], temps)
            target = instr.ctype
            pointer_sized = isinstance(target, IntType) and target.is_pointer_sized
            if isinstance(value, PtrVal):
                return self.model.ptr_to_int(
                    value, bytes=min(target.size(self.ctx), 8),
                    signed=getattr(target, "signed", True), pointer_sized=pointer_sized,
                )
            return value.converted(bytes=min(target.size(self.ctx), 8),
                                   signed=getattr(target, "signed", True),
                                   pointer_sized=pointer_sized)

        if op is Opcode.BINOP:
            return self._binop(instr, temps)

        if op is Opcode.UNOP:
            value = self._eval(instr.args[0], temps)
            if not isinstance(value, IntVal):
                raise InterpreterError("unary arithmetic on a pointer value")
            if instr.attrs["operator"] == "neg":
                return value.with_value(-value.value, provenance=None)
            return value.with_value(~value.value, provenance=None)

        if op is Opcode.CMP:
            return self._compare(instr, temps)

        if op is Opcode.CALL:
            return self._call_target(instr, temps)

        raise InterpreterError(f"unsupported IR opcode {op}")

    # ------------------------------------------------------------------

    def _pointer_operand(self, operand, temps) -> PtrVal:
        value = self._eval(operand, temps)
        if isinstance(value, PtrVal):
            return value
        if isinstance(value, IntVal):
            return self.model.int_to_ptr(value, self.allocator)
        raise InterpreterError(f"expected a pointer, got {value!r}")

    def _coerce_for_store(self, value, ctype: CType):
        if isinstance(ctype, PointerType) and isinstance(value, IntVal):
            return self.model.int_to_ptr(value, self.allocator)
        if isinstance(ctype, IntType) and isinstance(value, PtrVal) and not ctype.is_pointer_sized:
            return self.model.ptr_to_int(value, bytes=min(ctype.size(self.ctx), 8),
                                         signed=ctype.signed, pointer_sized=False)
        return value

    _BIN_OPERATIONS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "&": lambda a, b: a & b,
        "|": lambda a, b: a | b,
        "^": lambda a, b: a ^ b,
        "<<": lambda a, b: a << (b & 63),
        ">>": lambda a, b: a >> (b & 63),
    }

    def _binop(self, instr: Instr, temps):
        left = self._eval(instr.args[0], temps)
        right = self._eval(instr.args[1], temps)
        operator = instr.attrs["operator"]
        if isinstance(left, PtrVal) or isinstance(right, PtrVal):
            # Arithmetic involving a raw pointer value outside of gep/ptrdiff:
            # convert to integers first (keeps provenance via ptr_to_int).
            if isinstance(left, PtrVal):
                left = self.model.ptr_to_int(left, bytes=8, signed=False, pointer_sized=True)
            if isinstance(right, PtrVal):
                right = self.model.ptr_to_int(right, bytes=8, signed=False, pointer_sized=True)
        a, b = left.value, right.value
        if operator in ("/", "%"):
            if b == 0:
                raise UndefinedBehaviorError("integer division by zero")
            quotient = abs(a) // abs(b)
            if operator == "/":
                raw = quotient if (a >= 0) == (b >= 0) else -quotient
            else:
                raw = a - (quotient if (a >= 0) == (b >= 0) else -quotient) * b
        else:
            try:
                raw = self._BIN_OPERATIONS[operator](a, b)
            except KeyError:
                raise InterpreterError(f"unknown binary operator {operator!r}") from None
        target = instr.ctype
        size = min(target.size(self.ctx), 8) if target is not None else 8
        signed = getattr(target, "signed", True)
        pointer_sized = isinstance(target, IntType) and target.is_pointer_sized
        provenance = self.model.propagate_provenance(left, right, raw)
        return IntVal(raw, bytes=size, signed=signed, provenance=provenance, pointer_sized=pointer_sized)

    def _compare(self, instr: Instr, temps) -> IntVal:
        left = self._eval(instr.args[0], temps)
        right = self._eval(instr.args[1], temps)
        operator = instr.attrs["operator"]
        if isinstance(left, PtrVal) and isinstance(right, PtrVal):
            result = self.model.ptr_compare(left, right, operator)
        else:
            a = left.address if isinstance(left, PtrVal) else left.value
            b = right.address if isinstance(right, PtrVal) else right.value
            result = {"==": a == b, "!=": a != b, "<": a < b,
                      "<=": a <= b, ">": a > b, ">=": a >= b}[operator]
        return IntVal(1 if result else 0, bytes=4)

    def _call_target(self, instr: Instr, temps):
        callee = instr.attrs["callee"]
        self.cycles += self.config.timing.call_cost - self.config.timing.base_instruction_cost
        arguments = [self._eval(arg, temps) for arg in instr.args]
        function = self.module.functions.get(callee)
        if function is not None and function.instrs:
            # Coerce arguments to parameter types (qualifier effects included).
            coerced = []
            for index, value in enumerate(arguments):
                if index < len(function.params):
                    _, param_type = function.params[index]
                    if isinstance(param_type, PointerType) and isinstance(value, PtrVal):
                        value = self._apply_pointer_qualifiers(value, param_type)
                    elif isinstance(param_type, PointerType) and isinstance(value, IntVal):
                        value = self.model.int_to_ptr(value, self.allocator)
                coerced.append(value)
            return self._call(function, coerced)
        handler = INTRINSICS.get(callee)
        if handler is None:
            raise InterpreterError(f"call to unknown function {callee!r}")
        return handler(self, arguments, instr.ctype)

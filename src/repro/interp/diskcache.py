"""Crash-consistent persistent tier for the predecode artifact cache.

The process-level LRU in :mod:`repro.interp.artifact` dies with the process:
every fresh ``run_difftest`` invocation — and every sweep worker that was not
``fork``-ed from an already-warm parent — re-derives the slot-type fixpoint,
the fusion maps and (worst of all) re-``compile()``-s every shared
superinstruction from generated source.  This module adds an on-disk tier
that survives the process and is shared between concurrent workers and
successive CLI runs, designed corruption-first: a cache that can silently
serve a torn or stale entry would corrupt the bit-deterministic Table-5
artifacts the whole difftest pipeline is built to protect.

Key derivation
--------------
Entries are keyed by :func:`fingerprint` — a SHA-256 over

* the **analysis version** (:func:`analysis_version`): a hash of the source
  text of the four modules whose logic determines artifact content
  (``artifact.py``, ``predecode.py``, ``hotgen.py``, ``values.py``), so any
  change to the analysis or code generators invalidates every old entry
  automatically;
* the **pointer layout** (``ctx.pointer_bytes``, ``ctx.pointer_align``);
* the **IR content**: function name plus a canonical rendering of every
  instruction (opcode, destination, operands with their scalar types,
  result type, attributes).  Identical IR hashes identically no matter which
  process, module object or generation pass produced it.

Entries additionally live under a per-interpreter directory
(``sys.implementation.cache_tag``) because the payload is ``marshal`` data,
which is not portable across Python versions.

Entry format and validation
---------------------------
One entry file (``<root>/<tag>/<hh>/<fingerprint>.art``)::

    header line: JSON {kind, version, analysis, key, python, payload_bytes}
    payload:     marshal bytes (the artifact's memoized analysis results)
    trailer:     32-byte SHA-256 over header line + payload

Every load re-validates all of it: the JSON header must parse and match the
expected kind/schema/analysis-version/interpreter/key, the payload length
must match the header, and the trailer digest must match the bytes.  Any
entry failing any check — torn, truncated, bit-flipped, produced by a stale
schema — is **quarantined** (moved into ``<root>/quarantine/`` with a reason
suffix, preserving the evidence) and reported as a miss, so the artifact is
transparently regenerated and re-stored; a corrupt cache can cost time but
never correctness.

Crash consistency and concurrency
---------------------------------
Stores write a temporary file in the entry's directory, ``fsync`` it, and
``os.replace`` it into place (then ``fsync`` the directory), so a reader can
only ever observe the old entry, the new entry, or no entry — never a torn
one.  Concurrent writers of the *same* key coordinate through a per-key
``<entry>.lock`` file (``pid:host``, created ``O_CREAT|O_EXCL``): a writer
that finds a live same-host holder skips the store (the holder is writing
identical deterministic bytes); a lock whose PID is dead — a SIGKILLed
worker — is **taken over** (the stale lock and any dead writer's temp files
are removed) so a killed worker can never wedge the cache.

Fault injection
---------------
:meth:`DiskCache.arm_fault` schedules one deliberate fault for the next
store — ``cache-torn`` / ``cache-bitflip`` corrupt the just-written entry
and immediately drive the quarantine-and-regenerate cycle; the
``cache-stale-lock`` fault plants a dead-PID lock that the store must take
over.  ``difftest/faultinject.py`` wires these to ``run_difftest --inject``.
"""

from __future__ import annotations

import hashlib
import json
import marshal
import os
import socket
import sys

from repro.minic.ir import Const, GlobalRef, Temp
from repro.minic.typesys import IntType

#: bump when the entry container format (header/trailer layout) changes.
SCHEMA_VERSION = 1
ENTRY_KIND = "repro-artifact-cache"
ENTRY_SUFFIX = ".art"
LOCK_SUFFIX = ".lock"
QUARANTINE_DIRNAME = "quarantine"

#: the cache-fault kinds :meth:`DiskCache.arm_fault` accepts (mirrored by
#: ``difftest.faultinject.FAULT_KINDS``).
CACHE_FAULTS = ("cache-torn", "cache-bitflip", "cache-stale-lock")

#: modules whose source text determines what an artifact contains; hashing
#: them is the "generator/analysis version" part of the cache key, so any
#: edit to the analysis or the block compilers orphans every old entry.
_ANALYSIS_SOURCES = ("artifact.py", "diskcache.py", "hotgen.py",
                     "predecode.py", "values.py")

_analysis_version: str | None = None


def analysis_version() -> str:
    """Hash of the analysis/codegen sources (cached per process)."""
    global _analysis_version
    if _analysis_version is None:
        digest = hashlib.sha256()
        digest.update(f"schema:{SCHEMA_VERSION}".encode("ascii"))
        here = os.path.dirname(os.path.abspath(__file__))
        for name in _ANALYSIS_SOURCES:
            try:
                with open(os.path.join(here, name), "rb") as handle:
                    digest.update(name.encode("ascii"))
                    digest.update(handle.read())
            except OSError:
                # Source not readable (zipapp, stripped install): fall back
                # to the schema constant alone; still versioned, just
                # coarser.
                digest.update(f"absent:{name}".encode("ascii"))
        _analysis_version = digest.hexdigest()[:16]
    return _analysis_version


# ---------------------------------------------------------------------------
# IR content fingerprint
# ---------------------------------------------------------------------------


def _render_type(ctype) -> str:
    if ctype is None:
        return "-"
    if isinstance(ctype, IntType):
        # The scalar facts the slot analysis actually consumes, spelled out
        # (two types with equal str() but different signedness must differ).
        return (f"i{ctype.bytes}{'s' if ctype.signed else 'u'}"
                f"{'p' if ctype.is_pointer_sized else ''}")
    return str(ctype)


def _render_operand(operand) -> str:
    kind = type(operand)
    if kind is Temp:
        return f"%{operand.index}"
    if kind is Const:
        return f"c{operand.value}:{_render_type(operand.ctype)}"
    if kind is GlobalRef:
        return f"@{operand.name}"
    return repr(operand)  # unknown operand kind: never silently collide


def _render_attr(value) -> str:
    if isinstance(value, (int, str, bool)) or value is None:
        return repr(value)
    return str(value)  # CTypes and friends render via their stable __str__


def _render_instr(instr) -> str:
    attrs = ",".join(f"{key}={_render_attr(value)}"
                     for key, value in sorted(instr.attrs.items()))
    dest = instr.dest.index if instr.dest is not None else "-"
    args = ",".join(_render_operand(arg) for arg in instr.args)
    return (f"{instr.op.name}|{dest}|{args}|{_render_type(instr.ctype)}"
            f"|{attrs}\n")


def fingerprint(function, ctx) -> str:
    """Content hash of (analysis version, pointer layout, IR stream, facts).

    Static-checker annotations (``function.static_facts``, see
    repro.staticcheck.facts) change the derived artifact — CALL slots can go
    raw, safe stores compile to flagged handlers — so the fact *values* are
    part of the identity: the same IR with and without (or with different)
    facts must never share an entry.
    """
    digest = hashlib.sha256()
    digest.update(f"{analysis_version()}|{ctx.pointer_bytes}|"
                  f"{ctx.pointer_align}|{function.name}|"
                  f"{len(function.instrs)}\n".encode("utf-8"))
    for instr in function.instrs:
        digest.update(_render_instr(instr).encode("utf-8"))
    facts = getattr(function, "static_facts", None)
    if facts is not None:
        digest.update(
            f"facts|{facts.return_scalar}|{sorted(facts.noprov_callees)}"
            f"|{sorted(facts.safe_allocas)}|{sorted(facts.safe_stores)}\n"
            .encode("utf-8"))
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Artifact payload (de)serialization
# ---------------------------------------------------------------------------


class UnserializableArtifact(Exception):
    """Internal: the artifact holds a binding constant this module cannot
    encode symbolically; the store is skipped (fail-safe, never fail-wrong)."""


def _encode_const(value):
    """Symbolic form of one BlockPlan binding constant.

    Plans bind three kinds of model-independent constants: charge-sequence
    tuples (plain ints — stored verbatim), the shared intern tables
    (identified *by identity* against ``values._intern_tables`` and stored
    as ``(width, signed)``), and the canonical TRUE/FALSE comparison
    results.  Anything else is unknown territory and aborts the store.
    """
    from repro.interp.values import FALSE_I32, TRUE_I32, _intern_tables

    if value is TRUE_I32:
        return ("true",)
    if value is FALSE_I32:
        return ("false",)
    if isinstance(value, tuple):
        if all(type(item) is int for item in value):
            return ("seq", value)
        for (width, signed), table in _intern_tables.items():
            if value is table:
                return ("intern", width, signed)
    raise UnserializableArtifact(f"unencodable block constant {type(value)!r}")


def _decode_const(tag):
    from repro.interp.values import FALSE_I32, TRUE_I32, intern_table

    kind = tag[0]
    if kind == "true":
        return TRUE_I32
    if kind == "false":
        return FALSE_I32
    if kind == "seq":
        return tuple(tag[1])
    if kind == "intern":
        return intern_table(tag[1], tag[2])
    raise ValueError(f"unknown encoded block constant {tag!r}")


def dump_artifact_payload(artifact) -> bytes:
    """Marshal an artifact's memoized analysis results.

    Everything stored is a deterministic pure function of the fingerprinted
    IR: the slot-type fixpoints, raw-operand descriptors and fusion maps per
    policy combination, and every shared block plan — segmentation, compiled
    code object (``marshal`` handles code natively) and symbolically encoded
    binding constants.  Raises :class:`UnserializableArtifact` when a plan
    binds something this module cannot encode.
    """
    plans = {}
    for key, plan_list in artifact._plans.items():
        plans[key] = [
            (plan.start, plan.entries, plan.n_ir, plan.code,
             {name: _encode_const(value) for name, value in plan.consts.items()},
             plan.handler_indices)
            for plan in plan_list
        ]
    payload = {
        "name": artifact.function.name,
        "ninstrs": artifact.ninstrs,
        "slot_types": dict(artifact._slot_types),
        "arg_raws": dict(artifact._arg_raws),
        "fusions": dict(artifact._fusions),
        "plans": plans,
    }
    try:
        return marshal.dumps(payload, 4)
    except ValueError as exc:  # unmarshalable object smuggled in
        raise UnserializableArtifact(str(exc)) from None


def load_artifact_payload(artifact, data: bytes) -> bool:
    """Prefill a fresh artifact's memo dicts from marshaled ``data``.

    Returns False (leaving the artifact untouched) when the payload does not
    describe this function — a hash collision or cross-key confusion would
    otherwise poison observables, so the check is structural, not trusted.
    """
    from repro.interp.artifact import BlockPlan

    payload = marshal.loads(data)
    if (payload.get("name") != artifact.function.name
            or payload.get("ninstrs") != artifact.ninstrs):
        return False
    plans = {}
    for key, plan_list in payload["plans"].items():
        plans[key] = [
            BlockPlan(start, entries, n_ir, code,
                      {name: _decode_const(tag) for name, tag in consts.items()},
                      tuple(handler_indices))
            for start, entries, n_ir, code, consts, handler_indices in plan_list
        ]
    artifact._slot_types = payload["slot_types"]
    artifact._arg_raws = payload["arg_raws"]
    artifact._fusions = payload["fusions"]
    artifact._plans = plans
    return True


def _memo_snapshot(artifact) -> tuple[int, int, int, int]:
    """How many memo results the artifact holds (dirty-tracking)."""
    return (len(artifact._slot_types), len(artifact._arg_raws),
            len(artifact._fusions), len(artifact._plans))


# ---------------------------------------------------------------------------
# The on-disk cache
# ---------------------------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OverflowError, OSError):
        return True  # exists (other user) or unknowable: treat as live
    return True


def _dead_pid() -> int:
    """A PID guaranteed (or overwhelmingly likely) to be dead.

    Forks a child that exits immediately and reaps it — an honest dead PID.
    Falls back to one past the default Linux ``pid_max`` when fork is
    unavailable (``os.kill`` then reports ESRCH).
    """
    try:
        pid = os.fork()
    except OSError:
        return 4_194_305
    if pid == 0:  # pragma: no cover - child exits immediately
        os._exit(0)
    os.waitpid(pid, 0)
    return pid


class DiskCache:
    """Checksummed, lock-coordinated, quarantine-on-corruption entry store."""

    def __init__(self, root: str, *, fsync: bool = True) -> None:
        self.root = os.path.abspath(root)
        self.fsync = fsync
        #: interpreter-specific namespace: marshal payloads are not portable
        #: across Python versions, so each shares a directory only with
        #: itself.
        self.tag_dir = os.path.join(self.root, sys.implementation.cache_tag)
        self.quarantine_dir = os.path.join(self.root, QUARANTINE_DIRNAME)
        self.stats = {"hits": 0, "misses": 0, "stores": 0, "store_skips": 0,
                      "quarantined": 0, "lock_takeovers": 0, "lock_busy": 0,
                      "store_errors": 0, "faults_injected": 0}
        #: one-shot injected fault (see :data:`CACHE_FAULTS`), consumed by
        #: the next store.
        self.armed_fault: str | None = None
        os.makedirs(self.tag_dir, exist_ok=True)

    # -- paths ----------------------------------------------------------

    def entry_path(self, key: str) -> str:
        return os.path.join(self.tag_dir, key[:2], key + ENTRY_SUFFIX)

    def _lock_path(self, key: str) -> str:
        return self.entry_path(key) + LOCK_SUFFIX

    # -- fault injection ------------------------------------------------

    def arm_fault(self, kind: str) -> None:
        if kind not in CACHE_FAULTS:
            raise ValueError(f"unknown cache fault {kind!r}; known: {CACHE_FAULTS}")
        self.armed_fault = kind

    # -- quarantine -----------------------------------------------------

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a failed entry aside (evidence preserved), count, report."""
        os.makedirs(self.quarantine_dir, exist_ok=True)
        base = os.path.basename(path)
        for attempt in range(1000):
            suffix = f".{reason}" if attempt == 0 else f".{reason}.{attempt}"
            target = os.path.join(self.quarantine_dir, base + suffix)
            if os.path.exists(target):
                continue
            try:
                os.replace(path, target)
            except FileNotFoundError:
                return  # another process already quarantined/replaced it
            self.stats["quarantined"] += 1
            sys.stderr.write(
                f"repro-diskcache: quarantined {base} ({reason}) -> "
                f"{os.path.relpath(target, self.root)}; entry will be "
                f"regenerated\n")
            return

    # -- load -----------------------------------------------------------

    def load(self, key: str):
        """The decoded payload for ``key``, or None (miss / quarantined)."""
        path = self.entry_path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except OSError:
            self.stats["misses"] += 1
            return None
        newline = data.find(b"\n")
        if newline < 0:
            self._quarantine(path, "truncated-header")
            self.stats["misses"] += 1
            return None
        header_line = data[:newline + 1]
        try:
            header = json.loads(header_line)
            if not isinstance(header, dict):
                raise ValueError("header is not an object")
        except ValueError:
            self._quarantine(path, "corrupt-header")
            self.stats["misses"] += 1
            return None
        if (header.get("kind") != ENTRY_KIND
                or header.get("version") != SCHEMA_VERSION
                or header.get("python") != sys.implementation.cache_tag):
            self._quarantine(path, "foreign-entry")
            self.stats["misses"] += 1
            return None
        if header.get("analysis") != analysis_version():
            # Stale schema: written by an older (or newer) build of the
            # analysis.  Never trusted — trapped here even if a path
            # collision ever let one through the key derivation.
            self._quarantine(path, "version-mismatch")
            self.stats["misses"] += 1
            return None
        if header.get("key") != key:
            self._quarantine(path, "key-mismatch")
            self.stats["misses"] += 1
            return None
        payload_bytes = header.get("payload_bytes")
        body = data[newline + 1:]
        if not isinstance(payload_bytes, int) or len(body) != payload_bytes + 32:
            self._quarantine(path, "truncated")
            self.stats["misses"] += 1
            return None
        payload, trailer = body[:payload_bytes], body[payload_bytes:]
        digest = hashlib.sha256(header_line + payload).digest()
        if digest != trailer:
            self._quarantine(path, "checksum")
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return payload

    # -- store ----------------------------------------------------------

    def _acquire_lock(self, key: str) -> bool:
        lock = self._lock_path(key)
        os.makedirs(os.path.dirname(lock), exist_ok=True)
        token = f"{os.getpid()}:{socket.gethostname()}".encode("utf-8")
        for _ in range(3):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                if self._lock_is_stale(lock):
                    # Dead-PID takeover: the holder was SIGKILLed mid-store.
                    try:
                        os.unlink(lock)
                    except FileNotFoundError:
                        pass
                    self.stats["lock_takeovers"] += 1
                    self._sweep_dead_tmp_files(key)
                    continue
                self.stats["lock_busy"] += 1
                return False
            except OSError:
                return False
            try:
                os.write(fd, token)
            finally:
                os.close(fd)
            return True
        return False

    def _lock_is_stale(self, lock: str) -> bool:
        try:
            with open(lock, "rb") as handle:
                content = handle.read(256)
        except OSError:
            return False  # vanished or unreadable: let the holder win
        pid_text, _, host = content.decode("utf-8", "replace").partition(":")
        try:
            pid = int(pid_text)
        except ValueError:
            return True  # garbage lock (torn write): nobody holds it
        if host and host != socket.gethostname():
            return False  # cross-host locks cannot be liveness-checked
        return not _pid_alive(pid)

    def _release_lock(self, key: str) -> None:
        try:
            os.unlink(self._lock_path(key))
        except OSError:
            pass

    def _sweep_dead_tmp_files(self, key: str) -> None:
        """Remove temp files abandoned by dead writers of this key."""
        directory = os.path.dirname(self.entry_path(key))
        prefix = "." + key + "."
        try:
            names = os.listdir(directory)
        except OSError:
            return
        for name in names:
            if not (name.startswith(prefix) and name.endswith(".tmp")):
                continue
            pid_text = name[len(prefix):-4]
            if pid_text.isdigit() and _pid_alive(int(pid_text)):
                continue
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass

    def _entry_bytes(self, key: str, payload: bytes) -> bytes:
        header = {
            "kind": ENTRY_KIND,
            "version": SCHEMA_VERSION,
            "analysis": analysis_version(),
            "key": key,
            "python": sys.implementation.cache_tag,
            "payload_bytes": len(payload),
        }
        header_line = (json.dumps(header, sort_keys=True,
                                  separators=(",", ":")) + "\n").encode("ascii")
        return header_line + payload + hashlib.sha256(header_line + payload).digest()

    def store(self, key: str, payload: bytes) -> bool:
        """Atomically (re)write ``key``'s entry; False when skipped."""
        if self.armed_fault == "cache-stale-lock":
            self.armed_fault = None
            self.stats["faults_injected"] += 1
            self._plant_stale_lock(key)
        if not self._acquire_lock(key):
            self.stats["store_skips"] += 1
            return False
        path = self.entry_path(key)
        directory = os.path.dirname(path)
        tmp = os.path.join(directory, f".{key}.{os.getpid()}.tmp")
        try:
            os.makedirs(directory, exist_ok=True)
            data = self._entry_bytes(key, payload)
            with open(tmp, "wb") as handle:
                handle.write(data)
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
            if self.fsync:
                self._fsync_dir(directory)
            self.stats["stores"] += 1
        except OSError:
            self.stats["store_errors"] += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        finally:
            self._release_lock(key)
        if self.armed_fault in ("cache-torn", "cache-bitflip"):
            fault, self.armed_fault = self.armed_fault, None
            self.stats["faults_injected"] += 1
            self._corrupt_entry(path, fault)
            # Drive the full quarantine-and-regenerate cycle in-line, the
            # same way the journal fault immediately runs its recovery: the
            # corrupt entry must be caught, moved aside, and replaced by a
            # freshly stored good copy.
            assert self.load(key) is None, "corrupt entry escaped validation"
            return self.store(key, payload)
        return True

    @staticmethod
    def _fsync_dir(directory: str) -> None:
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _plant_stale_lock(self, key: str) -> None:
        lock = self._lock_path(key)
        os.makedirs(os.path.dirname(lock), exist_ok=True)
        with open(lock, "wb") as handle:
            handle.write(f"{_dead_pid()}:{socket.gethostname()}".encode("utf-8"))

    @staticmethod
    def _corrupt_entry(path: str, fault: str) -> None:
        try:
            with open(path, "rb") as handle:
                data = bytearray(handle.read())
        except OSError:
            return
        if fault == "cache-torn":
            data = data[:max(1, len(data) // 2)]
        else:  # cache-bitflip
            data[len(data) // 2] ^= 0x40
        with open(path, "wb") as handle:
            handle.write(bytes(data))


# ---------------------------------------------------------------------------
# Module-level tier wiring (consumed by artifact.ArtifactCache and the
# difftest runner)
# ---------------------------------------------------------------------------

_TIER: DiskCache | None = None
#: artifacts created since the last flush (strong refs; flushed per program).
_PENDING: list = []


def configure(root: str | None, **kwargs) -> DiskCache | None:
    """Enable (or, with None, disable) the persistent tier process-wide."""
    global _TIER
    _PENDING.clear()
    _TIER = DiskCache(root, **kwargs) if root else None
    return _TIER


def tier() -> DiskCache | None:
    return _TIER


def enabled() -> bool:
    return _TIER is not None


def attach(artifact) -> None:
    """Hook called by the in-process LRU on every artifact **miss**.

    Computes the content fingerprint, prefills the artifact's memo dicts
    from a valid disk entry when one exists, and registers the artifact for
    the next :func:`flush` (which persists whatever was computed fresh).
    """
    cache = _TIER
    if cache is None:
        return
    try:
        artifact.fingerprint = fingerprint(artifact.function, artifact.ctx)
    except Exception:
        artifact.fingerprint = None  # unhashable IR: keep the artifact
        return                       # purely in-memory
    payload = cache.load(artifact.fingerprint)
    if payload is not None:
        try:
            if load_artifact_payload(artifact, payload):
                artifact.disk_snapshot = _memo_snapshot(artifact)
            else:
                cache._quarantine(cache.entry_path(artifact.fingerprint),
                                  "wrong-function")
        except Exception:
            # Checksummed bytes that still fail to decode mean the entry was
            # written by incompatible code: quarantine, regenerate.
            cache._quarantine(cache.entry_path(artifact.fingerprint),
                              "undecodable")
    _PENDING.append(artifact)


def flush() -> None:
    """Persist every pending artifact whose memo state grew since load.

    Called once per difftest program (after all models bound), so a
    SIGKILLed worker loses at most the entries of its in-flight program —
    which the next run simply regenerates.
    """
    cache = _TIER
    if cache is None:
        if _PENDING:
            _PENDING.clear()
        return
    pending, _PENDING[:] = list(_PENDING), []
    for artifact in pending:
        key = artifact.fingerprint
        if key is None:
            continue
        snapshot = _memo_snapshot(artifact)
        if snapshot == artifact.disk_snapshot:
            continue  # disk already holds everything this artifact knows
        try:
            payload = dump_artifact_payload(artifact)
        except UnserializableArtifact:
            cache.stats["store_errors"] += 1
            continue
        if cache.store(key, payload):
            artifact.disk_snapshot = snapshot
